//! # wsn-linkconf
//!
//! Multi-layer parameter configuration of WSN links — a full Rust
//! reproduction of *"Experimental Study for Multi-layer Parameter
//! Configuration of WSN Links"* (Fu, Zhang, Jiang, Hu, Shih, Marrón —
//! ICDCS 2015).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`sim`] — deterministic discrete-event engine,
//! * [`params`] — the seven stack parameters (Table I) and the ~48k grid,
//! * [`radio`] — CC2420 PHY model: path loss, shadowing, noise, PER, energy,
//! * [`mac`] — unslotted CSMA-CA, ACK/retransmission, transmit queue,
//! * [`link`] — the composed sender→receiver link simulator,
//! * [`models`] — the paper's empirical models (Eqs. 2–9), curve fitting,
//!   per-metric guidelines and multi-objective parameter optimization,
//! * [`experiments`] — the harness that regenerates every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use wsn_linkconf::prelude::*;
//!
//! // One configuration of the 7 stack parameters …
//! let cfg = StackConfig::builder()
//!     .distance_m(20.0)
//!     .power_level(31)
//!     .payload_bytes(110)
//!     .max_tries(3)
//!     .build()?;
//!
//! // … simulated for 500 packets on the synthetic hallway channel:
//! let outcome = LinkSimulation::new(cfg, SimOptions::quick(500)).run();
//! let m = outcome.metrics();
//! assert!(m.goodput_bps > 0.0);
//! assert!(m.plr_total() <= 1.0);
//! # Ok::<(), wsn_linkconf::params::error::InvalidParam>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wsn_experiments as experiments;
pub use wsn_link_sim as link;
pub use wsn_mac as mac;
pub use wsn_models as models;
pub use wsn_params as params;
pub use wsn_radio as radio;
pub use wsn_sim_engine as sim;

/// One-stop import for applications built on the library.
pub mod prelude {
    pub use wsn_link_sim::prelude::*;
    pub use wsn_mac::prelude::*;
    pub use wsn_models::prelude::*;
    pub use wsn_params::prelude::*;
    pub use wsn_radio::prelude::*;
    pub use wsn_sim_engine::prelude::*;
}
