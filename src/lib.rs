//! # wsn-linkconf
//!
//! Multi-layer parameter configuration of WSN links — a full Rust
//! reproduction of *"Experimental Study for Multi-layer Parameter
//! Configuration of WSN Links"* (Fu, Zhang, Jiang, Hu, Shih, Marrón —
//! ICDCS 2015).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`sim`] — deterministic discrete-event engine,
//! * [`params`] — the seven stack parameters (Table I) and the ~48k grid,
//! * [`radio`] — CC2420 PHY model: path loss, shadowing, noise, PER, energy,
//! * [`mac`] — unslotted CSMA-CA, ACK/retransmission, transmit queue,
//! * [`link`] — the composed sender→receiver link simulator,
//! * [`net`] — the multi-link shared-channel network API (scenarios,
//!   network simulation, scenario catalog) as a first-class surface,
//! * [`models`] — the paper's empirical models (Eqs. 2–9), curve fitting,
//!   per-metric guidelines and multi-objective parameter optimization,
//! * [`serve`] — the concurrent JSON-lines query service (`repro serve`),
//! * [`experiments`] — the harness that regenerates every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use wsn_linkconf::prelude::*;
//!
//! // One configuration of the 7 stack parameters …
//! let cfg = StackConfig::builder()
//!     .distance_m(20.0)
//!     .power_level(31)
//!     .payload_bytes(110)
//!     .max_tries(3)
//!     .build()?;
//!
//! // … simulated for 500 packets on the synthetic hallway channel:
//! let outcome = LinkSimulation::new(cfg, SimOptions::quick(500)).run();
//! let m = outcome.metrics();
//! assert!(m.goodput_bps > 0.0);
//! assert!(m.plr_total() <= 1.0);
//! # Ok::<(), wsn_linkconf::params::error::InvalidParam>(())
//! ```
//!
//! ## Multi-link scenarios
//!
//! The network surface mirrors the single-link one: a [`net::Scenario`]
//! is built the same way a `StackConfig` is, then run through
//! [`net::NetworkSimulation`]:
//!
//! ```
//! use wsn_linkconf::net::{NetOptions, NetworkSimulation, Scenario};
//! use wsn_linkconf::prelude::*;
//!
//! // Two crossing links 12 m apart, built with the scenario builder:
//! let near = StackConfig::builder().distance_m(10.0).power_level(27).build()?;
//! let far = StackConfig::builder().distance_m(20.0).power_level(31).build()?;
//! let scenario = Scenario::builder()
//!     .link(LinkSpec::at(Position::new(0.0, 0.0), Position::new(10.0, 0.0), near))
//!     .link(LinkSpec::at(Position::new(0.0, 12.0), Position::new(20.0, 12.0), far))
//!     .capture_db(3.0)
//!     .build()?;
//!
//! let outcome = NetworkSimulation::new(scenario, NetOptions::quick(200)).run();
//! assert_eq!(outcome.links.len(), 2);
//! // Both links moved traffic over the shared air:
//! assert!(outcome.goodput_bps() > 0.0);
//! assert!(outcome.air.frames > 0);
//! # Ok::<(), wsn_linkconf::params::error::InvalidParam>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wsn_analytic as analytic;
pub use wsn_experiments as experiments;
pub use wsn_link_sim as link;
pub use wsn_mac as mac;
pub use wsn_models as models;
pub use wsn_params as params;
pub use wsn_radio as radio;
pub use wsn_serve as serve;
pub use wsn_sim_engine as sim;

/// The multi-link network API, promoted to a first-class surface: scenario
/// description and building ([`Scenario`], [`LinkSpec`], [`Position`]),
/// topology dynamics ([`ScenarioTimeline`], [`TopologyEvent`]), the
/// shared-channel simulator ([`NetworkSimulation`]), its outcome types
/// ([`NetworkOutcome`], [`LinkOutcome`], [`AirStats`], [`TopoStats`],
/// [`EpochSnapshot`]), and the named scenario and timeline catalogs
/// ([`all_scenarios`], [`build_scenario`], [`all_timelines`],
/// [`build_timeline`]).
pub mod net {
    pub use wsn_link_sim::catalog::{all_scenarios, all_timelines, build_scenario, build_timeline};
    pub use wsn_link_sim::network::{
        scenario_from_interference, AirStats, EpochLink, EpochSnapshot, LinkOutcome, NetOptions,
        NetworkOutcome, NetworkSimulation, TopoStats,
    };
    pub use wsn_params::scenario::{LinkSpec, Position, Scenario, ScenarioBuilder};
    pub use wsn_params::timeline::{
        failure_storm, from_trajectories, random_waypoint, ScenarioTimeline, TopologyAction,
        TopologyEvent,
    };
}

/// One-stop import for applications built on the library.
pub mod prelude {
    pub use wsn_analytic::prelude::*;
    pub use wsn_link_sim::prelude::*;
    pub use wsn_mac::prelude::*;
    pub use wsn_models::prelude::*;
    pub use wsn_params::prelude::*;
    pub use wsn_radio::prelude::*;
    pub use wsn_serve::prelude::*;
    pub use wsn_sim_engine::prelude::*;
}
