//! Analytic tune pre-scan: the paper's Table IV case-study pick in
//! microseconds per candidate.
//!
//! The case study (Sec. VIII-C) bulk-transfers over a shadowed 35 m link
//! and asks for the most goodput whose energy per bit stays within 20 %
//! of the best achievable anywhere on the grid. Table IV answers it with
//! the fitted-model optimizer; this example answers it with the analytic
//! M/G/1 engine instead — every candidate of the joint grid evaluated in
//! closed form (the same pre-scan `repro serve` runs for
//! `{"op":"tune","engine":"analytic"}`) — and then cross-checks the one
//! winning configuration against the golden event-driven simulator.
//!
//! ```sh
//! cargo run --release --example analytic_tune
//! ```

use std::time::Instant;

use wsn_linkconf::experiments::campaign::{Campaign, Scale};
use wsn_linkconf::experiments::sweep::case_study_channel;
use wsn_linkconf::experiments::table04;
use wsn_linkconf::link::traffic::TrafficModel;
use wsn_linkconf::sim::mode::EngineMode;

fn main() {
    // The Table IV search space: the paper grid's power × payload ×
    // retry axes, pinned to the case-study distance and load.
    let grid = table04::joint_grid();
    let candidates: Vec<_> = grid.iter().collect();
    println!(
        "case study: shadowed 35 m link, {} candidate configurations",
        candidates.len()
    );

    // 1. Analytic pre-scan: rank every candidate in closed form under a
    //    backlogged sender (the case study is a bulk transfer).
    let campaign = Campaign::new(Scale::Quick)
        .with_channel(case_study_channel())
        .with_traffic(TrafficModel::Saturating)
        .with_engine(EngineMode::Analytic);
    let t0 = Instant::now();
    let scanned = campaign.run_configs(&candidates);
    let scan = t0.elapsed();
    println!(
        "analytic pre-scan: {} configs in {:.1} ms ({:.1} µs/config)",
        scanned.len(),
        scan.as_secs_f64() * 1e3,
        scan.as_secs_f64() * 1e6 / scanned.len() as f64,
    );

    // 2. The paper's joint formulation: max goodput subject to energy
    //    within 20 % of the best energy anywhere on the grid.
    let best_energy = scanned
        .iter()
        .map(|r| r.metrics.u_eng_uj_per_bit)
        .filter(|u| u.is_finite())
        .fold(f64::INFINITY, f64::min);
    let winner = scanned
        .iter()
        .filter(|r| r.metrics.u_eng_uj_per_bit <= best_energy * 1.2)
        .max_by(|a, b| {
            a.metrics
                .goodput_bps
                .partial_cmp(&b.metrics.goodput_bps)
                .expect("finite goodput")
        })
        .expect("the case-study grid has feasible points");
    println!(
        "\nanalytic pick: Ptx={}, lD={} B, NmaxTries={}",
        winner.config.power.level(),
        winner.config.payload.bytes(),
        winner.config.max_tries.get(),
    );
    println!(
        "  predicted: {:.2} kb/s at {:.3} µJ/bit",
        winner.metrics.goodput_bps / 1e3,
        winner.metrics.u_eng_uj_per_bit,
    );
    println!("  paper's joint row (Table IV): Ptx=31, lD=68 B, N=3 — 22.28 kb/s at 0.24 µJ/bit");

    // 3. Cross-check: only the winner is re-simulated, through the golden
    //    event-driven engine.
    let golden = Campaign::new(Scale::Quick)
        .with_channel(case_study_channel())
        .with_traffic(TrafficModel::Saturating);
    let t0 = Instant::now();
    let simulated = &golden.run_configs(&[winner.config])[0];
    let sim = t0.elapsed();
    println!(
        "\ngolden cross-check of the winner ({:.0} ms): {:.2} kb/s at {:.3} µJ/bit",
        sim.as_secs_f64() * 1e3,
        simulated.metrics.goodput_bps / 1e3,
        simulated.metrics.u_eng_uj_per_bit,
    );
    let rel = |a: f64, b: f64| ((a - b) / b.abs().max(1e-12)).abs();
    println!(
        "  deviation: goodput {:.1} %, energy {:.1} % — the pre-scan ranked \
         {} candidates for less than the cost of simulating this one",
        rel(winner.metrics.goodput_bps, simulated.metrics.goodput_bps) * 100.0,
        rel(
            winner.metrics.u_eng_uj_per_bit,
            simulated.metrics.u_eng_uj_per_bit
        ) * 100.0,
        scanned.len(),
    );
}
