//! Adaptive payload sizing: track a time-varying link with the empirical
//! energy model (Sec. IV-C).
//!
//! The paper's Fig. 9 observation — the energy-optimal payload shrinks from
//! 114 bytes to ~40 bytes as the SNR falls from 17 dB to 5 dB — turns into
//! a simple adaptation policy: estimate the SNR, ask the model for the
//! optimal `lD`, and reconfigure. This example simulates a link whose
//! quality degrades in stages (e.g. a door opening onto the hallway) and
//! compares three policies: fixed-small, fixed-large, and model-adaptive.
//!
//! ```sh
//! cargo run --release --example adaptive_payload
//! ```

use wsn_linkconf::prelude::*;

/// Simulate one stage and return measured (energy uJ/bit, goodput kb/s).
fn run_stage(payload: PayloadSize, channel: ChannelConfig, seed: u64) -> (f64, f64) {
    let config = StackConfig::builder()
        .distance_m(35.0)
        .power_level(31)
        .payload_bytes(payload.bytes())
        .packet_interval_ms(100)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .build()
        .expect("valid constants");
    let outcome = LinkSimulation::new(
        config,
        SimOptions::quick(800).with_seed(seed).with_channel(channel),
    )
    .run();
    let m = outcome.metrics();
    (m.u_eng_uj_per_bit, m.goodput_bps / 1e3)
}

fn main() -> Result<(), InvalidParam> {
    // Stages of link degradation: extra attenuation in dB on top of the
    // hallway path loss (0 = nominal, 14 = heavily shadowed).
    let stages: [(f64, &str); 4] = [
        (0.0, "clear hallway"),
        (10.0, "light shadowing"),
        (17.0, "heavy shadowing"),
        (23.0, "deep fade"), // SNR ≈ 6 dB: deep grey zone
    ];

    let energy_model = EnergyModel::paper();
    let budget = LinkBudget::paper_hallway();
    let d35 = Distance::from_meters(35.0)?;
    let max_power = PowerLevel::MAX;

    println!("stage               snr_dB  policy          lD    uJ/bit   kb/s");
    println!("{}", "-".repeat(70));

    let mut totals = [0.0f64; 3]; // energy accumulators per policy
    for (i, &(extra_loss, label)) in stages.iter().enumerate() {
        let mut channel = ChannelConfig::paper_hallway();
        channel.pathloss.reference_loss_db += extra_loss;
        let snr = budget.snr_db(max_power, d35) - extra_loss;

        // The three policies.
        let adaptive = energy_model.optimal_payload(snr, max_power);
        let policies: [(&str, PayloadSize); 3] = [
            ("fixed-small", PayloadSize::new(20)?),
            ("fixed-large", PayloadSize::MAX),
            ("adaptive", adaptive),
        ];

        for (pi, (name, payload)) in policies.iter().enumerate() {
            let (uj, kbps) = run_stage(*payload, channel, (i * 10 + pi) as u64);
            totals[pi] += uj;
            println!(
                "{label:<18} {snr:>6.1}  {name:<14} {:>4}  {uj:>7.3}  {kbps:>6.2}",
                payload.bytes()
            );
        }
        println!();
    }

    println!("total energy per bit across stages (lower is better):");
    let names = ["fixed-small", "fixed-large", "adaptive"];
    for (name, total) in names.iter().zip(totals) {
        println!("  {name:<12} {total:>8.3} uJ/bit-stage");
    }
    let winner = names[totals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty")
        .0];
    println!("  winner: {winner}");
    println!(
        "\nThe adaptive policy tracks the model's optimum (Fig. 9): max payload on a\n\
         clear link, shrinking payloads as the SNR sinks into the grey zone."
    );
    Ok(())
}
