//! Parameter-space exploration: run a miniature version of the paper's
//! measurement campaign and inspect the trade-off structure.
//!
//! The paper iterated ~8064 configurations per distance; this example runs
//! a reduced grid on the 35 m link, prints the measured spread of each
//! performance metric, and contrasts the simulation-measured best
//! configurations with the analytic Pareto front.
//!
//! ```sh
//! cargo run --release --example parameter_sweep
//! ```

use wsn_linkconf::prelude::*;
use wsn_params::grid::ParamGrid;

fn main() -> Result<(), InvalidParam> {
    // A 96-configuration sub-grid of Table I on the 35 m link.
    let grid = ParamGrid {
        distances_m: vec![35.0],
        power_levels: vec![3, 11, 19, 31],
        max_tries: vec![1, 3, 8],
        retry_delays_ms: vec![0],
        queue_caps: vec![1, 30],
        packet_intervals_ms: vec![30, 100],
        payloads: vec![20, 110],
    };
    grid.validate()?;
    println!(
        "sweeping {} configurations x 500 packets on the 35 m link …\n",
        grid.len()
    );

    let mut results = Vec::new();
    for (i, config) in grid.iter().enumerate() {
        let outcome = LinkSimulation::new(config, SimOptions::quick(500).with_seed(i as u64)).run();
        results.push((config, outcome.metrics().clone()));
    }

    // Spread of each metric across the grid.
    let span = |f: &dyn Fn(&LinkMetrics) -> f64| -> (f64, f64) {
        let vals: Vec<f64> = results
            .iter()
            .map(|(_, m)| f(m))
            .filter(|v| v.is_finite())
            .collect();
        (
            vals.iter().cloned().fold(f64::INFINITY, f64::min),
            vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        )
    };
    println!("metric spread across the grid (min .. max):");
    let (lo, hi) = span(&|m| m.goodput_bps / 1e3);
    println!("  goodput   {lo:>10.2} .. {hi:>10.2} kb/s");
    let (lo, hi) = span(&|m| m.delay_mean_ms);
    println!("  delay     {lo:>10.2} .. {hi:>10.2} ms");
    let (lo, hi) = span(&|m| m.plr_total());
    println!("  loss      {lo:>10.4} .. {hi:>10.4}");
    let (lo, hi) = span(&|m| m.u_eng_uj_per_bit);
    println!("  energy    {lo:>10.3} .. {hi:>10.3} uJ/bit");

    // Measured winners per single objective.
    println!("\nmeasured single-objective winners:");
    let best = |name: &str, key: &dyn Fn(&LinkMetrics) -> f64, minimise: bool| {
        let (cfg, m) = results
            .iter()
            .filter(|(_, m)| key(m).is_finite())
            .min_by(|a, b| {
                let (x, y) = (key(&a.1), key(&b.1));
                let ord = x.partial_cmp(&y).expect("finite");
                if minimise {
                    ord
                } else {
                    ord.reverse()
                }
            })
            .expect("non-empty grid");
        println!("  {name:<8} {:>10.3}  <- {cfg}", key(m));
    };
    best("goodput", &|m| m.goodput_bps / 1e3, false);
    best("delay", &|m| m.delay_mean_ms, true);
    best("loss", &|m| m.plr_total(), true);
    best("energy", &|m| m.u_eng_uj_per_bit, true);

    // The analytic Pareto front over the same grid.
    let optimizer = Optimizer::paper();
    let front = optimizer.pareto_front(&grid, &[Metric::Energy, Metric::Goodput, Metric::Loss]);
    println!(
        "\nanalytic 3-objective Pareto front (energy, goodput, loss): {} of {} configurations",
        front.len(),
        grid.len()
    );
    for e in front.iter().take(10) {
        println!(
            "  {} -> {:>7.2} kb/s, {:>6.3} uJ/bit, loss {:>7.4}",
            e.config,
            e.predicted.max_goodput_bps / 1e3,
            e.predicted.u_eng_uj_per_bit,
            e.predicted.plr_total()
        );
    }
    println!("\nNo single configuration wins every metric — the multi-objective\nstructure is why joint tuning (Sec. VIII) matters.");
    Ok(())
}
