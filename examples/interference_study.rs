//! Interference study: how a co-channel neighbour degrades a tuned link,
//! and how re-running the joint optimizer recovers performance.
//!
//! Extends the paper (Sec. VIII-D names concurrent transmission as the
//! first unmodeled factor): we tune a link for a clean channel, inject an
//! 802.15.4 neighbour at increasing airtime, watch the configuration
//! degrade, then let the optimizer re-tune for the effective (interfered)
//! link quality.
//!
//! ```sh
//! cargo run --release --example interference_study
//! ```
//!
//! This example exercises the **legacy probabilistic** interference path:
//! `InterferenceModel` perturbs the single-link simulation statistically
//! (CCA busy probability + per-frame corruption draws), which is the
//! right model for interferers *outside* the simulation, such as Wi-Fi.
//! For a CCA-detectable in-band 802.15.4 neighbour the interferer can
//! instead be **promoted to an explicit link** on a shared channel —
//! `scenario_from_interference` builds the equivalent two-link
//! `Scenario`, where deferrals and collisions emerge from geometry and
//! timing rather than from a fixed probability (see `repro scenario
//! interference` and DESIGN.md §10).

use wsn_linkconf::prelude::*;

fn measure(config: StackConfig, interference: InterferenceModel, seed: u64) -> LinkMetrics {
    let mut channel = ChannelConfig::paper_hallway();
    channel.interference = interference;
    LinkSimulation::new(
        config,
        SimOptions::quick(1200)
            .with_seed(seed)
            .with_channel(channel),
    )
    .run()
    .metrics()
    .clone()
}

fn main() -> Result<(), InvalidParam> {
    // A link tuned for the clean channel: max payload, light retx.
    let tuned_clean = StackConfig::builder()
        .distance_m(20.0)
        .power_level(23)
        .payload_bytes(114)
        .max_tries(2)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(40)
        .build()?;

    println!("clean-channel tuning under growing interferer airtime:");
    println!("airtime   per     tries   goodput_kbps   delay_ms");
    for (i, airtime) in [0.0, 0.15, 0.3, 0.5].iter().enumerate() {
        let m = measure(
            tuned_clean,
            InterferenceModel::zigbee_neighbor(*airtime),
            i as u64,
        );
        println!(
            "{airtime:>7.2} {:>7.3} {:>7.2} {:>12.2} {:>10.2}",
            m.per,
            m.mean_tries,
            m.goodput_bps / 1e3,
            m.delay_mean_ms
        );
    }

    // Re-tune for the interfered link: the collision probability acts like
    // a permanent SNR penalty, so feed the optimizer the *effective* SNR.
    let interference = InterferenceModel::zigbee_neighbor(0.5);
    let penalty_db = {
        // Expected SINR loss: collisions see the raised floor.
        let p = interference.collision_probability();
        let clean_noise = -95.0;
        let busy_noise = interference.effective_noise_dbm(clean_noise);
        p * (busy_noise - clean_noise)
    };
    println!("\ninterferer at 50% airtime ≈ {penalty_db:.1} dB average SINR penalty");

    // The guidelines respond by shrinking payload / adding retransmissions.
    let guidelines = Guidelines::paper();
    let budget = LinkBudget::paper_hallway();
    let d = Distance::from_meters(20.0)?;
    let effective_snr = budget.snr_db(tuned_clean.power, d) - penalty_db;
    let payload = guidelines.goodput_payload(effective_snr, MaxTries::new(8)?);
    let mut retuned = tuned_clean;
    retuned.payload = payload;
    retuned.max_tries = MaxTries::new(8)?;

    let before = measure(tuned_clean, interference, 100);
    let after = measure(retuned, interference, 101);
    println!(
        "\nre-tuned for effective SNR {effective_snr:.1} dB: lD {} -> {}, N 2 -> 8",
        tuned_clean.payload.bytes(),
        retuned.payload.bytes()
    );
    println!(
        "delivery ratio: {:.3} -> {:.3};  goodput: {:.2} -> {:.2} kb/s",
        before.delivery_ratio(),
        after.delivery_ratio(),
        before.goodput_bps / 1e3,
        after.goodput_bps / 1e3
    );
    println!("\nJoint, link-quality-aware tuning absorbs interference the same way it\nabsorbs distance or shadowing — by reading the models at the effective SNR.");
    Ok(())
}
