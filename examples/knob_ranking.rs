//! Knob ranking: which of the six tunable parameters matters most, for
//! which metric, at the current operating point?
//!
//! The paper's central theme is that parameter effects are joint — a
//! knob's leverage depends on where the other knobs (and the link) sit.
//! This example prints tornado-style sensitivity tables for two very
//! different operating points.
//!
//! ```sh
//! cargo run --release --example knob_ranking
//! ```

use wsn_linkconf::prelude::*;
use wsn_params::grid::ParamGrid;

fn print_ranking(predictor: &Predictor, config: &StackConfig, grid: &ParamGrid) {
    let snr = predictor.budget.snr_db(config.power, config.distance);
    println!("\noperating point: {config}");
    println!("predicted SNR {snr:.1} dB — {}", Zone::of(snr));
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8}",
        "", "energy", "goodput", "delay", "loss"
    );
    for knob in Knob::all() {
        let mut row = format!("{:<22}", knob.name());
        for metric in [Metric::Energy, Metric::Goodput, Metric::Delay, Metric::Loss] {
            let ranking = tornado(predictor, config, grid, metric);
            let impact = ranking
                .iter()
                .find(|k| k.knob == knob)
                .map_or(0.0, |k| k.relative_impact);
            row.push_str(&format!(" {impact:>8.3}"));
        }
        println!("{row}");
    }
}

fn main() -> Result<(), InvalidParam> {
    let predictor = Predictor::paper();
    let grid = ParamGrid::paper();

    // A grey-zone operating point under load…
    let grey = StackConfig::builder()
        .distance_m(35.0)
        .power_level(3)
        .payload_bytes(65)
        .max_tries(3)
        .retry_delay_ms(30)
        .queue_cap(30)
        .packet_interval_ms(30)
        .build()?;
    print_ranking(&predictor, &grey, &grid);

    // …and a comfortable low-impact-zone point.
    let clean = StackConfig::builder()
        .distance_m(35.0)
        .power_level(31)
        .payload_bytes(65)
        .max_tries(3)
        .retry_delay_ms(30)
        .queue_cap(30)
        .packet_interval_ms(100)
        .build()?;
    print_ranking(&predictor, &clean, &grid);

    println!(
        "\nnumbers are max |relative metric change| when moving the knob one\n\
         Table-I grid step. In the grey zone nearly every knob is live; above\n\
         19 dB only the load knobs (Tpkt) retain leverage — the paper's\n\
         joint-effect zones in one table."
    );
    Ok(())
}
