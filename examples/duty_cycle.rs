//! Duty-cycle tuning: picking the LPL wake interval for a monitoring
//! application with a latency budget.
//!
//! Extends the paper along its Sec. VIII-D "periodic wake-ups" axis: the
//! wake interval becomes an eighth stack parameter whose energy–latency
//! trade-off has a closed-form optimum.
//!
//! ```sh
//! cargo run --release --example duty_cycle
//! ```

use wsn_linkconf::prelude::*;

fn main() -> Result<(), InvalidParam> {
    let model = LplModel::new(PowerLevel::MAX, PayloadSize::new(50)?);
    let check = SimDuration::from_millis(11);

    // A home-monitoring sensor: one reading every 5 s, alarms must arrive
    // within 300 ms.
    let rate_pps = 0.2;
    let latency_budget = SimDuration::from_millis(300);

    println!("traffic: {rate_pps} pkt/s, latency budget {latency_budget}");
    println!("\nwake_ms   duty%   sender_mW  receiver_mW  total_mW  latency_ms");
    for wake_ms in [64u64, 128, 256, 512, 1024, 2048] {
        let lpl = LplConfig::new(SimDuration::from_millis(wake_ms), check);
        let b = model.power_budget(&lpl, rate_pps);
        println!(
            "{wake_ms:>7} {:>6.2} {:>10.4} {:>12.4} {:>9.4} {:>11.1}",
            lpl.receiver_duty_cycle() * 100.0,
            b.sender_tx_w * 1e3,
            b.receiver_listen_w * 1e3,
            b.total_w() * 1e3,
            model.added_latency_s(&lpl) * 1e3,
        );
    }

    // Unconstrained energy optimum vs the latency-constrained choice.
    let unconstrained = model.optimal_wake_interval(check, rate_pps, SimDuration::from_secs(8));
    let latency_cap = model
        .max_interval_for_latency(check, latency_budget)
        .expect("budget is feasible");
    let chosen = if unconstrained < latency_cap {
        unconstrained
    } else {
        latency_cap
    };

    let lpl = LplConfig::new(chosen, check);
    let always_on = model.always_on_power_w(rate_pps);
    let duty_cycled = model.power_budget(&lpl, rate_pps).total_w();
    println!("\nenergy-optimal wake interval (closed form): {unconstrained}");
    println!("latency budget caps the interval at:        {latency_cap}");
    println!("chosen interval:                            {chosen}");
    println!(
        "power: {:.3} mW duty-cycled vs {:.3} mW always-on ({:.0}x saving)",
        duty_cycled * 1e3,
        always_on * 1e3,
        always_on / duty_cycled
    );
    println!(
        "mean added latency: {:.0} ms (within the {} budget)",
        model.added_latency_s(&lpl) * 1e3,
        latency_budget
    );
    Ok(())
}
