//! Quickstart: configure a link, simulate it, and compare the measured
//! performance against the paper's empirical models.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wsn_linkconf::prelude::*;

fn main() -> Result<(), InvalidParam> {
    // 1. One point in the 7-parameter configuration space (Table I).
    let config = StackConfig::builder()
        .distance_m(35.0) // PHY: sender-receiver distance
        .power_level(23) // PHY: CC2420 PA level (-3 dBm)
        .payload_bytes(110) // App: payload lD
        .packet_interval_ms(30) // App: Tpkt
        .max_tries(3) // MAC: NmaxTries
        .retry_delay_ms(30) // MAC: Dretry
        .queue_cap(30) // Queue: Qmax
        .build()?;
    println!("configuration: {config}");

    // 2. Simulate 2000 packets over the synthetic hallway channel.
    let outcome = LinkSimulation::new(config, SimOptions::quick(2000)).run();
    let m = outcome.metrics();
    println!(
        "\n-- simulated ({} packets, {:.1}s of link time)",
        m.generated, m.duration_s
    );
    println!(
        "mean SNR          : {:>8.1} dB ({})",
        m.mean_snr_db,
        Zone::of(m.mean_snr_db)
    );
    println!(
        "goodput           : {:>8.2} kb/s (offered {:.2})",
        m.goodput_bps / 1e3,
        m.offered_bps / 1e3
    );
    println!(
        "mean delay        : {:>8.2} ms (p95 {:.2})",
        m.delay_mean_ms, m.delay_p95_ms
    );
    println!("mean service time : {:>8.2} ms", m.service_mean_ms);
    println!(
        "loss              : {:>8.4} (queue {:.4} + radio {:.4})",
        m.plr_total(),
        m.plr_queue,
        m.plr_radio
    );
    println!("PER (Eq. 1)       : {:>8.4}", m.per);
    println!("mean tries        : {:>8.3}", m.mean_tries);
    println!("energy U_eng      : {:>8.3} uJ/bit", m.u_eng_uj_per_bit);
    println!("utilization       : {:>8.3}", m.utilization);

    // 3. The paper's empirical models predict the same quantities
    //    analytically (Table III).
    let predictor = Predictor::paper();
    let p = predictor.evaluate(&config);
    println!("\n-- predicted by the empirical models");
    println!("SNR (link budget) : {:>8.1} dB", p.snr_db);
    println!(
        "max goodput       : {:>8.2} kb/s (Eq. 4)",
        p.max_goodput_bps / 1e3
    );
    println!(
        "service time      : {:>8.2} ms (Eqs. 5-7)",
        p.service_time_ms
    );
    println!("utilization rho   : {:>8.3} (Eq. 9)", p.rho);
    println!("radio loss        : {:>8.4} (Eq. 8)", p.plr_radio);
    println!(
        "energy U_eng      : {:>8.3} uJ/bit (Eq. 2)",
        p.u_eng_uj_per_bit
    );

    // 4. Ask the guidelines for a better operating point at this distance.
    let guidelines = Guidelines::paper();
    let candidates: Vec<PowerLevel> = [3u8, 7, 11, 15, 19, 23, 27, 31]
        .iter()
        .map(|&l| PowerLevel::new(l))
        .collect::<Result<_, _>>()?;
    if let Some(advice) = guidelines.energy_advice(config.distance, &candidates) {
        println!(
            "\nenergy guideline (Sec. IV-C): use {} with {} (predicted SNR {:.1} dB)",
            advice.power, advice.payload, advice.snr_db
        );
    }
    Ok(())
}
