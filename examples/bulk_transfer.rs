//! The paper's Sec. VIII case study: bulk transfer over a shadowed 35 m
//! link, single-parameter baselines vs joint multi-objective optimization.
//!
//! An indoor sensor must push backlogged data to a base station in a short
//! slot; throughput is the primary goal but energy per bit must stay low.
//! Four literature guidelines each tune one knob; the joint optimizer runs
//! the epsilon-constraint method over the measured grid and dominates all
//! of them (Fig. 1 / Table IV).
//!
//! ```sh
//! cargo run --release --example bulk_transfer
//! ```

use wsn_linkconf::prelude::*;
use wsn_params::grid::ParamGrid;

fn simulate(config: StackConfig, seed: u64) -> (f64, f64) {
    // The case-study channel: hallway + ~23 dB shadowing (6 dB SNR at max
    // power), saturating sender.
    let mut channel = ChannelConfig::paper_hallway();
    channel.pathloss.reference_loss_db = 55.2;
    let outcome = LinkSimulation::new(
        config,
        SimOptions::quick(1500)
            .with_seed(seed)
            .with_channel(channel)
            .with_traffic(TrafficModel::Saturating),
    )
    .run();
    let m = outcome.metrics();
    (m.goodput_bps / 1e3, m.u_eng_uj_per_bit)
}

fn main() -> Result<(), InvalidParam> {
    // The current operating point.
    let base = StackConfig::builder()
        .distance_m(35.0)
        .power_level(23)
        .payload_bytes(114)
        .max_tries(1)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(30)
        .build()?;

    // The joint optimizer works on the paper's models with the case-study
    // link budget (6 dB at max power).
    let mut predictor = Predictor::paper();
    predictor.budget = LinkBudget::case_study();
    let optimizer = Optimizer { predictor };
    let grid = ParamGrid {
        distances_m: vec![35.0],
        queue_caps: vec![30],
        packet_intervals_ms: vec![30],
        ..ParamGrid::paper()
    };

    println!("method                    Ptx   lD   N   goodput_kbps   uJ/bit");
    println!("{}", "-".repeat(66));

    let mut rows: Vec<(String, StackConfig)> = vec![("no tuning".into(), base)];
    for baseline in Baseline::all() {
        rows.push((baseline.label().to_string(), baseline.apply(&base)));
    }
    let joint = optimizer
        .joint_energy_goodput(&grid, 1.2)
        .expect("feasible grid");
    rows.push(("JOINT (this work)".into(), joint.config));

    let mut best_single = (0.0f64, f64::INFINITY);
    let mut joint_point = (0.0f64, 0.0f64);
    for (i, (label, config)) in rows.iter().enumerate() {
        let (kbps, uj) = simulate(*config, i as u64);
        println!(
            "{label:<24} {:>4} {:>4} {:>3}   {kbps:>12.2} {uj:>8.3}",
            config.power.level(),
            config.payload.bytes(),
            config.max_tries.get()
        );
        if label.starts_with("JOINT") {
            joint_point = (kbps, uj);
        } else {
            best_single.0 = best_single.0.max(kbps);
            best_single.1 = best_single.1.min(uj);
        }
    }

    println!(
        "\njoint tuning: {:.2} kb/s at {:.3} uJ/bit — vs the best single-knob\n\
         goodput of {:.2} kb/s and the best single-knob energy of {:.3} uJ/bit.\n\
         Tuning power, payload and retransmissions *together* reaches a point no\n\
         single-parameter guideline can (the paper's Fig. 1).",
        joint_point.0, joint_point.1, best_single.0, best_single.1
    );

    // Show the Pareto front the optimizer saw.
    let front = optimizer.pareto_front(&grid, &[Metric::Energy, Metric::Goodput]);
    println!(
        "\nmodel Pareto front (energy vs goodput), {} points:",
        front.len()
    );
    for e in front.iter().take(12) {
        println!(
            "  Ptx={:<2} lD={:<3} N={} -> {:>7.2} kb/s at {:>6.3} uJ/bit",
            e.config.power.level(),
            e.config.payload.bytes(),
            e.config.max_tries.get(),
            e.predicted.max_goodput_bps / 1e3,
            e.predicted.u_eng_uj_per_bit
        );
    }
    Ok(())
}
