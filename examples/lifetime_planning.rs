//! Lifetime planning: turn the paper's energy model into a deployment
//! answer — "how long will my node last, and which knobs buy me months?"
//!
//! ```sh
//! cargo run --release --example lifetime_planning
//! ```

use wsn_linkconf::models::battery::{always_on_drain_w, estimate, Battery};
use wsn_linkconf::prelude::*;

fn main() -> Result<(), InvalidParam> {
    let battery = Battery::two_aa();
    let budget = LinkBudget::paper_hallway();

    println!(
        "battery: 2xAA, {:.0} mAh ({:.1} kJ)\n",
        battery.capacity_mah,
        battery.energy_j() / 1e3
    );

    // A home sensor reporting once per minute at 20 m.
    let cfg = StackConfig::builder()
        .distance_m(20.0)
        .power_level(31)
        .payload_bytes(50)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(60_000)
        .build()?;
    let snr = budget.snr_db(cfg.power, cfg.distance);
    println!("workload: 50 B per minute at 20 m (SNR {snr:.1} dB)");

    // Step 1: the paper's always-on stack.
    let drain = always_on_drain_w(snr, &cfg);
    let days = battery.lifetime_days(drain).unwrap_or(f64::INFINITY);
    println!("\n1. always-on MAC (the paper's testbed):");
    println!(
        "   drain {:.2} mW -> {days:.1} days — listen-bound, tuning barely helps",
        drain * 1e3
    );

    // Step 2: add duty cycling with a latency budget of 1 s.
    let model = LplModel::new(cfg.power, cfg.payload);
    let check = SimDuration::from_millis(11);
    let unconstrained = model.optimal_wake_interval(
        check,
        cfg.packet_interval.rate_pps(),
        SimDuration::from_secs(8),
    );
    let latency_cap = model
        .max_interval_for_latency(check, SimDuration::from_millis(1_000))
        .expect("1 s budget is feasible");
    let wake = if unconstrained < latency_cap {
        unconstrained
    } else {
        latency_cap
    };
    let lpl = LplConfig::new(wake, check);
    let est = estimate(&battery, snr, &cfg, &lpl);
    println!(
        "\n2. + LPL duty cycling (wake {wake}, mean added latency {:.0} ms):",
        model.added_latency_s(&lpl) * 1e3
    );
    println!(
        "   {:.0} days — {:.0}x the always-on lifetime",
        est.lpl_days,
        est.lpl_days / days
    );

    // Step 3: does link-quality tuning still matter under LPL? Yes — the
    // power level sets the preamble cost.
    println!("\n3. power level under LPL (energy guideline, Sec. IV-C):");
    for level in [31u8, 19, 11, 7] {
        let power = PowerLevel::new(level)?;
        let snr_at = budget.snr_db(power, cfg.distance);
        if Zone::of(snr_at).is_grey() {
            println!("   Ptx={level}: SNR {snr_at:.1} dB — grey zone, retransmissions would eat the savings; skip");
            continue;
        }
        let mut tuned = cfg;
        tuned.power = power;
        let e = estimate(&battery, snr_at, &tuned, &lpl);
        println!(
            "   Ptx={level}: SNR {snr_at:.1} dB -> {:.0} days",
            e.lpl_days
        );
    }

    println!(
        "\nThe paper's guideline composes with duty cycling: pick the smallest\n\
         power that stays out of the grey zone, then let LPL sleep through the\n\
         rest of the interval."
    );
    Ok(())
}
