//! Cross-crate integration tests: the discrete-event simulation and the
//! paper's analytic models must agree on the link's behaviour.

use wsn_linkconf::prelude::*;

fn config(power: u8, tries: u8, tpkt: u32, qmax: u16) -> StackConfig {
    StackConfig::builder()
        .distance_m(35.0)
        .power_level(power)
        .payload_bytes(110)
        .max_tries(tries)
        .retry_delay_ms(30)
        .queue_cap(qmax)
        .packet_interval_ms(tpkt)
        .build()
        .expect("valid constants")
}

/// Simulate on the ideal (fading-free, constant-noise) channel so the mean
/// SNR is exact and model comparisons are sharp.
fn run_ideal(cfg: StackConfig, packets: u64) -> LinkMetrics {
    LinkSimulation::new(
        cfg,
        SimOptions::quick(packets).with_channel(ChannelConfig::ideal()),
    )
    .run()
    .metrics()
    .clone()
}

#[test]
fn simulated_service_time_matches_eqs_5_to_7() {
    let model = ServiceTimeModel::paper();
    for power in [11u8, 19, 31] {
        let cfg = config(power, 3, 100, 30);
        let m = run_ideal(cfg, 1500);
        let snr = m.mean_snr_db;
        let predicted =
            model.plugin_service_time_s(snr, cfg.payload, cfg.max_tries, cfg.retry_delay) * 1e3;
        let err = (m.service_mean_ms - predicted).abs() / predicted;
        // Eq. 7's constants (0.02, −0.18) deviate from the channel's Eq. 3
        // ground truth most around the zone boundary, so allow 20 %.
        assert!(
            err < 0.20,
            "Ptx={power}: simulated {:.2} ms vs model {:.2} ms ({:.1}% off)",
            m.service_mean_ms,
            predicted,
            err * 100.0
        );
    }
}

#[test]
fn simulated_tries_match_eq7_shape() {
    let model = ServiceTimeModel::paper();
    for power in [7u8, 11, 23] {
        let cfg = config(power, 8, 100, 30);
        let m = run_ideal(cfg, 1500);
        let predicted = model.mean_tries(m.mean_snr_db, cfg.payload);
        assert!(
            (m.mean_tries - predicted).abs() < 0.35,
            "Ptx={power}: tries {} vs Eq.7 {}",
            m.mean_tries,
            predicted
        );
    }
}

#[test]
fn utilization_above_one_explodes_delay() {
    // Paper Table II + Fig. 15: rho > 1 is the delay cliff.
    let model = ServiceTimeModel::paper();
    let overloaded = config(3, 8, 20, 30); // deep grey zone, fast arrivals
    let stable = config(31, 3, 100, 30);
    let m_over = run_ideal(overloaded, 800);
    let m_stable = run_ideal(stable, 800);
    assert!(model.utilization(m_over.mean_snr_db, &overloaded) > 1.0);
    assert!(model.utilization(m_stable.mean_snr_db, &stable) < 1.0);
    assert!(
        m_over.delay_mean_ms > 20.0 * m_stable.delay_mean_ms,
        "overloaded {} ms vs stable {} ms",
        m_over.delay_mean_ms,
        m_stable.delay_mean_ms
    );
}

#[test]
fn radio_loss_matches_eq8_within_tolerance() {
    let model = RadioLossModel::paper();
    for tries in [1u8, 3] {
        let cfg = config(7, tries, 200, 30);
        let m = run_ideal(cfg, 2000);
        let predicted = model.rate(m.mean_snr_db, cfg.payload, cfg.max_tries);
        assert!(
            (m.plr_radio - predicted).abs() < 0.08,
            "tries={tries}: sim {} vs Eq.8 {}",
            m.plr_radio,
            predicted
        );
    }
}

#[test]
fn loss_decomposition_is_consistent() {
    let cfg = config(3, 8, 20, 1); // heavy overload, tiny queue
    let m = run_ideal(cfg, 1000);
    assert!(m.conserves_packets());
    assert!(
        m.plr_queue > 0.3,
        "expected queue drops, got {}",
        m.plr_queue
    );
    let ratio = m.delivered as f64 / m.generated as f64;
    assert!((ratio + m.plr_total() + m.residual as f64 / m.generated as f64 - 1.0).abs() < 1e-9);
}

#[test]
fn goodput_saturates_beyond_low_impact_zone() {
    // Paper Sec. V-A: goodput stops improving much past ~19 dB.
    let grey = run_ideal(config(3, 3, 30, 30), 1000);
    let edge = run_ideal(config(11, 3, 30, 30), 1000);
    let high = run_ideal(config(31, 3, 30, 30), 1000);
    assert!(Zone::of(grey.mean_snr_db).is_grey());
    assert!(!Zone::of(edge.mean_snr_db).is_grey());
    let grey_gain = edge.goodput_bps - grey.goodput_bps;
    let high_gain = high.goodput_bps - edge.goodput_bps;
    assert!(
        high_gain < grey_gain / 2.0,
        "gain grey->edge {grey_gain}, edge->max {high_gain}"
    );
}

#[test]
fn u_eng_measurement_matches_eq2_on_ideal_channel() {
    let model = EnergyModel::paper();
    let cfg = config(19, 8, 100, 30);
    let m = run_ideal(cfg, 2000);
    let predicted = model.u_eng_uj_per_bit(m.mean_snr_db, cfg.payload, cfg.power);
    let err = (m.u_eng_uj_per_bit - predicted).abs() / predicted;
    // Eq. 2 charges retransmissions via 1/(1-PER); the simulation actually
    // performs them. With a big retry budget both views converge.
    assert!(
        err < 0.1,
        "sim {} vs Eq.2 {} ({:.1}% off)",
        m.u_eng_uj_per_bit,
        predicted,
        err * 100.0
    );
}

#[test]
fn zones_classify_simulated_links_consistently() {
    // A link whose measured PER is tiny must classify as low impact; a
    // high-PER link must be in the grey zone.
    let weak = run_ideal(config(3, 1, 200, 30), 800);
    let strong = run_ideal(config(31, 1, 200, 30), 800);
    assert_eq!(Zone::of(weak.mean_snr_db), Zone::HighImpact);
    assert_eq!(Zone::of(strong.mean_snr_db), Zone::LowImpact);
    assert!(weak.per > 0.3);
    assert!(strong.per < 0.05);
}

#[test]
fn saturating_sender_realises_model_max_goodput() {
    let model = GoodputModel::paper();
    let cfg = config(31, 3, 30, 30);
    let outcome = LinkSimulation::new(
        cfg,
        SimOptions::quick(1500)
            .with_channel(ChannelConfig::ideal())
            .with_traffic(TrafficModel::Saturating),
    )
    .run();
    let m = outcome.metrics();
    let predicted =
        model.max_goodput_bps(m.mean_snr_db, cfg.payload, cfg.max_tries, cfg.retry_delay);
    let ratio = m.goodput_bps / predicted;
    assert!(ratio > 0.85 && ratio < 1.15, "ratio={ratio}");
}

#[test]
fn littles_law_holds_on_simulated_traces() {
    for (power, tpkt) in [(31u8, 50u32), (11, 30), (7, 100)] {
        let cfg = StackConfig::builder()
            .distance_m(35.0)
            .power_level(power)
            .payload_bytes(110)
            .max_tries(3)
            .retry_delay_ms(30)
            .queue_cap(30)
            .packet_interval_ms(tpkt)
            .build()
            .expect("valid");
        let outcome = LinkSimulation::new(cfg, SimOptions::quick(1200)).run();
        let records = outcome.records.as_ref().expect("records requested");
        let (l, lw) = littles_law(records).expect("completed packets exist");
        let err = (l - lw).abs() / lw.max(1e-9);
        assert!(
            err < 0.05,
            "Ptx={power} Tpkt={tpkt}: L={l:.4} vs λW={lw:.4} ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn retry_delay_lengthens_service_time() {
    let fast = config(7, 8, 200, 30);
    let mut slow = fast;
    slow.retry_delay = RetryDelay::from_millis(100);
    let m_fast = run_ideal(fast, 800);
    let m_slow = run_ideal(slow, 800);
    assert!(
        m_slow.service_mean_ms > m_fast.service_mean_ms,
        "{} !> {}",
        m_slow.service_mean_ms,
        m_fast.service_mean_ms
    );
}
