//! Golden regression tests: pin the deterministic outputs that the
//! reproduction's headline numbers flow from. A change that moves any of
//! these values is either a deliberate recalibration (update the pins and
//! EXPERIMENTS.md together) or a regression.

use wsn_linkconf::prelude::*;

fn assert_close(what: &str, got: f64, want: f64, tol: f64) {
    assert!(
        (got - want).abs() <= tol,
        "{what}: got {got}, pinned {want} (±{tol})"
    );
}

#[test]
fn pinned_model_values() {
    // Eq. 3 at the canonical operating point.
    let per = ExpSurface::new(0.0128, -0.15);
    assert_close(
        "PER(19 dB, 110 B)",
        per.eval_prob(PayloadSize::new(110).unwrap(), 19.0),
        0.08148,
        1e-4,
    );

    // Eqs. 5–7: the Table II centre row.
    let service = ServiceTimeModel::paper();
    let t = service.plugin_service_time_s(
        20.0,
        PayloadSize::new(110).unwrap(),
        MaxTries::new(3).unwrap(),
        RetryDelay::from_millis(30),
    );
    assert_close("T_service(20 dB)", t * 1e3, 21.50, 0.05);

    // Eq. 4 ceiling on a clean link.
    let goodput = GoodputModel::paper();
    let g = goodput.max_goodput_bps(
        25.0,
        PayloadSize::MAX,
        MaxTries::new(3).unwrap(),
        RetryDelay::ZERO,
    );
    assert_close("maxGoodput(25 dB, 114 B)", g / 1e3, 47.0, 1.0);

    // Eq. 2 best case (Table IV neighbourhood).
    let energy = EnergyModel::paper();
    let u = energy.u_eng_uj_per_bit(25.0, PayloadSize::MAX, PowerLevel::MAX);
    assert_close("U_eng(25 dB, 114 B, Ptx 31)", u, 0.2523, 5e-3);
}

#[test]
fn pinned_channel_budget() {
    let budget = LinkBudget::paper_hallway();
    let d35 = Distance::from_meters(35.0).unwrap();
    assert_close(
        "SNR(Ptx 11 @ 35 m)",
        budget.snr_db(PowerLevel::new(11).unwrap(), d35),
        18.98,
        0.05,
    );
    assert_close(
        "SNR(Ptx 3 @ 35 m)",
        budget.snr_db(PowerLevel::new(3).unwrap(), d35),
        3.98,
        0.05,
    );
    // The case-study budget pins the paper's "6 dB at max power".
    let case = LinkBudget::case_study();
    assert_close(
        "case-study SNR(Ptx 31 @ 35 m)",
        case.snr_db(PowerLevel::MAX, d35),
        6.0,
        0.1,
    );
}

#[test]
fn pinned_simulation_metrics_at_fixed_seed() {
    // One deterministic run: any change to the engine, RNG streams, MAC
    // timing, or channel sampling shows up here first.
    let cfg = StackConfig::builder()
        .distance_m(35.0)
        .power_level(23)
        .payload_bytes(110)
        .max_tries(3)
        .retry_delay_ms(30)
        .queue_cap(30)
        .packet_interval_ms(30)
        .build()
        .unwrap();
    let m = LinkSimulation::new(cfg, SimOptions::quick(1000).with_seed(42))
        .run()
        .metrics()
        .clone();
    assert_eq!(m.generated, 1000);
    assert!(m.conserves_packets());
    // Pinned with generous-but-meaningful tolerances (seed-exact values
    // drift only if determinism breaks; these bounds catch physics drift).
    assert_close("goodput kb/s", m.goodput_bps / 1e3, 29.2, 0.4);
    assert_close("mean tries", m.mean_tries, 1.04, 0.03);
    assert_close("service ms", m.service_mean_ms, 20.5, 0.8);
    assert!(m.plr_total() < 0.01, "plr={}", m.plr_total());
}

#[test]
fn pinned_joint_optimum_shape() {
    let mut predictor = Predictor::paper();
    predictor.budget = LinkBudget::case_study();
    let optimizer = Optimizer { predictor };
    let grid = wsn_params::grid::ParamGrid {
        distances_m: vec![35.0],
        queue_caps: vec![30],
        packet_intervals_ms: vec![30],
        ..wsn_params::grid::ParamGrid::paper()
    };
    let joint = optimizer.joint_energy_goodput(&grid, 1.2).unwrap();
    // The optimizer's choice is fully deterministic: pin it exactly.
    assert_eq!(joint.config.power.level(), 31);
    assert_eq!(joint.config.payload.bytes(), 80);
    assert_eq!(joint.config.max_tries.get(), 8);
    assert_eq!(joint.config.retry_delay.millis(), 0);
    assert_close(
        "joint predicted goodput kb/s",
        joint.predicted.max_goodput_bps / 1e3,
        25.1,
        0.3,
    );
}

#[test]
fn pinned_timing_constants() {
    use wsn_linkconf::mac::timing;
    assert_eq!(timing::TURNAROUND.as_micros(), 224);
    assert_eq!(timing::MEAN_INITIAL_BACKOFF.as_micros(), 5_280);
    assert_eq!(timing::ACK_RECEIVE.as_micros(), 1_960);
    assert_eq!(timing::ACK_TIMEOUT.as_micros(), 8_192);
    assert_eq!(
        timing::spi_load(PayloadSize::new(110).unwrap()).as_micros(),
        7_035
    );
    assert_eq!(
        timing::frame_time(PayloadSize::new(110).unwrap()).as_micros(),
        4_128
    );
}
