//! Golden-metrics fixture: the bit-for-bit gate for hot-path work.
//!
//! A seeded `Scale::Bench` mini-grid is simulated and every
//! [`LinkMetrics`] field is compared against a committed snapshot
//! (`tests/golden/*.jsonl`, one JSON [`ConfigResult`] per line). The
//! fixture was generated from the pre-optimization code, so any
//! memoization/fast-path change that perturbs a single bit of a single
//! metric fails here with the offending configuration named.
//!
//! Regenerate (after a *deliberate* behavior change only) with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_metrics
//! ```

use std::path::PathBuf;

use wsn_experiments::campaign::{Campaign, ConfigResult, Scale};
use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;
use wsn_radio::channel::ChannelConfig;
use wsn_radio::per::{DsssPer, PerBackend};

/// The fixture grid: 3 distances × 3 powers × 2 retry budgets × 2
/// payloads = 36 configurations spanning strong, marginal and weak links.
fn mini_grid() -> ParamGrid {
    ParamGrid {
        distances_m: vec![10.0, 20.0, 35.0],
        power_levels: vec![3, 11, 31],
        max_tries: vec![1, 3],
        retry_delays_ms: vec![0],
        queue_caps: vec![30],
        packet_intervals_ms: vec![50],
        payloads: vec![50, 110],
    }
}

/// The two pinned campaigns: the paper's hallway channel with the
/// empirical PER surface, and the same channel with the first-principles
/// DSSS backend (so both memoizable PER paths are under the gate).
fn campaigns() -> Vec<(&'static str, Campaign)> {
    let empirical = Campaign {
        threads: 2,
        ..Campaign::new(Scale::Bench)
    };
    let mut dsss_channel = ChannelConfig::paper_hallway();
    dsss_channel.per_backend = PerBackend::Dsss(DsssPer);
    let dsss = Campaign {
        threads: 2,
        ..Campaign::new(Scale::Bench).with_channel(dsss_channel)
    };
    vec![("empirical", empirical), ("dsss", dsss)]
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.jsonl"))
}

fn to_jsonl(results: &[ConfigResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&serde_json::to_string(r).expect("results serialize"));
        out.push('\n');
    }
    out
}

fn from_jsonl(text: &str) -> Vec<ConfigResult> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("fixture line parses as ConfigResult"))
        .collect()
}

#[test]
fn optimized_path_reproduces_golden_fixture() {
    let configs: Vec<StackConfig> = mini_grid().iter().collect();
    assert_eq!(configs.len(), 36);
    let regen = std::env::var_os("GOLDEN_REGEN").is_some();

    for (name, campaign) in campaigns() {
        let results = campaign.run_configs(&configs);

        // The fixture must round-trip exactly through JSON: every config
        // has to deliver at least one packet, or ratio metrics go
        // non-finite and stop being representable.
        for r in &results {
            assert!(
                r.metrics.delivered > 0,
                "{name}: config {:?} delivered nothing; shrink the grid",
                r.config
            );
        }
        let serialized = to_jsonl(&results);
        assert!(
            !serialized.contains("null"),
            "{name}: non-finite metric leaked into the fixture"
        );

        let path = fixture_path(name);
        if regen {
            std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
            std::fs::write(&path, &serialized).expect("write fixture");
            eprintln!("regenerated {}", path.display());
        }

        let pinned = from_jsonl(&std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "cannot read {} ({e}); regenerate with GOLDEN_REGEN=1",
                path.display()
            )
        }));
        assert_eq!(pinned.len(), results.len(), "{name}: fixture length");
        for (i, (got, want)) in results.iter().zip(&pinned).enumerate() {
            // ConfigResult's PartialEq compares every LinkMetrics field on
            // the raw f64s — exact equality, no tolerance.
            assert_eq!(
                got, want,
                "{name}: config #{i} diverged from the golden fixture"
            );
        }

        // Belt and braces: the serialized form must match byte-for-byte
        // (shortest-round-trip f64 formatting is canonical, so this is
        // exactly bit-for-bit equality of every float).
        let pinned_text = std::fs::read_to_string(&path).expect("fixture readable");
        assert_eq!(
            serialized, pinned_text,
            "{name}: serialized results differ from fixture bytes"
        );
    }
}
