//! The N=1 equivalence contract of the shared-channel network simulator,
//! plus the emergent multi-link behaviors it must exhibit.
//!
//! The contract (DESIGN.md §10): a one-link churn-free [`Scenario`] run
//! through [`NetworkSimulation`] is *bit-for-bit identical* to the same
//! configuration run through the direct [`LinkSimulation`] path — same
//! RNG streams, same event order, same floats. The golden fixture test
//! pins that contract to the committed `tests/golden/*.jsonl` snapshots;
//! the proptest extends it to arbitrary valid configurations.

use proptest::prelude::*;

use wsn_linkconf::experiments::campaign::{Campaign, ConfigResult, Scale};
use wsn_linkconf::prelude::*;

/// The golden fixture's per-config options, reproduced through the
/// network path: seed derivation must match `Campaign::options_with`
/// (base factory at the campaign seed, config `i` derives index `i`).
fn net_options_for(campaign: &Campaign, index: u64) -> NetOptions {
    NetOptions {
        packets: campaign.packets,
        seed: RngFactory::new(campaign.seed).derive(index).seed(),
        channel: campaign.channel,
        traffic: campaign.traffic,
        record_packets: false,
        horizon: None,
    }
}

/// The same 36-config mini-grid `tests/golden_metrics.rs` pins.
fn golden_grid() -> ParamGrid {
    ParamGrid {
        distances_m: vec![10.0, 20.0, 35.0],
        power_levels: vec![3, 11, 31],
        max_tries: vec![1, 3],
        retry_delays_ms: vec![0],
        queue_caps: vec![30],
        packet_intervals_ms: vec![50],
        payloads: vec![50, 110],
    }
}

fn golden_fixture(name: &str) -> Vec<ConfigResult> {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.jsonl"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} ({e})", path.display()))
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("fixture line parses as ConfigResult"))
        .collect()
}

/// Every golden-fixture configuration, replayed as a one-link scenario
/// through the shared-channel network simulator, must reproduce the
/// committed metrics exactly — the N=1 contract against a snapshot that
/// predates the network module entirely.
#[test]
fn single_link_scenarios_reproduce_golden_fixtures() {
    let configs: Vec<StackConfig> = golden_grid().iter().collect();
    assert_eq!(configs.len(), 36);

    let empirical = Campaign {
        threads: 2,
        ..Campaign::new(Scale::Bench)
    };
    let mut dsss_channel = ChannelConfig::paper_hallway();
    dsss_channel.per_backend = PerBackend::Dsss(DsssPer);
    let dsss = Campaign {
        threads: 2,
        ..Campaign::new(Scale::Bench).with_channel(dsss_channel)
    };

    for (name, campaign) in [("empirical", empirical), ("dsss", dsss)] {
        let pinned = golden_fixture(name);
        assert_eq!(pinned.len(), configs.len(), "{name}: fixture length");
        for (i, (config, want)) in configs.iter().zip(&pinned).enumerate() {
            let outcome = NetworkSimulation::new(
                Scenario::single(*config),
                net_options_for(&campaign, i as u64),
            )
            .run();
            assert_eq!(outcome.links.len(), 1);
            assert_eq!(
                outcome.links[0].metrics, want.metrics,
                "{name}: config #{i} ({config:?}) diverged from golden fixture"
            );
        }
    }
}

/// A deterministic hidden-vs-exposed pair: the hidden geometry's loss
/// must strictly exceed the CCA-detectable (exposed) case, because
/// hidden senders never defer and collide inside the capture window.
#[test]
fn hidden_terminal_loss_exceeds_cca_detectable_loss() {
    let config = StackConfig::builder()
        .distance_m(35.0)
        .power_level(11)
        .payload_bytes(110)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants");
    let options = || NetOptions::quick(400).with_seed(0x5EED);

    let hidden = NetworkSimulation::new(Scenario::hidden_pair(config), options()).run();
    let exposed = NetworkSimulation::new(Scenario::exposed_pair(config), options()).run();

    // Hidden senders are below each other's carrier-sense floor: CCA
    // never fires, collisions happen on the air instead.
    assert_eq!(hidden.air.cca_busy_hits, 0, "hidden senders must not defer");
    assert!(
        exposed.air.cca_busy_hits > 0,
        "exposed senders must carrier-sense each other"
    );
    assert!(
        hidden.air.overlapped_frames > exposed.air.overlapped_frames,
        "hidden {} vs exposed {} overlapped frames",
        hidden.air.overlapped_frames,
        exposed.air.overlapped_frames
    );
    assert!(
        hidden.plr_radio() > exposed.plr_radio(),
        "hidden plr {} must strictly exceed exposed plr {}",
        hidden.plr_radio(),
        exposed.plr_radio()
    );
}

/// Satellite 2 regression: a degenerate linear trajectory that starts
/// and ends at the configured distance must be bit-for-bit identical to
/// the stationary default — motion plumbing must not perturb a single
/// draw when the geometry never changes.
#[test]
fn stationary_trajectory_matches_fixed_distance_bit_for_bit() {
    let config = StackConfig::builder()
        .distance_m(25.0)
        .power_level(11)
        .payload_bytes(80)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants");
    let options = || NetOptions::quick(200).with_seed(0xDEAD_BEEF);

    let still = NetworkSimulation::new(Scenario::single(config), options()).run();

    let mut scenario = Scenario::single(config);
    scenario.links[0].trajectory = Trajectory::Linear {
        start_m: 25.0,
        end_m: 25.0,
        duration_s: 10.0,
    };
    let degenerate = NetworkSimulation::new(scenario, options()).run();

    assert_eq!(still.links[0].metrics, degenerate.links[0].metrics);
    assert_eq!(still.end_time, degenerate.end_time);

    // And a trajectory that actually moves must diverge — the motion
    // plumbing is live, not vacuously equal.
    let mut moving = Scenario::single(config);
    moving.links[0].trajectory = Trajectory::Linear {
        start_m: 5.0,
        end_m: 45.0,
        duration_s: 10.0,
    };
    let walked = NetworkSimulation::new(moving, options()).run();
    assert_ne!(still.links[0].metrics, walked.links[0].metrics);
}

/// Churn: a link that leaves mid-run generates strictly fewer packets
/// than one that stays, and a link that joins late starts later.
#[test]
fn churn_bounds_generation_windows() {
    let config = StackConfig::builder()
        .distance_m(15.0)
        .power_level(31)
        .payload_bytes(50)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants");
    let options = || {
        NetOptions {
            horizon: Some(SimDuration::from_secs(30)),
            ..NetOptions::quick(100_000)
        }
        .with_seed(7)
    };

    let full = NetworkSimulation::new(Scenario::single(config), options()).run();

    let mut leaving = Scenario::single(config);
    leaving.links[0] = leaving.links[0].leaving_at(10.0);
    let left = NetworkSimulation::new(leaving, options()).run();

    assert!(
        left.links[0].metrics.generated < full.links[0].metrics.generated,
        "leaving at 10 s of 30 s must cut generation ({} vs {})",
        left.links[0].metrics.generated,
        full.links[0].metrics.generated
    );

    let mut joining = Scenario::single(config);
    joining.links[0] = joining.links[0].joining_at(15.0);
    let joined = NetworkSimulation::new(joining, options()).run();
    assert!(
        joined.links[0].metrics.generated < full.links[0].metrics.generated,
        "joining at 15 s of 30 s must cut generation ({} vs {})",
        joined.links[0].metrics.generated,
        full.links[0].metrics.generated
    );
}

fn arb_stack_config() -> impl Strategy<Value = StackConfig> {
    (
        (1u8..=31),
        (1u8..=8),
        prop::sample::select(vec![0u32, 30, 100]),
        (1u16..=30),
        prop::sample::select(vec![10u32, 30, 100, 500]),
        (1u16..=114),
        (5u32..=40),
    )
        .prop_map(|(power, tries, dretry, qmax, tpkt, payload, dist)| {
            StackConfig::builder()
                .distance_m(dist as f64)
                .power_level(power)
                .max_tries(tries)
                .retry_delay_ms(dretry)
                .queue_cap(qmax)
                .packet_interval_ms(tpkt)
                .payload_bytes(payload)
                .build()
                .expect("all components validated")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite 3: any one-link scenario produces `LinkMetrics`
    /// identical to the direct link-sim path — every field, every bit.
    #[test]
    fn any_single_link_scenario_matches_direct_simulation(
        config in arb_stack_config(),
        seed in any::<u64>(),
    ) {
        let direct = LinkSimulation::new(config, SimOptions {
            packets: 40,
            seed,
            channel: ChannelConfig::paper_hallway(),
            traffic: TrafficModel::Periodic,
            record_packets: false,
            horizon: None,
            trajectory: Trajectory::Stationary,
        })
        .run();

        let net = NetworkSimulation::new(
            Scenario::single(config),
            NetOptions::quick(40).with_seed(seed),
        )
        .run();

        prop_assert_eq!(net.links.len(), 1);
        prop_assert_eq!(&net.links[0].metrics, direct.metrics());
    }
}
