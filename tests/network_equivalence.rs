//! The N=1 equivalence contract of the shared-channel network simulator,
//! plus the emergent multi-link behaviors it must exhibit.
//!
//! The contract (DESIGN.md §10): a one-link churn-free [`Scenario`] run
//! through [`NetworkSimulation`] is *bit-for-bit identical* to the same
//! configuration run through the direct [`LinkSimulation`] path — same
//! RNG streams, same event order, same floats. The golden fixture test
//! pins that contract to the committed `tests/golden/*.jsonl` snapshots;
//! the proptest extends it to arbitrary valid configurations.

use proptest::prelude::*;

use wsn_linkconf::experiments::campaign::{Campaign, ConfigResult, Scale};
use wsn_linkconf::prelude::*;

/// The golden fixture's per-config options, reproduced through the
/// network path: seed derivation must match `Campaign::options_with`
/// (base factory at the campaign seed, config `i` derives index `i`).
fn net_options_for(campaign: &Campaign, index: u64) -> NetOptions {
    NetOptions {
        packets: campaign.packets,
        seed: RngFactory::new(campaign.seed).derive(index).seed(),
        channel: campaign.channel,
        traffic: campaign.traffic,
        ..NetOptions::quick(campaign.packets)
    }
}

/// The same 36-config mini-grid `tests/golden_metrics.rs` pins.
fn golden_grid() -> ParamGrid {
    ParamGrid {
        distances_m: vec![10.0, 20.0, 35.0],
        power_levels: vec![3, 11, 31],
        max_tries: vec![1, 3],
        retry_delays_ms: vec![0],
        queue_caps: vec![30],
        packet_intervals_ms: vec![50],
        payloads: vec![50, 110],
    }
}

fn golden_fixture(name: &str) -> Vec<ConfigResult> {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.jsonl"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} ({e})", path.display()))
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("fixture line parses as ConfigResult"))
        .collect()
}

/// Every golden-fixture configuration, replayed as a one-link scenario
/// through the shared-channel network simulator, must reproduce the
/// committed metrics exactly — the N=1 contract against a snapshot that
/// predates the network module entirely.
#[test]
fn single_link_scenarios_reproduce_golden_fixtures() {
    let configs: Vec<StackConfig> = golden_grid().iter().collect();
    assert_eq!(configs.len(), 36);

    let empirical = Campaign {
        threads: 2,
        ..Campaign::new(Scale::Bench)
    };
    let mut dsss_channel = ChannelConfig::paper_hallway();
    dsss_channel.per_backend = PerBackend::Dsss(DsssPer);
    let dsss = Campaign {
        threads: 2,
        ..Campaign::new(Scale::Bench).with_channel(dsss_channel)
    };

    for (name, campaign) in [("empirical", empirical), ("dsss", dsss)] {
        let pinned = golden_fixture(name);
        assert_eq!(pinned.len(), configs.len(), "{name}: fixture length");
        for (i, (config, want)) in configs.iter().zip(&pinned).enumerate() {
            let outcome = NetworkSimulation::new(
                Scenario::single(*config),
                net_options_for(&campaign, i as u64),
            )
            .run();
            assert_eq!(outcome.links.len(), 1);
            assert_eq!(
                outcome.links[0].metrics, want.metrics,
                "{name}: config #{i} ({config:?}) diverged from golden fixture"
            );
        }
    }
}

/// A deterministic hidden-vs-exposed pair: the hidden geometry's loss
/// must strictly exceed the CCA-detectable (exposed) case, because
/// hidden senders never defer and collide inside the capture window.
#[test]
fn hidden_terminal_loss_exceeds_cca_detectable_loss() {
    let config = StackConfig::builder()
        .distance_m(35.0)
        .power_level(11)
        .payload_bytes(110)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants");
    let options = || NetOptions::quick(400).with_seed(0x5EED);

    let hidden = NetworkSimulation::new(Scenario::hidden_pair(config), options()).run();
    let exposed = NetworkSimulation::new(Scenario::exposed_pair(config), options()).run();

    // Hidden senders are below each other's carrier-sense floor: CCA
    // never fires, collisions happen on the air instead.
    assert_eq!(hidden.air.cca_busy_hits, 0, "hidden senders must not defer");
    assert!(
        exposed.air.cca_busy_hits > 0,
        "exposed senders must carrier-sense each other"
    );
    assert!(
        hidden.air.overlapped_frames > exposed.air.overlapped_frames,
        "hidden {} vs exposed {} overlapped frames",
        hidden.air.overlapped_frames,
        exposed.air.overlapped_frames
    );
    assert!(
        hidden.plr_radio() > exposed.plr_radio(),
        "hidden plr {} must strictly exceed exposed plr {}",
        hidden.plr_radio(),
        exposed.plr_radio()
    );
}

/// Satellite 2 regression: a degenerate linear trajectory that starts
/// and ends at the configured distance must be bit-for-bit identical to
/// the stationary default — motion plumbing must not perturb a single
/// draw when the geometry never changes.
#[test]
fn stationary_trajectory_matches_fixed_distance_bit_for_bit() {
    let config = StackConfig::builder()
        .distance_m(25.0)
        .power_level(11)
        .payload_bytes(80)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants");
    let options = || NetOptions::quick(200).with_seed(0xDEAD_BEEF);

    let still = NetworkSimulation::new(Scenario::single(config), options()).run();

    let mut scenario = Scenario::single(config);
    scenario.links[0].trajectory = Trajectory::Linear {
        start_m: 25.0,
        end_m: 25.0,
        duration_s: 10.0,
    };
    let degenerate = NetworkSimulation::new(scenario, options()).run();

    assert_eq!(still.links[0].metrics, degenerate.links[0].metrics);
    assert_eq!(still.end_time, degenerate.end_time);

    // And a trajectory that actually moves must diverge — the motion
    // plumbing is live, not vacuously equal.
    let mut moving = Scenario::single(config);
    moving.links[0].trajectory = Trajectory::Linear {
        start_m: 5.0,
        end_m: 45.0,
        duration_s: 10.0,
    };
    let walked = NetworkSimulation::new(moving, options()).run();
    assert_ne!(still.links[0].metrics, walked.links[0].metrics);
}

/// Churn: a link that leaves mid-run generates strictly fewer packets
/// than one that stays, and a link that joins late starts later.
#[test]
fn churn_bounds_generation_windows() {
    let config = StackConfig::builder()
        .distance_m(15.0)
        .power_level(31)
        .payload_bytes(50)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid constants");
    let options = || {
        NetOptions {
            horizon: Some(SimDuration::from_secs(30)),
            ..NetOptions::quick(100_000)
        }
        .with_seed(7)
    };

    let full = NetworkSimulation::new(Scenario::single(config), options()).run();

    let mut leaving = Scenario::single(config);
    leaving.links[0] = leaving.links[0].leaving_at(10.0);
    let left = NetworkSimulation::new(leaving, options()).run();

    assert!(
        left.links[0].metrics.generated < full.links[0].metrics.generated,
        "leaving at 10 s of 30 s must cut generation ({} vs {})",
        left.links[0].metrics.generated,
        full.links[0].metrics.generated
    );

    let mut joining = Scenario::single(config);
    joining.links[0] = joining.links[0].joining_at(15.0);
    let joined = NetworkSimulation::new(joining, options()).run();
    assert!(
        joined.links[0].metrics.generated < full.links[0].metrics.generated,
        "joining at 15 s of 30 s must cut generation ({} vs {})",
        joined.links[0].metrics.generated,
        full.links[0].metrics.generated
    );
}

// ---------------------------------------------------------------------------
// Static-catalog golden pins.
//
// These fixtures were generated on the dense N×N `SharedAir` (pre-timeline)
// and must keep replaying byte-identically through the sparse,
// timeline-driven medium: same metrics on every link, same air counters.
// Regenerate (only for an intentional contract change) with
// `WSN_UPDATE_GOLDEN=1 cargo test --test network_equivalence golden_pin`.
// ---------------------------------------------------------------------------

use serde::{Deserialize, Serialize};

/// One pinned catalog run: every link's full metric set plus the shared-air
/// counters, compared field-for-field (all floats bit-exact via PartialEq).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ScenarioPin {
    scenario: String,
    links: Vec<LinkMetrics>,
    air: AirStats,
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_or_update_pin(name: &str, pins: &[ScenarioPin]) {
    let path = golden_path(name);
    let rendered: String = pins
        .iter()
        .map(|p| serde_json::to_string(p).expect("pin serializes") + "\n")
        .collect();
    if std::env::var_os("WSN_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).expect("write golden pin");
        return;
    }
    let want: Vec<ScenarioPin> = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} ({e})", path.display()))
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("pin line parses"))
        .collect();
    assert_eq!(want.len(), pins.len(), "{name}: pin count");
    for (got, want) in pins.iter().zip(&want) {
        assert_eq!(
            got, want,
            "{name}: scenario '{}' diverged from golden pin",
            want.scenario
        );
    }
}

/// Every static catalog scenario (N = 1 through N = 4, hidden/exposed/
/// interference geometries) pinned against the dense-medium snapshot.
#[test]
fn catalog_scenarios_replay_golden_pin() {
    let pins: Vec<ScenarioPin> = wsn_linkconf::net::all_scenarios()
        .iter()
        .map(|(id, _)| {
            let scenario = wsn_linkconf::net::build_scenario(id).expect("catalog id builds");
            let outcome =
                NetworkSimulation::new(scenario, NetOptions::quick(120).with_seed(0x5EED)).run();
            ScenarioPin {
                scenario: id.to_string(),
                links: outcome.links.iter().map(|l| l.metrics.clone()).collect(),
                air: outcome.air,
            }
        })
        .collect();
    check_or_update_pin("scenarios.jsonl", &pins);
}

/// Satellite regression: a `Leave` landing mid-transaction drains the link
/// cleanly. The leave instant is derived from a baseline run so it provably
/// falls inside one of link 1's MAC transactions; the test then asserts the
/// in-flight transaction completes after the leave, the packet accounting
/// identity holds on both links, and the whole outcome matches the pinned
/// fixture (so no deferral leak can creep into link 0's CCA counters).
#[test]
fn leave_mid_transaction_drains_cleanly_golden_pin() {
    let config = StackConfig::builder()
        .distance_m(35.0)
        .power_level(11)
        .payload_bytes(110)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(10)
        .build()
        .expect("valid constants");
    let options = || {
        let mut o = NetOptions::quick(200).with_seed(0xD12A);
        o.record_packets = true;
        o
    };

    // Baseline: find a mid-run transaction of link 1 and aim the leave at
    // its midpoint. Both runs are deterministic, so the derived instant is
    // stable across machines.
    let baseline = NetworkSimulation::new(Scenario::exposed_pair(config), options()).run();
    let records = baseline.links[1].records.as_ref().expect("records kept");
    let span = records
        .iter()
        .filter(|r| r.fate != PacketFate::QueueDropped)
        .nth(20)
        .expect("baseline serves >20 packets");
    let (start, done) = (
        span.t_service_start.expect("served packet has start"),
        span.t_done.expect("served packet has end"),
    );
    let leave_s = (start.as_secs_f64() + done.as_secs_f64()) / 2.0;

    let mut scenario = Scenario::exposed_pair(config);
    scenario.links[1] = scenario.links[1].leaving_at(leave_s);
    let outcome = NetworkSimulation::new(scenario, options()).run();

    // The transaction in flight at the leave instant still completes …
    let last_done = outcome.links[1]
        .records
        .as_ref()
        .expect("records kept")
        .iter()
        .filter_map(|r| r.t_done)
        .map(|t| t.as_secs_f64())
        .fold(0.0f64, f64::max);
    assert!(
        last_done > leave_s,
        "in-flight transaction must drain past the leave ({last_done} vs {leave_s})"
    );
    // … no packets vanish from the accounting identity on either link …
    for link in &outcome.links {
        assert!(
            link.metrics.conserves_packets(),
            "accounting identity violated: {:?}",
            link.metrics
        );
    }
    // … and the departed link generated strictly less than its budget.
    assert!(outcome.links[1].metrics.generated < 200);
    assert_eq!(outcome.links[0].metrics.generated, 200);

    check_or_update_pin(
        "leave_drain.jsonl",
        &[ScenarioPin {
            scenario: format!("exposed-pair/leave@{leave_s:.6}"),
            links: outcome.links.iter().map(|l| l.metrics.clone()).collect(),
            air: outcome.air,
        }],
    );
}

fn arb_stack_config() -> impl Strategy<Value = StackConfig> {
    (
        (1u8..=31),
        (1u8..=8),
        prop::sample::select(vec![0u32, 30, 100]),
        (1u16..=30),
        prop::sample::select(vec![10u32, 30, 100, 500]),
        (1u16..=114),
        (5u32..=40),
    )
        .prop_map(|(power, tries, dretry, qmax, tpkt, payload, dist)| {
            StackConfig::builder()
                .distance_m(dist as f64)
                .power_level(power)
                .max_tries(tries)
                .retry_delay_ms(dretry)
                .queue_cap(qmax)
                .packet_interval_ms(tpkt)
                .payload_bytes(payload)
                .build()
                .expect("all components validated")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite 3: any one-link scenario produces `LinkMetrics`
    /// identical to the direct link-sim path — every field, every bit.
    #[test]
    fn any_single_link_scenario_matches_direct_simulation(
        config in arb_stack_config(),
        seed in any::<u64>(),
    ) {
        let direct = LinkSimulation::new(config, SimOptions {
            packets: 40,
            seed,
            channel: ChannelConfig::paper_hallway(),
            traffic: TrafficModel::Periodic,
            record_packets: false,
            horizon: None,
            trajectory: Trajectory::Stationary,
        })
        .run();

        let net = NetworkSimulation::new(
            Scenario::single(config),
            NetOptions::quick(40).with_seed(seed),
        )
        .run();

        prop_assert_eq!(net.links.len(), 1);
        prop_assert_eq!(&net.links[0].metrics, direct.metrics());
    }
}
