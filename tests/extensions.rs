//! Integration tests for the extensions beyond the paper's published
//! artifacts: interference, duty-cycling, MOP solver cross-checks, and
//! dataset round-trips.

use wsn_linkconf::experiments::campaign::Scale;
use wsn_linkconf::experiments::dataset;
use wsn_linkconf::prelude::*;
use wsn_params::grid::ParamGrid;

fn base_config() -> StackConfig {
    StackConfig::builder()
        .distance_m(20.0)
        .power_level(23)
        .payload_bytes(110)
        .max_tries(3)
        .retry_delay_ms(0)
        .queue_cap(30)
        .packet_interval_ms(50)
        .build()
        .expect("valid")
}

#[test]
fn hidden_interferer_degrades_end_to_end_delivery() {
    let clean = LinkSimulation::new(base_config(), SimOptions::quick(600)).run();
    let mut channel = ChannelConfig::paper_hallway();
    let mut interferer = InterferenceModel::zigbee_neighbor(0.4);
    interferer.cca_detectable = false;
    channel.interference = interferer;
    let jammed =
        LinkSimulation::new(base_config(), SimOptions::quick(600).with_channel(channel)).run();
    assert!(jammed.metrics().per > clean.metrics().per + 0.1);
    assert!(jammed.metrics().mean_tries > clean.metrics().mean_tries);
    assert!(jammed.metrics().conserves_packets());
}

#[test]
fn detectable_interferer_defers_instead_of_colliding() {
    let mut hidden_ch = ChannelConfig::paper_hallway();
    let mut hidden = InterferenceModel::zigbee_neighbor(0.4);
    hidden.cca_detectable = false;
    hidden_ch.interference = hidden;

    let mut polite_ch = ChannelConfig::paper_hallway();
    polite_ch.interference = InterferenceModel::zigbee_neighbor(0.4);

    let m_hidden = LinkSimulation::new(
        base_config(),
        SimOptions::quick(600).with_channel(hidden_ch),
    )
    .run();
    let m_polite = LinkSimulation::new(
        base_config(),
        SimOptions::quick(600).with_channel(polite_ch),
    )
    .run();
    // Deferral converts collisions into waiting time.
    assert!(m_polite.metrics().per < m_hidden.metrics().per);
    assert!(m_polite.metrics().service_mean_ms > base_service_ms() * 1.02);
}

fn base_service_ms() -> f64 {
    LinkSimulation::new(base_config(), SimOptions::quick(600))
        .run()
        .metrics()
        .service_mean_ms
}

#[test]
fn lpl_model_interoperates_with_stack_parameters() {
    let model = LplModel::new(PowerLevel::MAX, PayloadSize::new(114).expect("valid"));
    let check = SimDuration::from_millis(11);
    // The optimal interval must be consistent between closed form and
    // numeric search for a realistic rate derived from Tpkt.
    let cfg = base_config();
    let rate = cfg.packet_interval.rate_pps();
    let analytic = model.optimal_wake_interval(check, rate, SimDuration::from_secs(4));
    let numeric = model.optimal_wake_interval_numeric(check, rate, SimDuration::from_secs(4));
    let err = (analytic.as_millis_f64() - numeric.as_millis_f64()).abs() / numeric.as_millis_f64();
    assert!(err < 0.05, "analytic {analytic} vs numeric {numeric}");
}

#[test]
fn weighted_sum_and_epsilon_constraint_agree_on_extremes() {
    let optimizer = Optimizer::paper();
    let grid = ParamGrid {
        distances_m: vec![35.0],
        queue_caps: vec![30],
        packet_intervals_ms: vec![30],
        ..ParamGrid::paper()
    };
    // A goodput-dominant weighted sum must find (near) the unconstrained
    // goodput optimum found by epsilon-constraint with no constraints.
    let ws = optimizer
        .weighted_sum(&grid, &[(Metric::Goodput, 1000.0), (Metric::Energy, 1.0)])
        .expect("non-empty");
    let ec = optimizer
        .epsilon_constraint(&grid, Metric::Goodput, &[])
        .expect("non-empty");
    let ratio = ws.predicted.max_goodput_bps / ec.predicted.max_goodput_bps;
    assert!(ratio > 0.98, "ratio={ratio}");
}

#[test]
fn knee_point_balances_the_case_study_front() {
    let mut predictor = Predictor::paper();
    predictor.budget = LinkBudget::case_study();
    let optimizer = Optimizer { predictor };
    let grid = ParamGrid {
        distances_m: vec![35.0],
        queue_caps: vec![30],
        packet_intervals_ms: vec![30],
        ..ParamGrid::paper()
    };
    if let Some(knee) = optimizer.knee_point(&grid, [Metric::Energy, Metric::Goodput]) {
        // The knee is a compromise: neither the fastest nor the thriftiest.
        let front = optimizer.pareto_front(&grid, &[Metric::Energy, Metric::Goodput]);
        let best_goodput = front
            .iter()
            .map(|e| e.predicted.max_goodput_bps)
            .fold(f64::NEG_INFINITY, f64::max);
        let best_energy = front
            .iter()
            .map(|e| e.predicted.u_eng_uj_per_bit)
            .fold(f64::INFINITY, f64::min);
        assert!(knee.predicted.max_goodput_bps < best_goodput);
        assert!(knee.predicted.u_eng_uj_per_bit > best_energy);
    }
}

#[test]
fn dataset_round_trips_through_disk() {
    let dir = std::env::temp_dir().join("wsn_linkconf_ext_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("roundtrip.csv");
    let n = dataset::export_to_file(base_config(), SimOptions::quick(200), &path)
        .expect("export succeeds");
    assert_eq!(n, 200);
    let file = std::io::BufReader::new(std::fs::File::open(&path).expect("open"));
    let trace = dataset::read_trace(file).expect("parse");
    assert_eq!(trace.records.len(), 200);
    assert!(trace.delivery_ratio() > 0.8);
    assert!(trace.mean_tries() >= 1.0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn extension_experiments_run_at_bench_scale() {
    use wsn_linkconf::experiments::run_experiment;
    for id in ["ext01", "ext02", "ablation01", "ablation02", "ablation03"] {
        let report = run_experiment(id, Scale::Bench).unwrap_or_else(|e| panic!("{id}: {e}"));
        assert!(!report.sections.is_empty());
    }
}
