//! Calibration tests: re-derive the paper's headline numbers from the
//! synthetic campaign and assert they land where the paper says.

use wsn_linkconf::experiments::campaign::Scale;
use wsn_linkconf::experiments::{fig06, table04};
use wsn_linkconf::prelude::*;

#[test]
fn per_model_refit_recovers_published_constants() {
    let (alpha, beta) = fig06::refit_constants(Scale::Quick);
    // Paper Eq. 3: alpha = 0.0128, beta = -0.15.
    assert!((alpha - 0.0128).abs() < 0.012, "alpha={alpha}");
    assert!((beta - -0.15).abs() < 0.08, "beta={beta}");
}

#[test]
fn table_ii_utilizations_reproduce() {
    // Paper Table II: (SNR, rho) = (10, 1.236), (20, 0.713), (30, 0.617).
    let model = ServiceTimeModel::paper();
    let cfg = StackConfig::builder()
        .payload_bytes(110)
        .max_tries(3)
        .retry_delay_ms(30)
        .packet_interval_ms(30)
        .build()
        .expect("valid");
    for (snr, paper_rho) in [(10.0, 1.236), (20.0, 0.713), (30.0, 0.617)] {
        let rho = model.utilization(snr, &cfg);
        assert!(
            (rho - paper_rho).abs() < 0.08,
            "snr={snr}: rho={rho} vs paper {paper_rho}"
        );
    }
}

#[test]
fn grey_zone_thresholds_match_paper_quotes() {
    // "PER decreases to 0.1 until around 19 dB for maximum lD" (Fig. 6).
    let per = ExpSurface::new(0.0128, -0.15);
    let snr = per
        .snr_for_value(PayloadSize::MAX, 0.1)
        .expect("invertible");
    assert!((snr - 19.0).abs() < 1.5, "snr={snr}");

    // "the energy-optimal payload ... SNR threshold is 17 dB" (Sec. VIII-A).
    let energy = EnergyModel::paper();
    assert_eq!(energy.optimal_payload(17.0, PowerLevel::MAX).bytes(), 114);
    assert!(energy.optimal_payload(15.0, PowerLevel::MAX).bytes() < 114);

    // "9 dB for maximal goodput" (Sec. VIII-A): with retransmissions the
    // max payload is goodput-optimal from single digits of SNR on.
    let goodput = GoodputModel::paper();
    let best_at_9 = goodput
        .optimal_payload(9.0, MaxTries::new(8).expect("valid"), RetryDelay::ZERO)
        .bytes();
    assert!(best_at_9 >= 100, "optimal at 9 dB = {best_at_9}");
}

#[test]
fn case_study_dominance_reproduces_table_iv() {
    let rows = table04::case_study_rows(Scale::Quick);
    let joint = rows.last().expect("joint row");
    assert!(joint.label.contains("Joint"));
    // Paper: joint = Ptx 31, lD 68, N 3 -> 22.28 kbps, 0.24 uJ/bit.
    // Shape requirements: max power, interior payload, retransmissions on,
    // goodput in the tens of kbps, energy well under every baseline.
    assert_eq!(joint.config.power.level(), 31);
    assert!(joint.config.max_tries.get() > 1);
    let payload = joint.config.payload.bytes();
    assert!((35..=110).contains(&payload), "payload={payload}");
    assert!(
        joint.sim_goodput_kbps > 15.0 && joint.sim_goodput_kbps < 40.0,
        "goodput={}",
        joint.sim_goodput_kbps
    );
    for r in &rows[..rows.len() - 1] {
        assert!(
            joint.sim_goodput_kbps >= r.sim_goodput_kbps * 0.95,
            "joint loses goodput to {}",
            r.label
        );
        assert!(
            joint.sim_u_eng <= r.sim_u_eng * 1.05,
            "joint loses energy to {}",
            r.label
        );
    }
}

#[test]
fn best_tradeoff_snr_is_about_19db() {
    // Secs. V/VII: ~19 dB is where extra power stops buying QoS. Verify
    // with the goodput model: the marginal gain per extra dB collapses
    // after 19 dB.
    let model = GoodputModel::paper();
    let g = |snr: f64| {
        model.max_goodput_bps(
            snr,
            PayloadSize::MAX,
            MaxTries::new(3).expect("valid"),
            RetryDelay::ZERO,
        )
    };
    let gain_into_19 = g(19.0) - g(12.0);
    let gain_past_19 = g(26.0) - g(19.0);
    assert!(gain_past_19 < gain_into_19 / 2.0);
}
