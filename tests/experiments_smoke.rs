//! Smoke tests: every reproduced table/figure regenerates end-to-end at
//! bench scale, renders, and serializes.

use wsn_linkconf::experiments::campaign::Scale;
use wsn_linkconf::experiments::{all_experiments, run_experiment};

#[test]
fn every_experiment_regenerates_at_bench_scale() {
    for (id, _) in all_experiments() {
        let report = run_experiment(id, Scale::Bench).unwrap_or_else(|e| {
            panic!("{id} failed: {e}");
        });
        assert_eq!(report.id, id);
        assert!(!report.sections.is_empty(), "{id} has no sections");
        for section in &report.sections {
            assert!(
                !section.table.rows.is_empty(),
                "{id}/{} rendered an empty table",
                section.heading
            );
        }
        // Text rendering and machine formats must both work.
        let text = report.render();
        assert!(text.contains(id));
        let json = serde_json::to_string(&report).expect("reports are JSON-serializable");
        assert!(json.contains(&report.title.split(':').next().unwrap()[..4]));
        for section in &report.sections {
            let csv = section.table.to_csv();
            assert_eq!(csv.lines().count(), section.table.rows.len() + 1);
        }
    }
}

#[test]
fn experiment_ids_are_unique() {
    let mut ids: Vec<&str> = all_experiments().iter().map(|(n, _)| *n).collect();
    let before = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), before);
}
