//! Property-based tests (proptest) on the core invariants of the models,
//! the optimizer, and the simulator.

use proptest::prelude::*;

use wsn_linkconf::models::fit::{fit_exp_surface, SurfacePoint};
use wsn_linkconf::models::loss::mm1k_blocking;
use wsn_linkconf::prelude::*;

fn arb_payload() -> impl Strategy<Value = PayloadSize> {
    (1u16..=114).prop_map(|b| PayloadSize::new(b).expect("in range"))
}

fn arb_power() -> impl Strategy<Value = PowerLevel> {
    (1u8..=31).prop_map(|l| PowerLevel::new(l).expect("in range"))
}

fn arb_config() -> impl Strategy<Value = StackConfig> {
    (
        (1u8..=31),
        (1u8..=8),
        prop::sample::select(vec![0u32, 30, 100]),
        (1u16..=30),
        prop::sample::select(vec![10u32, 30, 100, 500]),
        (1u16..=114),
        (5u32..=40), // distance in meters
    )
        .prop_map(|(power, tries, dretry, qmax, tpkt, payload, dist)| {
            StackConfig::builder()
                .distance_m(dist as f64)
                .power_level(power)
                .max_tries(tries)
                .retry_delay_ms(dretry)
                .queue_cap(qmax)
                .packet_interval_ms(tpkt)
                .payload_bytes(payload)
                .build()
                .expect("all components validated")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn per_surface_monotonicities(snr in -10.0f64..40.0, a in 1u16..=113) {
        let surface = ExpSurface::new(0.0128, -0.15);
        let small = PayloadSize::new(a).expect("valid");
        let large = PayloadSize::new(a + 1).expect("valid");
        prop_assert!(surface.eval_prob(small, snr) <= surface.eval_prob(large, snr));
        prop_assert!(surface.eval_prob(small, snr) >= surface.eval_prob(small, snr + 1.0));
        let v = surface.eval_prob(large, snr);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn service_time_model_bounds(
        snr in 0.0f64..40.0,
        payload in arb_payload(),
        tries in 1u8..=8,
        dretry in prop::sample::select(vec![0u32, 30, 100]),
    ) {
        let model = ServiceTimeModel::paper();
        let max_tries = MaxTries::new(tries).expect("valid");
        let delay = RetryDelay::from_millis(dretry);
        let expected = model.expected_service_time_s(snr, payload, max_tries, delay);
        // Never faster than a clean single attempt, never slower than the
        // worst case of NmaxTries failed attempts.
        let floor = model.t_spi_s(payload) + model.t_succ_s(payload);
        let ceil = model.t_spi_s(payload)
            + model.t_fail_s(payload)
            + (tries.max(1) as f64) * model.t_retry_s(payload, delay)
            + 1e-9;
        prop_assert!(expected >= floor - 2e-3 - 1e-9, "{expected} < {floor}");
        prop_assert!(expected <= ceil, "{expected} > {ceil}");
        // Monotone in the budget for the plug-in variant.
        if tries < 8 {
            let more = MaxTries::new(tries + 1).expect("valid");
            prop_assert!(
                model.expected_service_time_s(snr, payload, more, delay) >= expected - 1e-12
            );
        }
    }

    #[test]
    fn radio_loss_monotone_in_budget(
        snr in 0.0f64..40.0,
        payload in arb_payload(),
        tries in 1u8..=7,
    ) {
        let model = RadioLossModel::paper();
        let a = model.rate(snr, payload, MaxTries::new(tries).expect("valid"));
        let b = model.rate(snr, payload, MaxTries::new(tries + 1).expect("valid"));
        prop_assert!(b <= a + 1e-15);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn mm1k_blocking_is_a_probability(rho in 0.0f64..5.0, k in 1usize..=64) {
        let p = mm1k_blocking(rho, k);
        prop_assert!((0.0..=1.0).contains(&p), "p={p}");
        // More buffer never hurts.
        let p_bigger = mm1k_blocking(rho, k + 1);
        prop_assert!(p_bigger <= p + 1e-12);
    }

    #[test]
    fn energy_model_positive_and_power_monotone_at_high_snr(
        payload in arb_payload(),
        power in arb_power(),
    ) {
        let model = EnergyModel::paper();
        // At a clean 30 dB the PER term is negligible, so energy per bit
        // must be monotone in the PA level.
        let u = model.u_eng_j_per_bit(30.0, payload, power);
        prop_assert!(u > 0.0);
        if power.level() < 31 {
            let higher = PowerLevel::new(power.level() + 1).expect("valid");
            prop_assert!(model.u_eng_j_per_bit(30.0, payload, higher) >= u - 1e-18);
        }
    }

    #[test]
    fn fitter_recovers_planted_surface(
        alpha in 0.002f64..0.05,
        beta in -0.4f64..-0.05,
    ) {
        let mut points = Vec::new();
        for ld in [5.0, 20.0, 50.0, 80.0, 110.0] {
            for snr in [5.0, 9.0, 13.0, 17.0, 21.0] {
                points.push(SurfacePoint {
                    payload_bytes: ld,
                    snr_db: snr,
                    value: alpha * ld * (beta * snr).exp(),
                });
            }
        }
        let fit = fit_exp_surface(&points).expect("enough points");
        prop_assert!((fit.surface.alpha - alpha).abs() / alpha < 0.02,
            "alpha {} vs {}", fit.surface.alpha, alpha);
        prop_assert!((fit.surface.beta - beta).abs() < 0.01,
            "beta {} vs {}", fit.surface.beta, beta);
    }

    #[test]
    fn predictions_are_finite_and_consistent(config in arb_config()) {
        let predictor = Predictor::paper();
        let p = predictor.evaluate(&config);
        prop_assert!(p.service_time_ms > 0.0);
        prop_assert!(p.rho > 0.0);
        prop_assert!((0.0..=1.0).contains(&p.plr_radio));
        prop_assert!((0.0..=1.0).contains(&p.plr_queue));
        prop_assert!((0.0..=1.0).contains(&p.plr_total()));
        prop_assert!(p.max_goodput_bps >= 0.0 && p.max_goodput_bps < 250_000.0);
        prop_assert!(p.delay_ms >= p.service_time_ms - 1e-9);
    }
}

proptest! {
    // Simulation-backed properties are more expensive: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulation_conserves_packets_for_any_config(config in arb_config(), seed in 0u64..1000) {
        let outcome = LinkSimulation::new(
            config,
            SimOptions::quick(80).with_seed(seed),
        )
        .run();
        let m = outcome.metrics();
        prop_assert!(m.conserves_packets());
        prop_assert_eq!(m.generated, 80);
        prop_assert!((0.0..=1.0).contains(&m.per));
        prop_assert!(m.plr_total() <= 1.0 + 1e-12);
        prop_assert!(m.attempts >= m.delivered);
    }

    #[test]
    fn simulation_is_deterministic(config in arb_config(), seed in 0u64..1000) {
        let a = LinkSimulation::new(config, SimOptions::quick(50).with_seed(seed)).run();
        let b = LinkSimulation::new(config, SimOptions::quick(50).with_seed(seed)).run();
        prop_assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn queue_drops_only_when_buffer_smaller_than_backlog(
        seed in 0u64..1000,
    ) {
        // A fast clean link with a deep queue never drops.
        let config = StackConfig::builder()
            .distance_m(10.0)
            .power_level(31)
            .payload_bytes(20)
            .max_tries(1)
            .retry_delay_ms(0)
            .queue_cap(30)
            .packet_interval_ms(100)
            .build()
            .expect("valid");
        let m = LinkSimulation::new(config, SimOptions::quick(60).with_seed(seed)).run();
        prop_assert_eq!(m.metrics().queue_dropped, 0);
    }
}

fn arb_grid() -> impl Strategy<Value = wsn_params::grid::ParamGrid> {
    (
        prop::collection::vec(1u8..=31, 1..4),
        prop::collection::vec(1u8..=8, 1..3),
        prop::collection::vec(1u16..=114, 1..4),
        prop::collection::vec(10u32..=500, 1..3),
    )
        .prop_map(|(mut powers, mut tries, mut payloads, mut intervals)| {
            // Deduplicate so grid axes are sets (duplicate values would
            // create identical configurations, which is allowed but makes
            // front-coverage assertions noisier).
            powers.sort_unstable();
            powers.dedup();
            tries.sort_unstable();
            tries.dedup();
            payloads.sort_unstable();
            payloads.dedup();
            intervals.sort_unstable();
            intervals.dedup();
            wsn_params::grid::ParamGrid {
                distances_m: vec![35.0],
                power_levels: powers,
                max_tries: tries,
                retry_delays_ms: vec![0],
                queue_caps: vec![30],
                packet_intervals_ms: intervals,
                payloads,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pareto_front_is_correct_on_random_grids(grid in arb_grid()) {
        let optimizer = Optimizer::paper();
        let metrics = [Metric::Energy, Metric::Goodput];
        let front = optimizer.pareto_front(&grid, &metrics);
        let evals = optimizer.evaluate_grid(&grid);

        let value = |e: &Evaluation| {
            (
                Metric::Energy.value(&e.predicted),
                Metric::Goodput.value(&e.predicted),
            )
        };
        // 1. No front member dominates another.
        for a in &front {
            for b in &front {
                let (ax, ay) = value(a);
                let (bx, by) = value(b);
                let dominates = ax <= bx && ay <= by && (ax < bx || ay < by);
                prop_assert!(!dominates, "front member dominated another");
            }
        }
        // 2. Every finite grid point is dominated by or equal to a front member.
        for e in &evals {
            let (ex, ey) = value(e);
            if !(ex.is_finite() && ey.is_finite()) {
                continue;
            }
            let covered = front.iter().any(|f| {
                let (fx, fy) = value(f);
                fx <= ex && fy <= ey
            });
            prop_assert!(covered, "grid point ({ex}, {ey}) uncovered");
        }
        // 3. The epsilon-constraint optimum at any front member's energy
        //    budget does at least as well on goodput.
        if let Some(mid) = front.get(front.len() / 2) {
            let budget = mid.predicted.u_eng_uj_per_bit;
            let best = optimizer
                .epsilon_constraint(&grid, Metric::Goodput, &[(Metric::Energy, budget)])
                .expect("front member itself is feasible");
            prop_assert!(
                best.predicted.max_goodput_bps >= mid.predicted.max_goodput_bps - 1e-9
            );
        }
    }
}
