//! Tier-2 distributional gate: the fast engine must be *statistically*
//! equivalent to the golden engine.
//!
//! The golden engine is pinned bit-for-bit by `tests/golden_metrics.rs`;
//! the fast engine ([`FastLinkSimulation`]) intentionally reorders and
//! coalesces random draws, so its outputs can never be compared that way.
//! Its contract is weaker and is enforced here: over a stratified sample
//! of the paper's grid, every headline metric drawn from many independent
//! seeds must agree between the engines within confidence-interval
//! overlap, and the per-packet delay *distributions* must pass a
//! two-sample Kolmogorov–Smirnov test.
//!
//! Seeds are fixed, so this tier is deterministic: it either always
//! passes or always fails for a given code state — a red run means the
//! fast engine's physics drifted, not that the dice were unlucky.

use wsn_link_sim::fast::FastLinkSimulation;
use wsn_link_sim::metrics::LinkMetrics;
use wsn_link_sim::record::{PacketFate, PacketRecord};
use wsn_link_sim::simulation::{LinkSimulation, SimOptions};
use wsn_link_sim::traffic::TrafficModel;
use wsn_params::config::StackConfig;

/// Packets per run: enough that per-seed metrics are stable, small enough
/// that the whole tier stays in test-suite territory.
const PACKETS: u64 = 200;

/// Independent seeds per (config, engine) cell of the CI-overlap test.
const SEEDS: u64 = 24;

/// The stratified sample: strong / mid / grey-zone links, light and heavy
/// payloads, tight and loose retry budgets, slow and saturating arrivals.
fn sample() -> Vec<StackConfig> {
    [
        (10.0, 31u8, 50u16, 1u8, 50u32), // strong link, no retries
        (20.0, 11, 50, 3, 50),           // mid link, paper default budget
        (35.0, 3, 110, 8, 50),           // grey zone, heavy payload
        (35.0, 23, 50, 3, 20),           // shadowed distance, high load
        (30.0, 7, 110, 3, 100),          // weak-ish, slow arrivals
        (10.0, 31, 110, 3, 10),          // queue-pressure corner
    ]
    .into_iter()
    .map(|(dist, power, payload, tries, interval)| {
        StackConfig::builder()
            .distance_m(dist)
            .power_level(power)
            .payload_bytes(payload)
            .max_tries(tries)
            .retry_delay_ms(0)
            .queue_cap(30)
            .packet_interval_ms(interval)
            .build()
            .expect("valid sample constants")
    })
    .collect()
}

/// Runs one (config, seed) under the chosen engine.
fn run(
    config: StackConfig,
    seed: u64,
    fast: bool,
    record: bool,
) -> (LinkMetrics, Option<Vec<PacketRecord>>) {
    let options = SimOptions {
        packets: PACKETS,
        record_packets: record,
        traffic: TrafficModel::Periodic,
        ..SimOptions::paper(seed)
    };
    if fast {
        let outcome = FastLinkSimulation::new(config, options).run();
        let records = outcome.records.clone();
        (outcome.into_metrics(), records)
    } else {
        let outcome = LinkSimulation::new(config, options).run();
        (outcome.metrics().clone(), outcome.records)
    }
}

/// Mean and standard error of a sample (NaN entries excluded — a seed
/// whose run delivered nothing has no defined delay mean).
fn mean_se(values: &[f64]) -> (f64, f64) {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let n = finite.len() as f64;
    assert!(n >= 8.0, "too few finite samples ({n}) for a stable mean");
    let mean = finite.iter().sum::<f64>() / n;
    let var = finite.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

/// Asserts the two engine means agree within 3 combined standard errors
/// plus a small equivalence margin (absolute floor, relative cap).
fn assert_ci_overlap(
    what: &str,
    config: &StackConfig,
    golden: &[f64],
    fast: &[f64],
    abs_floor: f64,
    rel: f64,
) {
    let (mg, seg) = mean_se(golden);
    let (mf, sef) = mean_se(fast);
    let margin = 3.0 * (seg * seg + sef * sef).sqrt() + abs_floor.max(rel * mg.abs());
    assert!(
        (mg - mf).abs() <= margin,
        "{what} disagrees on {config:?}: golden {mg:.6} ± {seg:.6}, \
         fast {mf:.6} ± {sef:.6}, |Δ| = {:.6} > margin {margin:.6}",
        (mg - mf).abs()
    );
}

/// Two-sample Kolmogorov–Smirnov statistic, sup |F_a − F_b|.
fn ks_statistic(mut a: Vec<f64>, mut b: Vec<f64>) -> f64 {
    a.sort_by(f64::total_cmp);
    b.sort_by(f64::total_cmp);
    let (n, m) = (a.len(), b.len());
    assert!(n > 0 && m > 0, "KS needs non-empty samples");
    let (mut i, mut j, mut d) = (0usize, 0usize, 0.0f64);
    while i < n && j < m {
        let x = if a[i] <= b[j] { a[i] } else { b[j] };
        while i < n && a[i] <= x {
            i += 1;
        }
        while j < m && b[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / n as f64 - j as f64 / m as f64).abs());
    }
    d
}

#[test]
fn headline_metrics_agree_within_confidence_intervals() {
    for config in sample() {
        let mut plr = (Vec::new(), Vec::new());
        let mut goodput = (Vec::new(), Vec::new());
        let mut delay = (Vec::new(), Vec::new());
        let mut energy = (Vec::new(), Vec::new());
        for seed in 0..SEEDS {
            // Decorrelate seeds from the tiny integers the tests use
            // elsewhere; both engines get the identical seed list.
            let seed = 0xD157_0000 + seed * 7919;
            for fast in [false, true] {
                let (metrics, _) = run(config, seed, fast, false);
                assert!(
                    metrics.conserves_packets(),
                    "packet conservation broken (fast={fast}) on {config:?}"
                );
                if fast {
                    plr.1.push(metrics.plr_total());
                    goodput.1.push(metrics.goodput_bps);
                    delay.1.push(metrics.delay_mean_ms);
                    energy.1.push(metrics.u_eng_uj_per_bit);
                } else {
                    plr.0.push(metrics.plr_total());
                    goodput.0.push(metrics.goodput_bps);
                    delay.0.push(metrics.delay_mean_ms);
                    energy.0.push(metrics.u_eng_uj_per_bit);
                }
            }
        }
        assert_ci_overlap("PLR", &config, &plr.0, &plr.1, 0.015, 0.0);
        assert_ci_overlap("goodput", &config, &goodput.0, &goodput.1, 20.0, 0.03);
        assert_ci_overlap("mean delay", &config, &delay.0, &delay.1, 0.5, 0.03);
        assert_ci_overlap("energy/bit", &config, &energy.0, &energy.1, 0.05, 0.03);
    }
}

#[test]
fn delivered_delay_distributions_pass_kolmogorov_smirnov() {
    // Two regimes with very different delay shapes: the paper-default mid
    // link (retry tail) and the queue-pressure corner (queueing tail).
    let configs = [sample()[1], sample()[5]];
    for config in configs {
        let mut pooled = (Vec::new(), Vec::new());
        for seed in 0..8u64 {
            let seed = 0x4B53_0000 + seed * 104_729;
            for fast in [false, true] {
                let (_, records) = run(config, seed, fast, true);
                let delays = records
                    .expect("records requested")
                    .iter()
                    .filter(|r| r.fate == PacketFate::Delivered)
                    .filter_map(|r| r.delay())
                    .map(|d| d.as_micros() as f64)
                    .collect::<Vec<f64>>();
                if fast {
                    pooled.1.extend(delays);
                } else {
                    pooled.0.extend(delays);
                }
            }
        }
        let (n, m) = (pooled.0.len() as f64, pooled.1.len() as f64);
        let d = ks_statistic(pooled.0, pooled.1);
        // c(α)·sqrt((n+m)/nm) at α = 0.001, plus slack for the heavy ties
        // a discrete-time MAC produces.
        let threshold = 1.95 * ((n + m) / (n * m)).sqrt() + 0.02;
        assert!(
            d <= threshold,
            "delay KS statistic {d:.4} exceeds {threshold:.4} on {config:?} \
             (n = {n}, m = {m})"
        );
    }
}
