//! Named generator types.

use crate::chacha::ChaCha12;
use crate::{RngCore, SeedableRng};

/// The standard deterministic generator: ChaCha with 12 rounds, matching
/// the algorithm `rand 0.8` uses for its `StdRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    core: ChaCha12,
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.core.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Low word first, matching rand_chacha's 64-bit assembly order.
        let lo = self.core.next_word() as u64;
        let hi = self.core.next_word() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        StdRng {
            core: ChaCha12::from_seed(seed),
        }
    }
}

/// A small fast generator; aliased to the same core here, which is plenty
/// fast for simulation workloads and keeps the vendored surface tiny.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = StdRng::seed_from_u64(0x5EED);
        let mut b = StdRng::seed_from_u64(0x5EED);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn from_seed_uses_all_bytes() {
        let mut s1 = [0u8; 32];
        let mut s2 = [0u8; 32];
        s2[31] = 1;
        let mut a = StdRng::from_seed(s1);
        let mut b = StdRng::from_seed(s2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
        s1[0] = 9;
        let mut c = StdRng::from_seed(s1);
        assert_ne!(c.gen::<u64>(), StdRng::from_seed([0u8; 32]).gen::<u64>());
    }
}
