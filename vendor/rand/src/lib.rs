//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace patches `rand` to this crate (see `[patch.crates-io]` in the
//! root manifest). It implements exactly the surface the simulator uses:
//!
//! * [`rngs::StdRng`] — a ChaCha12 generator seeded the same way as
//!   `rand 0.8` (`seed_from_u64` uses the PCG32 seed-expansion of
//!   `rand_core 0.6`, `from_seed` takes the 32-byte key directly), so
//!   seeded sequences are deterministic and of cryptographic quality;
//! * the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits with `gen`,
//!   `gen_range` and `gen_bool`;
//! * uniform sampling for the integer and float ranges the simulator draws
//!   from, using the widening-multiply method for integers and the
//!   53-bit-mantissa method for floats.
//!
//! Only determinism and statistical quality are guaranteed; bit-for-bit
//! equality with upstream `rand` is not.

pub mod rngs;

mod chacha;

/// The core of every generator: a source of raw random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with the PCG32-based
    /// scheme of `rand_core 0.6` so low-entropy seeds still produce
    /// well-mixed states.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types sampleable from the "standard" distribution (`Rng::gen`).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $m:ident),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                    u64 => next_u64, usize => next_u64,
                    i8 => next_u32, i16 => next_u32, i32 => next_u32,
                    i64 => next_u64, isize => next_u64);

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, bound)` via 64→128-bit widening multiply with
/// rejection (Lemire's method).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Values below `threshold` would be over-represented and are rejected.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty float range");
        let scale = self.end - self.start;
        // Mantissa trick: a float in [1, 2) has a fixed exponent, so the
        // 52 random mantissa bits give a uniform fraction in [0, 1).
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
        (value1_2 - 1.0) * scale + self.start
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty float range");
        let scale = self.end - self.start;
        let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
        (value1_2 - 1.0) * scale + self.start
    }
}

/// User-facing convenience methods; implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type from the standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, RG: SampleRange<T>>(&mut self, range: RG) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_sequences_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_standard_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u8..=17);
            assert!((3..=17).contains(&x));
            let y = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = rng.gen_range(5u32..8);
            assert!((5..8).contains(&z));
        }
    }

    #[test]
    fn gen_range_hits_every_value_of_a_small_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_of_unit_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 7]);
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(-1.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(19);
        let x = draw(&mut rng);
        assert!((-1.0..1.0).contains(&x));
    }
}
