//! ChaCha12 block generator backing [`crate::rngs::StdRng`].
//!
//! Standard ChaCha (Bernstein) with 12 rounds, a 64-bit block counter and a
//! 64-bit stream id fixed to zero — the layout `rand 0.8` uses for `StdRng`.
//!
//! Four consecutive blocks (counters `c .. c+4`) are computed per refill,
//! one block per 32-bit lane of a 128-bit vector: every ChaCha state word
//! becomes one `__m128i` (or a `[u32; 4]` on non-x86_64 targets), so each
//! quarter-round operation processes all four blocks at once. Blocks are
//! independent by construction (only the counter word differs), so the
//! emitted **word sequence is identical** to the one-block-at-a-time
//! scalar implementation — a property the simulator's bit-for-bit
//! reproducibility guarantee rests on, and which the tests below pin
//! against a scalar reference.

/// Words per ChaCha block.
const BLOCK_WORDS: usize = 16;
/// Blocks computed per refill (one 32-bit SIMD lane per block).
const LANES: usize = 4;
/// Words buffered per refill.
const BUF_WORDS: usize = BLOCK_WORDS * LANES;

/// `"expand 32-byte k"` as four little-endian words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha12 keyed generator producing 16-word blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha12 {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit counter of the next block to be generated.
    counter: u64,
    /// Output of the last refill: blocks `counter-4 .. counter`, each
    /// block's 16 words stored consecutively in output order.
    buf: [u32; BUF_WORDS],
    /// Next unread word in `buf` (`BUF_WORDS` = exhausted).
    index: usize,
}

impl ChaCha12 {
    /// Creates a generator from a 32-byte key.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12 {
            key,
            counter: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }

    /// Computes the next four output blocks in one SIMD pass.
    fn refill(&mut self) {
        four_blocks(&self.key, self.counter, &mut self.buf);
        self.counter = self.counter.wrapping_add(LANES as u64);
        self.index = 0;
    }

    /// Returns the next 32-bit output word.
    #[inline]
    pub fn next_word(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }
}

/// SSE2 path: SSE2 is part of the x86_64 baseline, so this needs no
/// runtime feature detection. The only unsafe here is the intrinsic calls
/// themselves (they are value-based; no pointers are involved).
#[cfg(target_arch = "x86_64")]
fn four_blocks(key: &[u32; 8], counter: u64, out: &mut [u32; BUF_WORDS]) {
    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_or_si128, _mm_set1_epi32, _mm_set_epi32, _mm_slli_epi32,
        _mm_srli_epi32, _mm_xor_si128,
    };

    // The shift intrinsics want literal immediates, hence a macro rather
    // than a function over the rotation amount.
    macro_rules! rotl {
        ($x:expr, $left:literal, $right:literal) => {
            _mm_or_si128(_mm_slli_epi32($x, $left), _mm_srli_epi32($x, $right))
        };
    }

    #[inline(always)]
    fn quarter_round(x: &mut [__m128i; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
        // SAFETY: SSE2 is statically available on x86_64.
        unsafe {
            x[a] = _mm_add_epi32(x[a], x[b]);
            x[d] = rotl!(_mm_xor_si128(x[d], x[a]), 16, 16);
            x[c] = _mm_add_epi32(x[c], x[d]);
            x[b] = rotl!(_mm_xor_si128(x[b], x[c]), 12, 20);
            x[a] = _mm_add_epi32(x[a], x[b]);
            x[d] = rotl!(_mm_xor_si128(x[d], x[a]), 8, 24);
            x[c] = _mm_add_epi32(x[c], x[d]);
            x[b] = rotl!(_mm_xor_si128(x[b], x[c]), 7, 25);
        }
    }

    // SAFETY: SSE2 is statically available on x86_64; transmutes are
    // between __m128i and [u32; 4], which have identical size and no
    // invalid bit patterns.
    unsafe {
        let splat = |v: u32| _mm_set1_epi32(v as i32);
        // Lane l is the block at counter + l; _mm_set_epi32 takes its
        // arguments high-lane first.
        let ctr = |shift: u32| {
            _mm_set_epi32(
                (counter.wrapping_add(3) >> shift) as i32,
                (counter.wrapping_add(2) >> shift) as i32,
                (counter.wrapping_add(1) >> shift) as i32,
                (counter >> shift) as i32,
            )
        };
        let input: [__m128i; BLOCK_WORDS] = [
            splat(SIGMA[0]),
            splat(SIGMA[1]),
            splat(SIGMA[2]),
            splat(SIGMA[3]),
            splat(key[0]),
            splat(key[1]),
            splat(key[2]),
            splat(key[3]),
            splat(key[4]),
            splat(key[5]),
            splat(key[6]),
            splat(key[7]),
            ctr(0),
            ctr(32),
            splat(0), // stream id low
            splat(0), // stream id high
        ];
        let mut x = input;
        for _ in 0..6 {
            // Column round.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        // Feed-forward, then transpose back to block-sequential order.
        for (w, (row, init)) in x.iter().zip(&input).enumerate() {
            let lanes: [u32; 4] = core::mem::transmute(_mm_add_epi32(*row, *init));
            for (l, &lane) in lanes.iter().enumerate() {
                out[l * BLOCK_WORDS + w] = lane;
            }
        }
    }
}

/// Portable fallback: the same four-lane computation on `[u32; 4]` rows.
#[cfg(not(target_arch = "x86_64"))]
fn four_blocks(key: &[u32; 8], counter: u64, out: &mut [u32; BUF_WORDS]) {
    #[inline(always)]
    fn quarter_round(x: &mut [[u32; LANES]; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
        for l in 0..LANES {
            x[a][l] = x[a][l].wrapping_add(x[b][l]);
            x[d][l] = (x[d][l] ^ x[a][l]).rotate_left(16);
            x[c][l] = x[c][l].wrapping_add(x[d][l]);
            x[b][l] = (x[b][l] ^ x[c][l]).rotate_left(12);
            x[a][l] = x[a][l].wrapping_add(x[b][l]);
            x[d][l] = (x[d][l] ^ x[a][l]).rotate_left(8);
            x[c][l] = x[c][l].wrapping_add(x[d][l]);
            x[b][l] = (x[b][l] ^ x[c][l]).rotate_left(7);
        }
    }

    let mut input = [[0u32; LANES]; BLOCK_WORDS];
    for (word, row) in input.iter_mut().enumerate().take(4) {
        *row = [SIGMA[word]; LANES];
    }
    for (word, &k) in key.iter().enumerate() {
        input[4 + word] = [k; LANES];
    }
    for l in 0..LANES {
        let ctr = counter.wrapping_add(l as u64);
        input[12][l] = ctr as u32;
        input[13][l] = (ctr >> 32) as u32;
    }
    let mut x = input;
    for _ in 0..6 {
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for l in 0..LANES {
        for w in 0..BLOCK_WORDS {
            out[l * BLOCK_WORDS + w] = x[w][l].wrapping_add(input[w][l]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original one-block-at-a-time implementation, kept verbatim as
    /// the ground truth the SIMD-lane version must reproduce word-for-word.
    struct ScalarChaCha12 {
        key: [u32; 8],
        counter: u64,
        block: [u32; 16],
        index: usize,
    }

    fn scalar_quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    impl ScalarChaCha12 {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (i, chunk) in seed.chunks_exact(4).enumerate() {
                key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
            }
            ScalarChaCha12 {
                key,
                counter: 0,
                block: [0; 16],
                index: 16,
            }
        }

        fn refill(&mut self) {
            let input: [u32; 16] = [
                SIGMA[0],
                SIGMA[1],
                SIGMA[2],
                SIGMA[3],
                self.key[0],
                self.key[1],
                self.key[2],
                self.key[3],
                self.key[4],
                self.key[5],
                self.key[6],
                self.key[7],
                self.counter as u32,
                (self.counter >> 32) as u32,
                0,
                0,
            ];
            let mut state = input;
            for _ in 0..6 {
                scalar_quarter_round(&mut state, 0, 4, 8, 12);
                scalar_quarter_round(&mut state, 1, 5, 9, 13);
                scalar_quarter_round(&mut state, 2, 6, 10, 14);
                scalar_quarter_round(&mut state, 3, 7, 11, 15);
                scalar_quarter_round(&mut state, 0, 5, 10, 15);
                scalar_quarter_round(&mut state, 1, 6, 11, 12);
                scalar_quarter_round(&mut state, 2, 7, 8, 13);
                scalar_quarter_round(&mut state, 3, 4, 9, 14);
            }
            for (word, init) in state.iter_mut().zip(input) {
                *word = word.wrapping_add(init);
            }
            self.block = state;
            self.counter = self.counter.wrapping_add(1);
            self.index = 0;
        }

        fn next_word(&mut self) -> u32 {
            if self.index >= 16 {
                self.refill();
            }
            let word = self.block[self.index];
            self.index += 1;
            word
        }
    }

    #[test]
    fn four_lane_output_matches_scalar_reference_word_for_word() {
        for seed_byte in [0u8, 1, 7, 42, 0xFF] {
            let mut fast = ChaCha12::from_seed([seed_byte; 32]);
            let mut reference = ScalarChaCha12::from_seed([seed_byte; 32]);
            // Several refills deep, including buffer boundaries.
            for i in 0..4096 {
                assert_eq!(
                    fast.next_word(),
                    reference.next_word(),
                    "word {i} diverged for seed byte {seed_byte}"
                );
            }
        }
    }

    #[test]
    fn lanes_cross_the_32_bit_counter_boundary_correctly() {
        // A refill whose four lane counters straddle the low-word rollover
        // must still match the scalar reference (words 12/13 split).
        let mut fast = ChaCha12::from_seed([9; 32]);
        let mut reference = ScalarChaCha12::from_seed([9; 32]);
        fast.counter = 0xFFFF_FFFE;
        reference.counter = 0xFFFF_FFFE;
        fast.index = BUF_WORDS;
        reference.index = 16;
        for i in 0..256 {
            assert_eq!(fast.next_word(), reference.next_word(), "word {i}");
        }
    }

    #[test]
    fn blocks_differ_and_are_deterministic() {
        let mut a = ChaCha12::from_seed([7; 32]);
        let mut b = ChaCha12::from_seed([7; 32]);
        let xs: Vec<u32> = (0..64).map(|_| a.next_word()).collect();
        let ys: Vec<u32> = (0..64).map(|_| b.next_word()).collect();
        assert_eq!(xs, ys);
        // Successive blocks differ (counter advances).
        assert_ne!(&xs[0..16], &xs[16..32]);
    }

    #[test]
    fn key_change_changes_output() {
        let mut a = ChaCha12::from_seed([1; 32]);
        let mut b = ChaCha12::from_seed([2; 32]);
        assert_ne!(a.next_word(), b.next_word());
    }

    #[test]
    fn output_words_look_uniform() {
        // Cheap sanity check: bit balance over a few thousand words.
        let mut rng = ChaCha12::from_seed([42; 32]);
        let mut ones = 0u64;
        let n = 4096;
        for _ in 0..n {
            ones += rng.next_word().count_ones() as u64;
        }
        let ratio = ones as f64 / (n as f64 * 32.0);
        assert!((ratio - 0.5).abs() < 0.01, "bit ratio {ratio}");
    }
}
