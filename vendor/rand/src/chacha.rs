//! ChaCha12 block generator backing [`crate::rngs::StdRng`].
//!
//! Standard ChaCha (Bernstein) with 12 rounds, a 64-bit block counter and a
//! 64-bit stream id fixed to zero — the layout `rand 0.8` uses for `StdRng`.

/// ChaCha12 keyed generator producing 16-word blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha12 {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12 {
    /// `"expand 32-byte k"` as four little-endian words.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    /// Creates a generator from a 32-byte key.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12 {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }

    /// Computes the next 16-word output block.
    fn refill(&mut self) {
        let input: [u32; 16] = [
            Self::SIGMA[0],
            Self::SIGMA[1],
            Self::SIGMA[2],
            Self::SIGMA[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0, // stream id low
            0, // stream id high
        ];
        let mut state = input;
        for _ in 0..6 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Returns the next 32-bit output word.
    #[inline]
    pub fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_differ_and_are_deterministic() {
        let mut a = ChaCha12::from_seed([7; 32]);
        let mut b = ChaCha12::from_seed([7; 32]);
        let xs: Vec<u32> = (0..64).map(|_| a.next_word()).collect();
        let ys: Vec<u32> = (0..64).map(|_| b.next_word()).collect();
        assert_eq!(xs, ys);
        // Successive blocks differ (counter advances).
        assert_ne!(&xs[0..16], &xs[16..32]);
    }

    #[test]
    fn key_change_changes_output() {
        let mut a = ChaCha12::from_seed([1; 32]);
        let mut b = ChaCha12::from_seed([2; 32]);
        assert_ne!(a.next_word(), b.next_word());
    }

    #[test]
    fn output_words_look_uniform() {
        // Cheap sanity check: bit balance over a few thousand words.
        let mut rng = ChaCha12::from_seed([42; 32]);
        let mut ones = 0u64;
        let n = 4096;
        for _ in 0..n {
            ones += rng.next_word().count_ones() as u64;
        }
        let ratio = ones as f64 / (n as f64 * 32.0);
        assert!((ratio - 0.5).abs() < 0.01, "bit ratio {ratio}");
    }
}
