//! Offline vendored subset of the `serde_json` API.
//!
//! Works over the vendored `serde` crate's [`Value`] tree: serialization
//! renders a `Value` to JSON text, deserialization parses JSON text into a
//! `Value` and rebuilds the target type. Numbers print with Rust's shortest
//! round-trip float formatting; non-finite floats were already mapped to
//! `null` by the `serde` layer (matching upstream `serde_json`).

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// JSON error (shared by read and write paths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors upstream.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.serialize()
}

/// Rebuilds a `T` from a [`Value`] tree.
///
/// # Errors
///
/// Returns the first shape mismatch.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value).map_err(Error::from)
}

/// Parses JSON text and rebuilds a `T`.
///
/// # Errors
///
/// Returns a parse error with byte offset, or the first shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::deserialize(&value).map_err(Error::from)
}

// ── writer ───────────────────────────────────────────────────────────────

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            debug_assert!(x.is_finite(), "serde layer maps non-finite to Null");
            // Shortest round-trip formatting; force a float marker so the
            // value re-parses as a float-shaped number.
            let s = format!("{x}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space
                    }
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ── parser ───────────────────────────────────────────────────────────────

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns the first syntax error with its byte offset.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error(format!(
                "unexpected byte '{}' at {}",
                b as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not needed for this
                            // workspace's data; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("unsupported \\u escape".into()))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?} at {start}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error(format!("invalid utf-8 at byte {}", self.pos)))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number '{text}' at byte {start}")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn float_formatting_round_trips_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456.789e10, f64::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x, "json={json}");
        }
    }

    #[test]
    fn non_finite_floats_write_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""A""#).unwrap(), "A");
    }

    #[test]
    fn vectors_and_options_round_trip() {
        let xs = vec![1u8, 2, 3];
        assert_eq!(to_string(&xs).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u8>>("[1,2,3]").unwrap(), xs);
        assert_eq!(to_string(&Option::<u8>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let xs = vec![vec![1u8], vec![2, 3]];
        let pretty = to_string_pretty(&xs).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&pretty).unwrap(), xs);
    }

    #[test]
    fn parse_rejects_trailing_garbage_and_bad_syntax() {
        assert!(from_str::<u32>("42 x").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.field("a").as_array().unwrap().len(), 2);
        assert_eq!(v.field("b"), &Value::Null);
    }
}
