//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no crates.io access, so this proc-macro crate is
//! written against `proc_macro` alone — no `syn`/`quote`. It hand-parses the
//! item's token stream into a small shape model (named struct, tuple struct,
//! unit struct, enum with unit/tuple/named variants) and emits impls of the
//! vendored tree-based `serde::Serialize` / `serde::Deserialize` traits.
//!
//! Supported subset (everything this workspace derives on):
//!
//! * structs and enums, including simple type generics (every type
//!   parameter is bounded by the derived trait);
//! * `#[serde(...)]` attributes are **not** supported and produce a compile
//!   error rather than silently wrong encodings.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// The shape of the derive target.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// Skips one attribute (`#` already consumed? no — expects `#` at `iter`
/// front) and rejects `#[serde(...)]`, which this vendored derive cannot
/// honor.
fn skip_attributes(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            return;
        }
        iter.next();
        if let Some(TokenTree::Group(g)) = iter.next() {
            let body = g.stream().to_string();
            if body.starts_with("serde") {
                panic!("vendored serde_derive does not support #[serde(...)] attributes: {body}");
            }
        } else {
            panic!("expected attribute body after '#'");
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in …)`.
fn skip_visibility(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Consumes type tokens until a top-level comma (tracking `<`/`>` depth) or
/// the end of the stream. Returns whether a comma was consumed.
fn skip_type(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut angle_depth = 0i32;
    for tt in iter.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

/// Parses the fields of a named-fields body (struct or enum variant).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(name)) => {
                fields.push(name.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("expected ':' after field name, got {other:?}"),
                }
                if !skip_type(&mut iter) {
                    break;
                }
            }
            None => break,
            other => panic!("unexpected token in field list: {other:?}"),
        }
    }
    fields
}

/// Counts the fields of a tuple body (top-level comma-separated segments).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        count += 1;
        if !skip_type(&mut iter) {
            break;
        }
    }
    count
}

/// Parses the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = match iter.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match iter.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip an optional discriminant, then the trailing comma.
        let mut angle_depth = 0i32;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                None => break,
                _ => {}
            }
        }
    }
    variants
}

/// Parses the generic parameter list after an item name, returning the type
/// parameter idents (bounds and defaults are dropped; lifetimes and const
/// generics are unsupported).
fn parse_generics(
    iter: &mut core::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    iter.next();
    let mut depth = 1usize;
    let mut expect_param = true;
    while depth > 0 {
        match iter.next() {
            Some(TokenTree::Punct(p)) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 1 => expect_param = true,
                '\'' if depth == 1 && expect_param => {
                    panic!("vendored serde_derive does not support lifetime parameters");
                }
                _ => {}
            },
            Some(TokenTree::Ident(id)) if depth == 1 && expect_param => {
                let word = id.to_string();
                if word == "const" {
                    panic!("vendored serde_derive does not support const generics");
                }
                params.push(word);
                expect_param = false;
            }
            Some(_) => {}
            None => panic!("unbalanced generic parameter list"),
        }
    }
    params
}

/// Parses a `struct`/`enum` item into its name, type parameters, and shape.
fn parse_item(input: TokenStream) -> (String, Vec<String>, Shape) {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (doc comments arrive as #[doc = …]) and vis.
    skip_attributes(&mut iter);
    skip_visibility(&mut iter);
    match iter.peek() {
        Some(TokenTree::Ident(id)) => {
            let word = id.to_string();
            if word != "struct" && word != "enum" {
                // e.g. `#[repr(..)]` handled above; unexpected modifiers like
                // `union` are unsupported.
                panic!("vendored serde_derive supports only structs and enums, found `{word}`");
            }
        }
        other => panic!("unexpected token before item keyword: {other:?}"),
    }
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => unreachable!(),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    let generics = parse_generics(&mut iter);
    // A `where` clause may sit between the generics and the body.
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        panic!("vendored serde_derive does not support where clauses on `{name}`");
    }
    let shape = if keyword == "enum" {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, got {other:?}"),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("expected struct body, got {other:?}"),
        }
    };
    (name, generics, shape)
}

/// Builds the `impl<…> Trait for Name<…>` header, bounding every type
/// parameter by `bound` (e.g. `::serde::Serialize`).
fn impl_header(name: &str, generics: &[String], bound: &str) -> (String, String) {
    if generics.is_empty() {
        (String::new(), name.to_string())
    } else {
        let bounded: Vec<String> = generics.iter().map(|g| format!("{g}: {bound}")).collect();
        (
            format!("<{}>", bounded.join(", ")),
            format!("{name}<{}>", generics.join(", ")),
        )
    }
}

// ── code generation ──────────────────────────────────────────────────────

fn gen_serialize(name: &str, generics: &[String], shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::serialize(__f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::serialize(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec![{items}]))])",
                                binds = binders.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{entries}]))])",
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let (params, target) = impl_header(name, generics, "::serde::Serialize");
    format!(
        "impl{params} ::serde::Serialize for {target} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, generics: &[String], shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(__value.field(\"{f}\"))\
                         .map_err(|e| ::serde::Error::msg(\
                         ::std::format!(\"{name}.{f}: {{}}\", e.0)))?"
                    )
                })
                .collect();
            format!(
                "if __value.as_object().is_none() {{\n\
                     return ::std::result::Result::Err(::serde::Error::msg(\
                     ::std::format!(\"{name}: expected object, got {{}}\", __value.kind())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__value)?))"
        ),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.as_array().ok_or_else(|| ::serde::Error::msg(\
                 ::std::format!(\"{name}: expected array, got {{}}\", __value.kind())))?;\n\
                 if __items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::msg(\
                     ::std::format!(\"{name}: expected {n} items, got {{}}\", __items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn})",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(__payload)?))"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let __items = __payload.as_array().ok_or_else(|| \
                                 ::serde::Error::msg(\"{name}::{vn}: expected array payload\"))?;\n\
                                 if __items.len() != {n} {{\n\
                                     return ::std::result::Result::Err(::serde::Error::msg(\
                                     \"{name}::{vn}: wrong payload arity\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize(\
                                         __payload.field(\"{f}\"))\
                                         .map_err(|e| ::serde::Error::msg(\
                                         ::std::format!(\"{name}::{vn}.{f}: {{}}\", e.0)))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }})",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(__tag) = __value.as_str() {{\n\
                     match __tag {{\n\
                         {unit_arms},\n\
                         __other => ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"{name}: unknown variant '{{}}'\", __other)))\n\
                     }}\n\
                 }} else if let ::std::option::Option::Some(__entries) = __value.as_object() {{\n\
                     if __entries.len() != 1 {{\n\
                         return ::std::result::Result::Err(::serde::Error::msg(\
                         \"{name}: expected single-key variant object\"));\n\
                     }}\n\
                     let (__tag, __payload) = (&__entries[0].0, &__entries[0].1);\n\
                     match __tag.as_str() {{\n\
                         {data_arms},\n\
                         __other => ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"{name}: unknown variant '{{}}'\", __other)))\n\
                     }}\n\
                 }} else {{\n\
                     ::std::result::Result::Err(::serde::Error::msg(\
                     ::std::format!(\"{name}: expected string or object, got {{}}\", \
                     __value.kind())))\n\
                 }}",
                unit_arms = if unit_arms.is_empty() {
                    format!(
                        "__impossible => ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"{name}: unknown variant '{{}}'\", __impossible)))"
                    )
                } else {
                    unit_arms.join(",\n")
                },
                data_arms = if data_arms.is_empty() {
                    format!(
                        "__impossible => ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"{name}: unknown variant '{{}}'\", __impossible)))"
                    )
                } else {
                    data_arms.join(",\n")
                },
            )
        }
    };
    let (params, target) = impl_header(name, generics, "::serde::Deserialize");
    format!(
        "impl{params} ::serde::Deserialize for {target} {{\n\
             fn deserialize(__value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

/// Derives the vendored tree-based `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, generics, shape) = parse_item(input);
    gen_serialize(&name, &generics, &shape)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored tree-based `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, generics, shape) = parse_item(input);
    gen_deserialize(&name, &generics, &shape)
        .parse()
        .expect("generated Deserialize impl parses")
}
