//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `criterion` to this crate. It supports the surface the repo's benches
//! use — `criterion_group!`/`criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `sample_size`/`measurement_time`,
//! and [`Bencher::iter`] — with a simple wall-clock measurement loop that
//! prints mean/min/max per-iteration times. There are no HTML reports,
//! statistical outlier analysis, or baseline comparisons.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Collected timing for one benchmark.
#[derive(Debug, Clone, Copy)]
struct Sample {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    /// Iterations to run in the current measurement batch.
    iters: u64,
    /// Accumulated elapsed time for the batch.
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `iters` times and records the elapsed wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark driver; collects and prints per-benchmark timings.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of measurement samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    /// Accepted for CLI compatibility; configuration flags are ignored.
    pub fn configure_from_args(&mut self) -> &mut Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample = run_benchmark(f, self.sample_size, self.measurement_time);
        report(id, sample);
        self
    }

    /// Prints the closing summary (no-op in the vendored subset).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Overrides the target measurement time for this group.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = Some(dur);
        self
    }

    /// Accepted for source compatibility; the vendored runner's single
    /// calibration pass serves as the warm-up.
    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample = run_benchmark(
            f,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
        );
        report(&format!("{}/{id}", self.name), sample);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    mut f: F,
    sample_size: usize,
    measurement_time: Duration,
) -> Sample {
    // Warm-up & calibration: find an iteration count whose batch runtime
    // gives sample_size batches within the measurement budget.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = measurement_time
        .checked_div(sample_size as u32)
        .unwrap_or(Duration::from_millis(10));
    let iters =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000_000) as u64;

    let mut total_ns = 0.0;
    let mut min_ns = f64::INFINITY;
    let mut max_ns = 0.0f64;
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        bencher.iters = iters;
        f(&mut bencher);
        let ns = bencher.elapsed.as_nanos() as f64 / iters as f64;
        total_ns += ns;
        min_ns = min_ns.min(ns);
        max_ns = max_ns.max(ns);
        total_iters += iters;
    }
    Sample {
        mean_ns: total_ns / sample_size as f64,
        min_ns,
        max_ns,
        iters: total_iters,
    }
}

fn report(id: &str, sample: Sample) {
    println!(
        "{id:<48} time: [{} {} {}]  ({} iters)",
        format_ns(sample.min_ns),
        format_ns(sample.mean_ns),
        format_ns(sample.max_ns),
        sample.iters,
    );
}

/// Declares a benchmark group: `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            criterion.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point: `criterion_main!(benches);`
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .bench_function("noop", |b| {
                b.iter(|| {
                    calls += 1;
                })
            });
        assert!(calls > 0);
    }

    #[test]
    fn group_overrides_apply() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(5));
        group.bench_function("fast", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
