//! Offline vendored subset of the `serde` API.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `serde` to this crate. Instead of upstream serde's visitor architecture it
//! uses a simple tree-based data model: [`Serialize`] renders a value into a
//! [`Value`] tree and [`Deserialize`] rebuilds a value from one. The derive
//! macros (re-exported from the vendored `serde_derive` when the `derive`
//! feature is on) generate impls of these traits with upstream-compatible
//! JSON conventions:
//!
//! * named-field structs → objects, in declaration order;
//! * newtype structs → the inner value, transparently;
//! * unit enum variants → the variant name as a string;
//! * data-carrying variants → `{"Variant": payload}` single-key objects.
//!
//! Non-finite floats serialize as `null` and deserialize back as `NaN`
//! (upstream `serde_json` behaves the same way on the write side).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialization error type (also used for deserialization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A dynamically-typed serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A finite float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (declaration order is preserved).
    Object(Vec<(String, Value)>),
}

/// A shared `Null` to return for missing object fields.
static NULL: Value = Value::Null;

impl Value {
    /// Looks up `name` in an object; returns `Null` for misses so optional
    /// fields deserialize to `None`.
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The value as a `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) if x >= 0 => Some(x as u64),
            Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Some(x as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) if x <= i64::MAX as u64 => Some(x as i64),
            Value::F64(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => Some(x as i64),
            _ => None,
        }
    }

    /// The value as an `f64`. `Null` maps to `NaN` (the write-side encoding
    /// of non-finite floats).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::U64(x) => Some(x as f64),
            Value::I64(x) => Some(x as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object entries.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A type renderable into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn serialize(&self) -> Value;
}

/// A type rebuildable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from `value`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first shape mismatch.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ── primitive impls ──────────────────────────────────────────────────────

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let x = v.as_u64()
                    .ok_or_else(|| Error::msg(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(x).map_err(|_| Error::msg(format!(
                    "integer {x} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let x = v.as_i64()
                    .ok_or_else(|| Error::msg(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(x).map_err(|_| Error::msg(format!(
                    "integer {x} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        (*self as f64).serialize()
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::msg(format!("expected bool, got {}", v.kind())))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::msg(format!("expected string, got {}", v.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v.as_array()
                    .ok_or_else(|| Error::msg(format!("expected array, got {}", v.kind())))?;
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected {expected}-tuple, got {} items", items.len())));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-3i32).serialize()).unwrap(), -3);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        assert_eq!(f64::INFINITY.serialize(), Value::Null);
        assert!(f64::deserialize(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn options_and_vecs_round_trip() {
        let v: Option<u8> = None;
        assert_eq!(v.serialize(), Value::Null);
        assert_eq!(Option::<u8>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::deserialize(&Value::U64(7)).unwrap(), Some(7));
        let xs = vec![1u16, 2, 3];
        assert_eq!(Vec::<u16>::deserialize(&xs.serialize()).unwrap(), xs);
    }

    #[test]
    fn missing_object_field_reads_as_null() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(obj.field("a"), &Value::U64(1));
        assert_eq!(obj.field("b"), &Value::Null);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::deserialize(&Value::U64(300)).is_err());
        assert!(u32::deserialize(&Value::Str("x".into())).is_err());
    }
}
