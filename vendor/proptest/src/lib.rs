//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `proptest` to this crate. It keeps the property-test surface the repo
//! uses — the [`proptest!`] macro, range/tuple/`prop_map` strategies,
//! `prop::sample::select`, `prop::collection::vec`, [`any`], the
//! `prop_assert*` macros and [`ProptestConfig`] — on top of a deterministic
//! SplitMix64 generator seeded from the test name.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs but is not minimized), no persisted regression files, and no
//! panic-catching inside cases (a panic fails the test directly).

/// Deterministic test-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test name (FNV-1a hash), so every
    /// run of the same test draws the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's assumptions were not met; it is skipped, not failed.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration; only `cases` is honored by the vendored runner.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A source of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Filters generated values; cases failing `pred` are rejected (the
    /// vendored runner retries up to 100 draws, then panics).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            pred,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    base: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..100 {
            let v = self.base.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 100 draws in a row", self.whence);
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ── range strategies ─────────────────────────────────────────────────────

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

// ── tuple strategies ─────────────────────────────────────────────────────

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

// ── any::<T>() ───────────────────────────────────────────────────────────

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite full-range doubles (upstream generates non-finite values
        // too; the repo's properties all operate on finite inputs).
        loop {
            let x = f64::from_bits(rng.next_u64());
            if x.is_finite() {
                return x;
            }
        }
    }
}

/// The full-domain strategy for `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the full-domain strategy for `T` (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

// ── prop::sample / prop::collection ──────────────────────────────────────

/// `prop::sample`: choosing among explicit values.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy drawing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// Draws uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }
}

/// `prop::collection`: container strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes acceptable for [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// `prop::option`: optional values.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `None` about a quarter of the time, otherwise
    /// `Some` of the inner strategy's value.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Option<T>` values from an inner strategy (25% `None`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The `prop::` module alias used by `use proptest::prelude::*` callers.
pub mod prop {
    pub use crate::{collection, option, sample};
}

/// The usual imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ── macros ───────────────────────────────────────────────────────────────

/// Asserts inside a property; failure reports the case inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when its assumptions do not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u8..10, ys in prop::collection::vec(any::<bool>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )* } => { $(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                // Render the inputs up front: the body takes them by value,
                // so they are gone by the time a failure needs reporting.
                let __case_inputs = ::std::format!("{:#?}", ($(&$arg,)*));
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => case += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(10).max(1000),
                            "proptest {}: too many rejected cases",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}\ninputs: {}",
                            stringify!($name),
                            case,
                            msg,
                            __case_inputs,
                        );
                    }
                }
            }
        }
    )* };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..=9, y in -2.0f64..2.0) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (1u32..5, 10u32..20).prop_map(|(a, b)| a + b),
            choice in prop::sample::select(vec![2u8, 4, 8]),
            flags in prop::collection::vec(any::<bool>(), 0..6),
        ) {
            prop_assert!((11..25).contains(&pair));
            prop_assert!([2u8, 4, 8].contains(&choice));
            prop_assert!(flags.len() < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_cases_are_honored(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }
}
