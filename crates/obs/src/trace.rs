//! Per-request trace identifiers.
//!
//! A [`TraceId`] is a 64-bit value rendered as 16 lowercase hex
//! characters. The server stamps every request with one and carries it
//! through the response envelope and the access log, so one `grep` over
//! the JSONL log finds everything that happened to a request.
//!
//! Ids come from a [`TraceIdGen`]: a relaxed atomic counter fed through a
//! splitmix64 finalizer, so concurrent threads draw unique, well-mixed
//! ids with one `fetch_add` and no lock. Seeding from the clock makes ids
//! unique across server restarts too (two runs never reuse a prefix);
//! tests can pin the seed for reproducible ids.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// A 64-bit trace identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// splitmix64's output mixer: a bijection on u64, so distinct counter
/// values always yield distinct ids.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A lock-free trace-id source.
#[derive(Debug)]
pub struct TraceIdGen {
    state: AtomicU64,
}

impl TraceIdGen {
    /// A generator seeded from the wall clock and process id — ids differ
    /// across restarts.
    pub fn new() -> Self {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        TraceIdGen::seeded(nanos ^ (u64::from(std::process::id()) << 32))
    }

    /// A generator with a pinned seed, for reproducible tests.
    pub fn seeded(seed: u64) -> Self {
        TraceIdGen {
            state: AtomicU64::new(seed),
        }
    }

    /// The next trace id.
    pub fn next(&self) -> TraceId {
        TraceId(mix(self.state.fetch_add(1, Ordering::Relaxed)))
    }
}

impl Default for TraceIdGen {
    fn default() -> Self {
        TraceIdGen::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_render_as_16_hex_chars() {
        let id = TraceId(0xabc);
        assert_eq!(id.to_string(), "0000000000000abc");
        assert_eq!(TraceIdGen::seeded(0).next().to_string().len(), 16);
    }

    #[test]
    fn seeded_generator_is_reproducible_and_distinct() {
        let a = TraceIdGen::seeded(7);
        let b = TraceIdGen::seeded(7);
        let first = a.next();
        assert_eq!(first, b.next());
        assert_ne!(first, a.next());
    }

    #[test]
    fn concurrent_draws_are_unique() {
        let gen = std::sync::Arc::new(TraceIdGen::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let gen = std::sync::Arc::clone(&gen);
                std::thread::spawn(move || (0..1000).map(|_| gen.next().0).collect::<Vec<_>>())
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate trace id {id:x}");
            }
        }
        assert_eq!(seen.len(), 4000);
    }
}
