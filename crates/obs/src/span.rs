//! RAII span timers.
//!
//! A [`Span`] starts a clock when created and records the elapsed
//! microseconds into a [`LogLinearHistogram`] when dropped — so timing a
//! scope is one line, and early returns / `?` paths are measured for
//! free. Call [`Span::finish`] instead to also get the measured value
//! back (for logging it alongside the histogram record).

use std::time::Instant;

use crate::hist::LogLinearHistogram;

/// A running timer bound to a histogram.
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a LogLinearHistogram,
    started: Instant,
    armed: bool,
}

impl<'a> Span<'a> {
    /// Starts timing; the elapsed time lands in `hist` on drop.
    pub fn start(hist: &'a LogLinearHistogram) -> Self {
        Span {
            hist,
            started: Instant::now(),
            armed: true,
        }
    }

    /// Microseconds elapsed so far (does not stop the span).
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Stops the span, records it, and returns the elapsed microseconds.
    pub fn finish(mut self) -> u64 {
        let elapsed = self.elapsed_us();
        self.hist.record(elapsed);
        self.armed = false;
        elapsed
    }

    /// Abandons the span: nothing is recorded.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.elapsed_us());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_exactly_once() {
        let hist = LogLinearHistogram::new();
        {
            let _span = Span::start(&hist);
        }
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn finish_records_and_returns_the_value() {
        let hist = LogLinearHistogram::new();
        let span = Span::start(&hist);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let elapsed = span.finish();
        assert!(elapsed >= 2_000, "elapsed {elapsed}");
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.max(), hist.max().max(elapsed));
    }

    #[test]
    fn cancel_records_nothing() {
        let hist = LogLinearHistogram::new();
        Span::start(&hist).cancel();
        assert_eq!(hist.count(), 0);
    }

    #[test]
    fn early_return_paths_are_timed() {
        let hist = LogLinearHistogram::new();
        fn fallible(hist: &LogLinearHistogram, fail: bool) -> Result<(), ()> {
            let _span = Span::start(hist);
            if fail {
                return Err(());
            }
            Ok(())
        }
        fallible(&hist, true).unwrap_err();
        fallible(&hist, false).unwrap();
        assert_eq!(hist.count(), 2);
    }
}
