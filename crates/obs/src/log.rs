//! A leveled JSONL event log.
//!
//! Every event is one JSON object on one line:
//!
//! ```json
//! {"ts_us":1754450000000000,"level":"info","event":"request","op":"simulate","exec_us":523}
//! ```
//!
//! `ts_us` is microseconds since the Unix epoch. Events are built with a
//! borrowing builder ([`EventLog::event`] or the `info`/`warn`/… sugar)
//! that formats straight into one `String` and writes it under a single
//! writer lock, so lines from concurrent threads never interleave. A
//! disabled log ([`EventLog::disabled`]) skips all formatting: the
//! builder checks one boolean and every `field` call is a no-op, which is
//! what lets the serve worker loop log unconditionally.

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, from chattiest to most urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Developer-facing detail.
    Debug,
    /// Normal operational events (requests, checkpoints).
    Info,
    /// Something worth an operator's attention (slow requests).
    Warn,
    /// A failure.
    Error,
}

impl Level {
    /// The wire name (`"debug"`, `"info"`, `"warn"`, `"error"`).
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A shared, leveled JSONL sink.
pub struct EventLog {
    writer: Option<Mutex<Box<dyn Write + Send>>>,
    min_level: Level,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("enabled", &self.writer.is_some())
            .field("min_level", &self.min_level)
            .finish()
    }
}

impl EventLog {
    /// A log that formats nothing and writes nowhere.
    pub fn disabled() -> Self {
        EventLog {
            writer: None,
            min_level: Level::Error,
        }
    }

    /// A log writing to `writer`, keeping events at `min_level` and above.
    pub fn to_writer(writer: Box<dyn Write + Send>, min_level: Level) -> Self {
        EventLog {
            writer: Some(Mutex::new(writer)),
            min_level,
        }
    }

    /// A log appending to the file at `path` (created if missing),
    /// buffered, keeping `Info` and above.
    ///
    /// # Errors
    ///
    /// Any error from opening the file.
    pub fn to_file(path: &Path) -> io::Result<Self> {
        let file: File = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(EventLog::to_writer(
            Box::new(BufWriter::new(file)),
            Level::Info,
        ))
    }

    /// True when events at `level` would actually be written.
    pub fn enabled(&self, level: Level) -> bool {
        self.writer.is_some() && level >= self.min_level
    }

    /// Starts an event at `level` named `name`. Returns a builder; call
    /// [`Event::emit`] to write the line (dropping without `emit` writes
    /// nothing).
    pub fn event<'a>(&'a self, level: Level, name: &str) -> Event<'a> {
        if !self.enabled(level) {
            return Event {
                log: self,
                line: None,
            };
        }
        let ts_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let mut line = String::with_capacity(128);
        let _ = write!(
            line,
            "{{\"ts_us\":{ts_us},\"level\":\"{}\",\"event\":\"{}\"",
            level.name(),
            escape_json(name)
        );
        Event {
            log: self,
            line: Some(line),
        }
    }

    /// Sugar for [`Self::event`] at [`Level::Debug`].
    pub fn debug<'a>(&'a self, name: &str) -> Event<'a> {
        self.event(Level::Debug, name)
    }

    /// Sugar for [`Self::event`] at [`Level::Info`].
    pub fn info<'a>(&'a self, name: &str) -> Event<'a> {
        self.event(Level::Info, name)
    }

    /// Sugar for [`Self::event`] at [`Level::Warn`].
    pub fn warn<'a>(&'a self, name: &str) -> Event<'a> {
        self.event(Level::Warn, name)
    }

    /// Sugar for [`Self::event`] at [`Level::Error`].
    pub fn error<'a>(&'a self, name: &str) -> Event<'a> {
        self.event(Level::Error, name)
    }

    fn write_line(&self, mut line: String) {
        let Some(writer) = &self.writer else { return };
        line.push('\n');
        let mut writer = writer.lock().expect("event log writer");
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.flush();
    }
}

/// An in-progress event line; add fields, then [`emit`](Event::emit).
#[derive(Debug)]
#[must_use = "an event writes nothing until emit() is called"]
pub struct Event<'a> {
    log: &'a EventLog,
    line: Option<String>,
}

impl Event<'_> {
    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        if let Some(line) = &mut self.line {
            let _ = write!(line, ",\"{}\":\"{}\"", escape_json(key), escape_json(value));
        }
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        if let Some(line) = &mut self.line {
            let _ = write!(line, ",\"{}\":{value}", escape_json(key));
        }
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, key: &str, value: i64) -> Self {
        if let Some(line) = &mut self.line {
            let _ = write!(line, ",\"{}\":{value}", escape_json(key));
        }
        self
    }

    /// Adds a float field (rendered with enough digits to round-trip).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        if let Some(line) = &mut self.line {
            if value.is_finite() {
                let _ = write!(line, ",\"{}\":{value}", escape_json(key));
            } else {
                // JSON has no Infinity/NaN; stringify rather than corrupt
                // the line.
                let _ = write!(line, ",\"{}\":\"{value}\"", escape_json(key));
            }
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        if let Some(line) = &mut self.line {
            let _ = write!(line, ",\"{}\":{value}", escape_json(key));
        }
        self
    }

    /// Closes the object and writes the line.
    pub fn emit(mut self) {
        if let Some(mut line) = self.line.take() {
            line.push('}');
            self.log.write_line(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A Write that appends into a shared buffer, for assertions.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn contents(buf: &SharedBuf) -> String {
        String::from_utf8(buf.0.lock().unwrap().clone()).unwrap()
    }

    #[test]
    fn events_are_one_json_object_per_line() {
        let buf = SharedBuf::default();
        let log = EventLog::to_writer(Box::new(buf.clone()), Level::Info);
        log.info("request")
            .str("op", "simulate")
            .u64("exec_us", 523)
            .bool("cached", false)
            .f64("rate", 1.5)
            .i64("delta", -2)
            .emit();
        let text = contents(&buf);
        assert_eq!(text.lines().count(), 1);
        let line = text.lines().next().unwrap();
        assert!(line.starts_with("{\"ts_us\":"), "{line}");
        assert!(line.contains("\"level\":\"info\""), "{line}");
        assert!(line.contains("\"event\":\"request\""), "{line}");
        assert!(line.contains("\"op\":\"simulate\""), "{line}");
        assert!(line.contains("\"exec_us\":523"), "{line}");
        assert!(line.contains("\"cached\":false"), "{line}");
        assert!(line.contains("\"rate\":1.5"), "{line}");
        assert!(line.contains("\"delta\":-2"), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }

    #[test]
    fn levels_below_the_floor_are_skipped_without_formatting() {
        let buf = SharedBuf::default();
        let log = EventLog::to_writer(Box::new(buf.clone()), Level::Warn);
        assert!(!log.enabled(Level::Info));
        log.info("chatty").str("x", "y").emit();
        log.warn("important").emit();
        let text = contents(&buf);
        assert!(!text.contains("chatty"));
        assert!(text.contains("important"));
    }

    #[test]
    fn disabled_log_writes_nothing_and_is_cheap() {
        let log = EventLog::disabled();
        assert!(!log.enabled(Level::Error));
        log.error("anything").u64("n", 1).emit(); // must not panic
    }

    #[test]
    fn strings_are_escaped() {
        let buf = SharedBuf::default();
        let log = EventLog::to_writer(Box::new(buf.clone()), Level::Info);
        log.info("weird")
            .str("msg", "a \"quoted\"\nline\twith\\slash")
            .emit();
        let line = contents(&buf);
        assert!(
            line.contains(r#""msg":"a \"quoted\"\nline\twith\\slash""#),
            "{line}"
        );
    }

    #[test]
    fn escape_json_is_pinned() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb"), "a\\nb");
        assert_eq!(escape_json("\u{0}"), "\\u0000");
    }
}
