//! A lock-free log-linear histogram with interpolated quantiles.
//!
//! Values (microseconds, byte counts, …) land in buckets laid out as
//! log₂ octaves each split into [`SUB`] equal linear sub-buckets: the
//! octave `[2^e, 2^(e+1))` is covered by 8 sub-buckets of width
//! `2^(e-3)`. Values below 8 get exact unit buckets. Relative bucket
//! width is therefore at most 12.5 % of the value — where a plain
//! power-of-two histogram answers quantiles with up-to-2× error from the
//! bucket's upper bound, this one answers within a few percent by
//! linearly interpolating the rank position inside the bucket.
//!
//! Recording is one relaxed `fetch_add` on the bucket plus count/sum/max
//! updates — no locks, safe from any number of threads. Quantile queries
//! take a best-effort snapshot of the counters; under concurrent writes
//! they are approximate in the same benign way any atomic histogram is.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave (2^3): the log-linear "linear" factor.
pub const SUB: usize = 8;
const SUB_BITS: u32 = 3;

/// Octaves covered: values clamp at `2^40 - 1` (≈ 12.7 days in µs).
const OCTAVES: u32 = 40;

/// Total bucket count: 8 exact unit buckets below 8, then 8 sub-buckets
/// for each of the octaves `[2^3, 2^40)`.
pub const BUCKETS: usize = SUB + (OCTAVES as usize - SUB_BITS as usize) * SUB;

/// The largest representable value; anything above clamps into the last
/// bucket (and is still reflected exactly in [`LogLinearHistogram::max`]).
pub const CLAMP_MAX: u64 = (1 << OCTAVES) - 1;

/// Maps a value to its bucket index.
fn bucket_index(value: u64) -> usize {
    let v = value.min(CLAMP_MAX);
    if v < SUB as u64 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // 2^e <= v < 2^(e+1), e >= 3
    let sub = ((v >> (e - SUB_BITS)) - SUB as u64) as usize;
    SUB + (e - SUB_BITS) as usize * SUB + sub
}

/// The `[lower, upper)` value range of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    if index < SUB {
        return (index as u64, index as u64 + 1);
    }
    let octave = (index - SUB) / SUB;
    let sub = (index - SUB) % SUB;
    let e = SUB_BITS + octave as u32;
    let width = 1u64 << (e - SUB_BITS);
    let lower = (1u64 << e) + sub as u64 * width;
    (lower, lower + width)
}

/// A fixed-size atomic log-linear histogram.
#[derive(Debug)]
pub struct LogLinearHistogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl LogLinearHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogLinearHistogram {
            counts: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (for means).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of recorded samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The quantile `q` (0..=1), linearly interpolated inside the bucket
    /// where the cumulative count crosses `q × total`: the rank is placed
    /// at its midpoint position within the bucket's samples, so a single
    /// sample reports its bucket midpoint and uniform data reports
    /// near-exact quantiles. Returns 0 with no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if cumulative + count >= rank {
                let (lower, upper) = bucket_bounds(i);
                let position = (rank - cumulative) as f64 - 0.5;
                let width = (upper - lower) as f64;
                return lower + (width * position / count as f64).floor().max(0.0) as u64;
            }
            cumulative += count;
        }
        self.max() // unreachable unless counters raced; max is a safe answer
    }
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        LogLinearHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_pinned() {
        // Unit buckets below 8.
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
        }
        // First octave [8,16): still width-1 buckets, contiguous indices.
        assert_eq!(bucket_index(8), 8);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_bounds(15), (15, 16));
        // [16,32): width-2 sub-buckets.
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(17), 16);
        assert_eq!(bucket_index(18), 17);
        assert_eq!(bucket_bounds(16), (16, 18));
        // [256,512): width-32 sub-buckets; 500 lands in [480,512).
        assert_eq!(bucket_bounds(bucket_index(500)), (480, 512));
        // [1024,2048): width-128.
        assert_eq!(bucket_bounds(bucket_index(1024)), (1024, 1152));
        assert_eq!(bucket_bounds(bucket_index(2047)), (1920, 2048));
        // The top bucket holds the clamp value.
        assert_eq!(bucket_index(CLAMP_MAX), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let (lower, upper) = bucket_bounds(BUCKETS - 1);
        assert!(lower <= CLAMP_MAX && CLAMP_MAX < upper);
    }

    #[test]
    fn buckets_partition_contiguously() {
        // Every bucket's upper bound is the next bucket's lower bound.
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_bounds(i).1, bucket_bounds(i + 1).0, "bucket {i}");
        }
    }

    #[test]
    fn relative_width_is_bounded() {
        for i in SUB..BUCKETS {
            let (lower, upper) = bucket_bounds(i);
            assert!(
                (upper - lower) as f64 / lower as f64 <= 0.125 + 1e-9,
                "bucket {i}: [{lower},{upper})"
            );
        }
    }

    #[test]
    fn interpolated_quantiles_of_uniform_data_are_near_exact() {
        let hist = LogLinearHistogram::new();
        for v in 1..=1000u64 {
            hist.record(v);
        }
        assert_eq!(hist.count(), 1000);
        assert_eq!(hist.max(), 1000);
        assert!((hist.mean() - 500.5).abs() < 1e-9);
        for (q, exact) in [(0.10, 100.0), (0.50, 500.0), (0.90, 900.0), (0.99, 990.0)] {
            let estimate = hist.quantile(q) as f64;
            let error = (estimate - exact).abs() / exact;
            assert!(
                error < 0.02,
                "q={q}: estimate {estimate} vs exact {exact} ({:.1}% off)",
                error * 100.0
            );
        }
    }

    #[test]
    fn single_sample_reports_its_bucket_midpoint() {
        let hist = LogLinearHistogram::new();
        hist.record(500); // bucket [480, 512)
        let p50 = hist.quantile(0.5);
        assert!((480..512).contains(&p50), "p50 {p50}");
        assert_eq!(hist.max(), 500);
    }

    #[test]
    fn power_of_two_error_is_actually_fixed() {
        // The regression this histogram exists for: 8000 µs under the old
        // log₂ scheme reported p50 = 16384 (the upper bound, 2.05× off);
        // here it must land within 12.5 % of the truth.
        let hist = LogLinearHistogram::new();
        hist.record(8_000);
        let p50 = hist.quantile(0.5) as f64;
        assert!(
            (p50 - 8_000.0).abs() / 8_000.0 <= 0.125,
            "p50 {p50} is more than 12.5% from 8000"
        );
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let hist = LogLinearHistogram::new();
        assert_eq!(hist.quantile(0.5), 0);
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.max(), 0);
        assert_eq!(hist.mean(), 0.0);
    }

    #[test]
    fn zero_and_huge_values_clamp_without_panicking() {
        let hist = LogLinearHistogram::new();
        hist.record(0);
        hist.record(u64::MAX);
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.max(), u64::MAX);
        assert_eq!(hist.quantile(0.0), 0);
        assert!(hist.quantile(1.0) >= CLAMP_MAX / 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let hist = std::sync::Arc::new(LogLinearHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let hist = std::sync::Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        hist.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(hist.count(), 4000);
        assert_eq!(hist.max(), 3999);
    }
}
