//! # wsn-obs
//!
//! Structured observability for the serving and campaign layers, std-only
//! and dependency-free so every crate in the workspace can afford it:
//!
//! * [`log`] — a leveled JSONL event log: one self-describing JSON object
//!   per line, written atomically under a single writer lock, with a
//!   zero-cost disabled mode (no formatting happens when no writer is
//!   attached).
//! * [`trace`] — per-request trace ids: 64-bit, rendered as 16 hex chars,
//!   generated lock-free from a splitmix64 sequence so ids are unique
//!   within a process and well-mixed across shards/threads.
//! * [`metrics`] — a registry of named [`Counter`](metrics::Counter)s,
//!   [`Gauge`](metrics::Gauge)s, and histograms, every one a relaxed
//!   atomic — recording never takes a lock.
//! * [`hist`] — the [`LogLinearHistogram`](hist::LogLinearHistogram):
//!   log₂ octaves split into 8 linear sub-buckets with interpolated
//!   quantiles, bounding relative quantile error at ~12.5 % where a plain
//!   power-of-two histogram is off by up to 2×.
//! * [`span`] — RAII timers that record their elapsed microseconds into a
//!   histogram when dropped (or explicitly finished).
//!
//! The crate deliberately has **no dependencies**: JSON strings are
//! escaped by hand (`log::escape_json`), timestamps come from
//! `SystemTime`, and everything else is atomics. That keeps it usable
//! from the innermost simulation crates without dragging serde into them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod log;
pub mod metrics;
pub mod span;
pub mod trace;

pub use hist::LogLinearHistogram;
pub use log::{EventLog, Level};
pub use metrics::{Counter, Gauge, Registry};
pub use span::Span;
pub use trace::{TraceId, TraceIdGen};
