//! Named metric handles — counters, gauges, histograms — and the
//! [`Registry`] that owns their names.
//!
//! Recording is always a relaxed atomic operation on a pre-registered
//! handle; the registry lock is taken only at registration and snapshot
//! time, never on the hot path. Handles are `Arc`s, so a metric outlives
//! the registry that named it and can be stashed in whatever struct does
//! the recording.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::LogLinearHistogram;
use crate::log::escape_json;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, high-water marks, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is below it (high-water marks).
    pub fn update_max(&self, value: i64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LogLinearHistogram>),
}

/// A name→metric table; the single place observability surfaces (debug
/// dumps, the serve `stats` op) enumerate what exists.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lookup(&self, name: &str) -> Option<Metric> {
        self.entries
            .lock()
            .expect("metrics registry")
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| m.clone())
    }

    fn register(&self, name: &str, metric: Metric) {
        self.entries
            .lock()
            .expect("metrics registry")
            .push((name.to_string(), metric));
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.lookup(name) {
            Some(Metric::Counter(c)) => c,
            Some(_) => panic!("metric '{name}' is registered with a different kind"),
            None => {
                let c = Arc::new(Counter::new());
                self.register(name, Metric::Counter(Arc::clone(&c)));
                c
            }
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.lookup(name) {
            Some(Metric::Gauge(g)) => g,
            Some(_) => panic!("metric '{name}' is registered with a different kind"),
            None => {
                let g = Arc::new(Gauge::new());
                self.register(name, Metric::Gauge(Arc::clone(&g)));
                g
            }
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<LogLinearHistogram> {
        match self.lookup(name) {
            Some(Metric::Histogram(h)) => h,
            Some(_) => panic!("metric '{name}' is registered with a different kind"),
            None => {
                let h = Arc::new(LogLinearHistogram::new());
                self.register(name, Metric::Histogram(Arc::clone(&h)));
                h
            }
        }
    }

    /// Renders every metric as one JSON object, names sorted, histograms
    /// summarized as `{count, p50, p99, max}`.
    pub fn to_json(&self) -> String {
        let mut entries: Vec<(String, Metric)> =
            self.entries.lock().expect("metrics registry").clone();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("{");
        for (i, (name, metric)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape_json(name));
            out.push_str("\":");
            match metric {
                Metric::Counter(c) => out.push_str(&c.get().to_string()),
                Metric::Gauge(g) => out.push_str(&g.get().to_string()),
                Metric::Histogram(h) => out.push_str(&format!(
                    "{{\"count\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                    h.count(),
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.max()
                )),
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let reg = Registry::new();
        let c = reg.counter("requests");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = reg.gauge("queue_depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.update_max(10);
        assert_eq!(g.get(), 10);
        g.update_max(3);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn registry_returns_the_same_handle_for_a_name() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn json_rendering_is_sorted_and_valid() {
        let reg = Registry::new();
        reg.counter("b.count").add(2);
        reg.gauge("a.depth").set(-3);
        reg.histogram("c.lat_us").record(100);
        let json = reg.to_json();
        assert_eq!(
            json,
            "{\"a.depth\":-3,\"b.count\":2,\"c.lat_us\":{\"count\":1,\"p50\":100,\"p99\":100,\"max\":100}}"
        );
    }
}
