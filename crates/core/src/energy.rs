//! The empirical energy model (Eq. 2) and the energy-optimal parameter
//! rules of Sec. IV.
//!
//! ```text
//! U_eng = Etx · (l0 + lD) / (lD · (1 − PER))        [J per information bit]
//! ```
//!
//! `Etx` is the CC2420 per-bit transmit energy at the chosen PA level
//! (datasheet), `l0` the 19-byte stack overhead, and `PER` the Eq. 3
//! surface. `1/(1 − PER)` is the expected number of transmissions until
//! success, so the model charges retransmissions to the delivered bits.

use serde::{Deserialize, Serialize};

use wsn_params::frame::STACK_OVERHEAD_BYTES;
use wsn_params::types::{Distance, MaxTries, PacketInterval, PayloadSize, PowerLevel, RetryDelay};
use wsn_radio::cc2420;
use wsn_radio::pathloss::PathLoss;

use crate::constants::PaperConstants;
use crate::service_time::ServiceTimeModel;
use crate::surface::ExpSurface;

/// The empirical per-information-bit energy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Eq. 3 PER surface.
    pub per: ExpSurface,
}

impl EnergyModel {
    /// The model with the paper's published PER constants.
    pub fn paper() -> Self {
        EnergyModel {
            per: PaperConstants::published().per,
        }
    }

    /// `U_eng` in joules per information bit (Eq. 2).
    ///
    /// Returns `f64::INFINITY` when the PER saturates at 1 (no information
    /// ever gets through).
    pub fn u_eng_j_per_bit(&self, snr_db: f64, payload: PayloadSize, power: PowerLevel) -> f64 {
        let per = self.per.eval_prob(payload, snr_db);
        if per >= 1.0 {
            return f64::INFINITY;
        }
        let etx = cc2420::tx_energy_per_bit_j(power);
        let l0 = STACK_OVERHEAD_BYTES as f64;
        let ld = payload.bytes() as f64;
        etx * (l0 + ld) / (ld * (1.0 - per))
    }

    /// `U_eng` in µJ per information bit.
    pub fn u_eng_uj_per_bit(&self, snr_db: f64, payload: PayloadSize, power: PowerLevel) -> f64 {
        self.u_eng_j_per_bit(snr_db, payload, power) * 1e6
    }

    /// Energy efficiency `Ueff = 1 / U_eng`, information bits per joule.
    pub fn efficiency_bits_per_j(
        &self,
        snr_db: f64,
        payload: PayloadSize,
        power: PowerLevel,
    ) -> f64 {
        let u = self.u_eng_j_per_bit(snr_db, payload, power);
        if u.is_finite() && u > 0.0 {
            1.0 / u
        } else {
            0.0
        }
    }

    /// The energy-optimal payload size at a given SNR and power: integer
    /// argmin of `U_eng` over 1..=114 bytes (Sec. IV-B / Fig. 9).
    pub fn optimal_payload(&self, snr_db: f64, power: PowerLevel) -> PayloadSize {
        let mut best = PayloadSize::new(1).expect("1 byte is valid");
        let mut best_u = f64::INFINITY;
        for bytes in 1..=114u16 {
            let payload = PayloadSize::new(bytes).expect("1..=114 is valid");
            let u = self.u_eng_j_per_bit(snr_db, payload, power);
            if u < best_u {
                best_u = u;
                best = payload;
            }
        }
        best
    }

    /// The energy-optimal PA level at a given distance for a payload:
    /// integer argmin of `U_eng` over the candidate levels, with the SNR of
    /// each level predicted by the path-loss model against `noise_dbm`
    /// (Sec. IV-A / Fig. 7).
    pub fn optimal_power(
        &self,
        pathloss: &PathLoss,
        distance: Distance,
        noise_dbm: f64,
        payload: PayloadSize,
        candidates: &[PowerLevel],
    ) -> Option<PowerLevel> {
        candidates.iter().copied().min_by(|&a, &b| {
            let ua = self.u_eng_j_per_bit(pathloss.mean_snr_db(a, distance, noise_dbm), payload, a);
            let ub = self.u_eng_j_per_bit(pathloss.mean_snr_db(b, distance, noise_dbm), payload, b);
            ua.partial_cmp(&ub).expect("U_eng values are comparable")
        })
    }

    /// Whole-radio energy per information bit, µJ/bit: Eq. 2's transmit
    /// cost **plus** the listen cost of the CSMA/ACK phases and the idle
    /// cost of the rest of the packet interval.
    ///
    /// Eq. 2 deliberately counts only frame transmissions, which is the
    /// right lens for comparing payloads and power levels; this variant is
    /// the sender's *battery* view, where the always-on radio's listening
    /// dominates at long `Tpkt` — the observation that motivates the LPL
    /// extension ([`crate::lpl`]).
    pub fn total_uj_per_bit(
        &self,
        snr_db: f64,
        payload: PayloadSize,
        power: PowerLevel,
        max_tries: MaxTries,
        retry_delay: RetryDelay,
        interval: PacketInterval,
    ) -> f64 {
        let service = ServiceTimeModel::paper();
        let attempts = service.expected_attempts(snr_db, payload, max_tries);
        let frame_s = wsn_mac::timing::frame_time(payload).as_secs_f64();
        let tx_j = attempts * frame_s * cc2420::tx_power_w(power);

        // Listen time during service: everything except the frames and the
        // idle retry gaps.
        let t_service = service.expected_service_time_s(snr_db, payload, max_tries, retry_delay);
        let spi_s = service.t_spi_s(payload);
        let retry_idle_s = (attempts - 1.0) * retry_delay.as_secs_f64();
        let listen_s = (t_service - spi_s - retry_idle_s - attempts * frame_s).max(0.0);
        let listen_j = listen_s * cc2420::rx_power_w();

        // Idle for the rest of the interval (if the interval is longer
        // than the service time).
        let idle_s = (interval.as_secs_f64() - t_service).max(0.0) + spi_s + retry_idle_s;
        let idle_j = idle_s * cc2420::idle_power_w();

        let delivered_prob = 1.0
            - self
                .per
                .eval_prob(payload, snr_db)
                .powi(max_tries.get() as i32);
        if delivered_prob <= 0.0 {
            return f64::INFINITY;
        }
        (tx_j + listen_j + idle_j) * 1e6 / (payload.bits() as f64 * delivered_prob)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(b: u16) -> PayloadSize {
        PayloadSize::new(b).unwrap()
    }
    fn pw(l: u8) -> PowerLevel {
        PowerLevel::new(l).unwrap()
    }

    fn levels() -> Vec<PowerLevel> {
        [3u8, 7, 11, 15, 19, 23, 27, 31]
            .iter()
            .map(|&l| pw(l))
            .collect()
    }

    #[test]
    fn matches_hand_computed_eq2() {
        let m = EnergyModel::paper();
        let per = 0.0128 * 114.0 * (-0.15f64 * 17.0).exp();
        let etx = cc2420::tx_energy_per_bit_j(pw(31));
        let expected = etx * 133.0 / (114.0 * (1.0 - per));
        assert!((m.u_eng_j_per_bit(17.0, pl(114), pw(31)) - expected).abs() < 1e-15);
    }

    #[test]
    fn infinite_when_per_saturates() {
        let m = EnergyModel::paper();
        assert!(m.u_eng_j_per_bit(-40.0, pl(114), pw(31)).is_infinite());
        assert_eq!(m.efficiency_bits_per_j(-40.0, pl(114), pw(31)), 0.0);
    }

    #[test]
    fn paper_finding_max_payload_is_optimal_above_17db() {
        // Sec. IV-B: "when SNR is at 17 dB, the maximum lD of 114 bytes
        // provides the best energy efficiency".
        let m = EnergyModel::paper();
        for snr in [17.0, 19.0, 25.0, 30.0] {
            assert_eq!(m.optimal_payload(snr, pw(31)).bytes(), 114, "snr={snr}");
        }
    }

    #[test]
    fn paper_finding_small_payload_optimal_deep_in_grey_zone() {
        // Sec. IV-B / Fig. 9: optimal lD falls to ~40 bytes at 5 dB
        // (the paper quotes "less than 40"; the published constants give
        // an argmin within a couple of bytes of that).
        let m = EnergyModel::paper();
        let best = m.optimal_payload(5.0, pw(31));
        assert!(best.bytes() <= 45, "optimal={}", best.bytes());
        // And it shrinks monotonically as the link degrades.
        let at10 = m.optimal_payload(10.0, pw(31)).bytes();
        let at7 = m.optimal_payload(7.0, pw(31)).bytes();
        let at5 = m.optimal_payload(5.0, pw(31)).bytes();
        assert!(at10 >= at7 && at7 >= at5);
    }

    #[test]
    fn paper_finding_large_payload_needs_higher_power_at_35m() {
        // Fig. 7: at 35 m the energy-optimal power is higher for lD=110
        // than for small payloads.
        let m = EnergyModel::paper();
        let pathloss = PathLoss::paper_hallway();
        let d = Distance::from_meters(35.0).unwrap();
        let best_small = m
            .optimal_power(&pathloss, d, -95.0, pl(20), &levels())
            .unwrap();
        let best_large = m
            .optimal_power(&pathloss, d, -95.0, pl(110), &levels())
            .unwrap();
        assert!(
            best_large.level() >= best_small.level(),
            "small→{} large→{}",
            best_small.level(),
            best_large.level()
        );
        // And the large-payload optimum is an interior level, not max power.
        assert!(best_large.level() < 31);
    }

    #[test]
    fn u_eng_decreasing_in_snr() {
        let m = EnergyModel::paper();
        let u_low = m.u_eng_j_per_bit(8.0, pl(110), pw(23));
        let u_high = m.u_eng_j_per_bit(20.0, pl(110), pw(23));
        assert!(u_low > u_high);
    }

    #[test]
    fn optimal_power_empty_candidates_is_none() {
        let m = EnergyModel::paper();
        let pathloss = PathLoss::paper_hallway();
        let d = Distance::from_meters(20.0).unwrap();
        assert!(m.optimal_power(&pathloss, d, -95.0, pl(50), &[]).is_none());
    }

    #[test]
    fn total_energy_exceeds_tx_only_and_grows_with_interval() {
        let m = EnergyModel::paper();
        let tries = MaxTries::new(3).unwrap();
        let tx_only = m.u_eng_uj_per_bit(20.0, pl(110), pw(31));
        let total_fast = m.total_uj_per_bit(
            20.0,
            pl(110),
            pw(31),
            tries,
            RetryDelay::ZERO,
            PacketInterval::from_millis(30).unwrap(),
        );
        let total_slow = m.total_uj_per_bit(
            20.0,
            pl(110),
            pw(31),
            tries,
            RetryDelay::ZERO,
            PacketInterval::from_millis(500).unwrap(),
        );
        assert!(total_fast > tx_only, "{total_fast} !> {tx_only}");
        // Longer intervals burn more idle energy per delivered bit.
        assert!(total_slow > total_fast);
    }

    #[test]
    fn total_energy_infinite_on_dead_link() {
        let m = EnergyModel::paper();
        let u = m.total_uj_per_bit(
            -40.0,
            pl(114),
            pw(31),
            MaxTries::ONE,
            RetryDelay::ZERO,
            PacketInterval::from_millis(100).unwrap(),
        );
        assert!(u.is_infinite());
    }

    #[test]
    fn uj_conversion() {
        let m = EnergyModel::paper();
        let j = m.u_eng_j_per_bit(20.0, pl(114), pw(31));
        assert!((m.u_eng_uj_per_bit(20.0, pl(114), pw(31)) - j * 1e6).abs() < 1e-18);
        // Sanity: best-case energies live around 0.2-0.3 µJ/bit (Table IV).
        assert!(j * 1e6 > 0.15 && j * 1e6 < 0.4, "u={}", j * 1e6);
    }
}
