//! The fitted constants the paper publishes (summarised in its Table III).

use serde::{Deserialize, Serialize};

use crate::surface::ExpSurface;

/// The paper's three fitted exponential surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperConstants {
    /// Eq. 3 — packet error rate: α = 0.0128, β = −0.15.
    pub per: ExpSurface,
    /// Eq. 7 — mean transmissions minus one: α = 0.02, β = −0.18.
    pub ntries: ExpSurface,
    /// Eq. 8 — per-attempt loss base of the radio loss rate:
    /// α = 0.011, β = −0.145.
    pub plr_radio: ExpSurface,
}

impl PaperConstants {
    /// The constants exactly as published.
    pub fn published() -> Self {
        PaperConstants {
            per: ExpSurface::new(0.0128, -0.15),
            ntries: ExpSurface::new(0.02, -0.18),
            plr_radio: ExpSurface::new(0.011, -0.145),
        }
    }
}

impl Default for PaperConstants {
    fn default() -> Self {
        PaperConstants::published()
    }
}

/// SNR threshold below which the paper calls the link the "grey zone", dB.
pub const GREY_ZONE_MAX_SNR_DB: f64 = 12.0;

/// SNR at and above which payload size stops mattering for PER
/// ("low-impact zone"), dB.
pub const LOW_IMPACT_MIN_SNR_DB: f64 = 19.0;

/// The paper's observed low-SNR boundary of its measurements, dB.
pub const MEASURED_MIN_SNR_DB: f64 = 5.0;

/// SNR above which the maximum payload is energy-optimal according to the
/// empirical energy model (Sec. IV-B), dB.
pub const ENERGY_MAX_PAYLOAD_SNR_DB: f64 = 17.0;

/// SNR above which the maximum payload is goodput-optimal (Sec. VIII-A), dB.
pub const GOODPUT_MAX_PAYLOAD_SNR_DB: f64 = 9.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_constants_match_the_paper() {
        let c = PaperConstants::published();
        assert_eq!(c.per.alpha, 0.0128);
        assert_eq!(c.per.beta, -0.15);
        assert_eq!(c.ntries.alpha, 0.02);
        assert_eq!(c.ntries.beta, -0.18);
        assert_eq!(c.plr_radio.alpha, 0.011);
        assert_eq!(c.plr_radio.beta, -0.145);
    }

    #[test]
    fn zone_thresholds_are_ordered() {
        let thresholds = [
            MEASURED_MIN_SNR_DB,
            GREY_ZONE_MAX_SNR_DB,
            ENERGY_MAX_PAYLOAD_SNR_DB,
            LOW_IMPACT_MIN_SNR_DB,
        ];
        assert!(thresholds.windows(2).all(|w| w[0] < w[1]), "{thresholds:?}");
    }
}
