//! # wsn-models
//!
//! The primary contribution of *"Experimental Study for Multi-layer
//! Parameter Configuration of WSN Links"* (Fu et al., ICDCS 2015), as a
//! library: the empirical performance models, the SNR zone structure, the
//! per-metric tuning guidelines, and the joint multi-objective parameter
//! optimizer.
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Eq. 2 energy model `E` | [`energy`] |
//! | Eq. 3 PER surface | [`surface`] + [`constants`] |
//! | Eq. 4 max-goodput model `G` | [`goodput`] |
//! | Eqs. 5–7 service-time model `D` | [`service_time`] |
//! | Eq. 8 radio loss model `L` | [`loss`] |
//! | Eq. 9 utilization ρ | [`service_time`] |
//! | Fig. 6(d) joint-effect zones | [`zones`] |
//! | Model fitting (Figs. 11–12) | [`fit`] |
//! | Guidelines (Secs. IV-C…VII-B) | [`guidelines`] |
//! | MOP / epsilon-constraint (Sec. VIII-B) | [`optimize`] + [`predict`] |
//! | Single-parameter baselines (Table IV) | [`baselines`] |
//!
//! ## Example: the paper's joint-tuning headline
//!
//! ```
//! use wsn_models::prelude::*;
//! use wsn_params::prelude::*;
//!
//! // The case-study link: a shadowed 35 m link (6 dB SNR at max power).
//! let mut predictor = Predictor::paper();
//! predictor.budget = LinkBudget::case_study();
//!
//! // The starting operating point (Ptx = 23, lD = 114, no retx) …
//! let base = StackConfig::builder()
//!     .distance_m(35.0)
//!     .power_level(23)
//!     .payload_bytes(114)
//!     .max_tries(1)
//!     .build()?;
//! let before = predictor.evaluate(&base);
//!
//! // … and the joint multi-parameter optimum over the measured grid:
//! let grid = ParamGrid {
//!     distances_m: vec![35.0],
//!     ..ParamGrid::paper()
//! };
//! let optimizer = Optimizer { predictor };
//! let joint = optimizer.joint_energy_goodput(&grid, 1.2).unwrap();
//! // Joint tuning dominates: more goodput at less energy per bit.
//! assert!(joint.predicted.max_goodput_bps > before.max_goodput_bps);
//! assert!(joint.predicted.u_eng_uj_per_bit < before.u_eng_uj_per_bit);
//! # Ok::<(), wsn_params::error::InvalidParam>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod baselines;
pub mod battery;
pub mod constants;
pub mod energy;
pub mod explore;
pub mod fit;
pub mod goodput;
pub mod guidelines;
pub mod loss;
pub mod lpl;
pub mod optimize;
pub mod predict;
pub mod queueing;
pub mod sensitivity;
pub mod service_time;
pub mod surface;
pub mod zones;

/// Convenient glob-import of the models and the optimizer.
pub mod prelude {
    pub use crate::adapt::{AdaptiveTuner, SnrEstimator, TuneObjective};
    pub use crate::baselines::Baseline;
    pub use crate::battery::{Battery, LifetimeEstimate};
    pub use crate::constants::PaperConstants;
    pub use crate::energy::EnergyModel;
    pub use crate::explore::{explore_grid, ExploreOutcome};
    pub use crate::fit::{fit_exp_surface, linear_fit, SurfaceFit, SurfacePoint};
    pub use crate::goodput::GoodputModel;
    pub use crate::guidelines::{EnergyAdvice, Guidelines, LossAdvice};
    pub use crate::loss::{mm1k_blocking, LossEstimate, LossModel, RadioLossModel};
    pub use crate::lpl::{LplConfig, LplModel, LplPowerBudget};
    pub use crate::optimize::{
        dominates, knee_of_front, pareto_front_indices, Evaluation, Metric, Optimizer,
    };
    pub use crate::predict::{LinkBudget, Predicted, Predictor};
    pub use crate::queueing::{
        finite_queue_outcome, gg1_waiting_time_s, pk_waiting_time_s, QueueOutcome, ServiceMoments,
    };
    pub use crate::sensitivity::{tornado, Knob, KnobSensitivity};
    pub use crate::service_time::{attempt_count_pmf, ServiceTimeModel};
    pub use crate::surface::ExpSurface;
    pub use crate::zones::Zone;
}
