//! Single-parameter tuning baselines from the literature, as compared in
//! the paper's Fig. 1 / Table IV.
//!
//! The paper contrasts its joint multi-parameter optimization against three
//! representative single-knob guidelines:
//!
//! * **\[11\] Tuning output power** — raise `Ptx` to reduce loss and thus
//!   lift throughput (Son et al. style power tuning).
//! * **\[6\] Tuning retransmissions** — allow (more) retransmissions to
//!   maximize throughput.
//! * **\[1\] Tuning payload size** — pick a small payload under bad links /
//!   the maximum payload under good links.
//!
//! Each baseline takes the *current* operating point and changes exactly
//! one parameter, exactly as the comparison in Sec. VIII-C does.

use serde::{Deserialize, Serialize};

use wsn_params::config::StackConfig;
use wsn_params::types::{MaxTries, PayloadSize, PowerLevel};

/// A named single-parameter tuning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Baseline {
    /// \[11\]: set the output power to the maximum PA level (31).
    TunePower,
    /// \[6\]: enable retransmissions (raise `NmaxTries`), here to 8.
    TuneRetransmissions,
    /// \[1\]: use the minimum grid payload (5 bytes) — the "high
    /// interference" branch of the payload guideline.
    TunePayloadMin,
    /// \[1\]: use the maximum payload (114 bytes) — the "good link" branch.
    TunePayloadMax,
}

impl Baseline {
    /// All four baselines in the paper's Table IV order.
    pub fn all() -> [Baseline; 4] {
        [
            Baseline::TunePower,
            Baseline::TuneRetransmissions,
            Baseline::TunePayloadMin,
            Baseline::TunePayloadMax,
        ]
    }

    /// The literature citation label used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Baseline::TunePower => "[11]-Tuning power",
            Baseline::TuneRetransmissions => "[6]-Tuning retx times",
            Baseline::TunePayloadMin => "[1]-Minimal lD",
            Baseline::TunePayloadMax => "[1]-Maximum lD",
        }
    }

    /// Applies the single-parameter change to `base`, leaving every other
    /// parameter untouched.
    pub fn apply(self, base: &StackConfig) -> StackConfig {
        let mut cfg = *base;
        match self {
            Baseline::TunePower => {
                cfg.power = PowerLevel::MAX;
            }
            Baseline::TuneRetransmissions => {
                cfg.max_tries = MaxTries::new(8).expect("8 tries is valid");
            }
            Baseline::TunePayloadMin => {
                cfg.payload = PayloadSize::new(5).expect("5 bytes is valid");
            }
            Baseline::TunePayloadMax => {
                cfg.payload = PayloadSize::MAX;
            }
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> StackConfig {
        // The paper's case-study starting point: 35 m, Ptx = 23, lD = 114,
        // one transmission.
        StackConfig::builder()
            .distance_m(35.0)
            .power_level(23)
            .payload_bytes(114)
            .max_tries(1)
            .retry_delay_ms(0)
            .queue_cap(30)
            .packet_interval_ms(30)
            .build()
            .unwrap()
    }

    #[test]
    fn each_baseline_changes_exactly_one_parameter() {
        let b = base();
        let power = Baseline::TunePower.apply(&b);
        assert_eq!(power.power.level(), 31);
        assert_eq!(power.payload, b.payload);
        assert_eq!(power.max_tries, b.max_tries);

        let retx = Baseline::TuneRetransmissions.apply(&b);
        assert_eq!(retx.max_tries.get(), 8);
        assert_eq!(retx.power, b.power);

        let min_ld = Baseline::TunePayloadMin.apply(&b);
        assert_eq!(min_ld.payload.bytes(), 5);
        assert_eq!(min_ld.power, b.power);

        let max_ld = Baseline::TunePayloadMax.apply(&b);
        assert_eq!(max_ld.payload.bytes(), 114);
    }

    #[test]
    fn labels_match_table_iv() {
        assert!(Baseline::TunePower.label().contains("[11]"));
        assert!(Baseline::TuneRetransmissions.label().contains("[6]"));
        assert!(Baseline::TunePayloadMin.label().contains("[1]"));
        assert_eq!(Baseline::all().len(), 4);
    }
}
