//! Packet-loss models (Sec. VII): the radio loss rate of Eq. 8 and an
//! analytic queue-loss estimator used to reason about the
//! retransmission–queue trade-off.

use serde::{Deserialize, Serialize};

use wsn_params::config::StackConfig;
use wsn_params::types::{MaxTries, PayloadSize, QueueCap};

use crate::constants::PaperConstants;
use crate::service_time::ServiceTimeModel;
use crate::surface::ExpSurface;

/// The empirical radio loss model (Eq. 8):
/// `PLR_radio = (α · lD · exp(β · SNR))^NmaxTries` with α = 0.011,
/// β = −0.145.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioLossModel {
    /// The per-attempt loss surface (the base of the power).
    pub attempt_loss: ExpSurface,
}

impl RadioLossModel {
    /// The model with the paper's published constants.
    pub fn paper() -> Self {
        RadioLossModel {
            attempt_loss: PaperConstants::published().plr_radio,
        }
    }

    /// Radio loss probability after up to `max_tries` transmissions.
    ///
    /// ```
    /// use wsn_models::loss::RadioLossModel;
    /// use wsn_params::types::{MaxTries, PayloadSize};
    ///
    /// let m = RadioLossModel::paper();
    /// let one = m.rate(8.0, PayloadSize::new(110)?, MaxTries::new(1)?);
    /// let three = m.rate(8.0, PayloadSize::new(110)?, MaxTries::new(3)?);
    /// assert!((three - one.powi(3)).abs() < 1e-12); // retx compounds
    /// # Ok::<(), wsn_params::error::InvalidParam>(())
    /// ```
    pub fn rate(&self, snr_db: f64, payload: PayloadSize, max_tries: MaxTries) -> f64 {
        self.attempt_loss
            .eval_prob(payload, snr_db)
            .powi(max_tries.get() as i32)
    }
}

impl Default for RadioLossModel {
    fn default() -> Self {
        RadioLossModel::paper()
    }
}

/// M/M/1/K blocking probability: the fraction of arrivals that find the
/// K-slot system full, used as the analytic `PLR_queue` estimator.
///
/// Valid for any `rho > 0`, including overload (`rho > 1`), where it tends
/// to `1 − 1/ρ`.
///
/// # Panics
///
/// Panics if `rho` is negative/non-finite or `k == 0`.
pub fn mm1k_blocking(rho: f64, k: usize) -> f64 {
    assert!(
        rho.is_finite() && rho >= 0.0,
        "rho must be finite and >= 0, got {rho}"
    );
    assert!(k >= 1, "system must have at least one slot");
    if rho == 0.0 {
        return 0.0;
    }
    if (rho - 1.0).abs() < 1e-9 {
        return 1.0 / (k as f64 + 1.0);
    }
    let rk = rho.powi(k as i32);
    (1.0 - rho) * rk / (1.0 - rho * rk)
}

/// Analytic loss decomposition for one configuration at one link quality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossEstimate {
    /// Predicted radio loss (Eq. 8).
    pub plr_radio: f64,
    /// Predicted queue-overflow loss (M/M/1/K with Eq. 9's ρ).
    pub plr_queue: f64,
    /// The utilization used for the queue estimate.
    pub rho: f64,
}

impl LossEstimate {
    /// Total predicted loss; queue loss happens first, radio loss applies
    /// to admitted packets.
    pub fn total(&self) -> f64 {
        self.plr_queue + (1.0 - self.plr_queue) * self.plr_radio
    }
}

/// The combined loss model: Eq. 8 for radio loss + queueing analysis for
/// buffer overflow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossModel {
    /// Radio loss part.
    pub radio: RadioLossModel,
    /// Service-time model driving the utilization.
    pub service: ServiceTimeModel,
}

impl LossModel {
    /// The model with the paper's published constants.
    pub fn paper() -> Self {
        LossModel {
            radio: RadioLossModel::paper(),
            service: ServiceTimeModel::paper(),
        }
    }

    /// Predicts the loss decomposition of `config` at `snr_db`.
    pub fn estimate(&self, snr_db: f64, config: &StackConfig) -> LossEstimate {
        let rho = self.service.utilization(snr_db, config);
        let plr_queue = mm1k_blocking(rho, config.queue_cap.get() as usize);
        let plr_radio = self.radio.rate(snr_db, config.payload, config.max_tries);
        LossEstimate {
            plr_radio,
            plr_queue,
            rho,
        }
    }

    /// Sec. VII-B guideline: the largest `NmaxTries` (searched up to
    /// `limit`) that minimises radio loss while keeping the system
    /// utilization below 1. Returns `None` when even a single attempt
    /// overloads the link.
    pub fn max_tries_within_capacity(
        &self,
        snr_db: f64,
        config: &StackConfig,
        limit: u8,
    ) -> Option<MaxTries> {
        let mut best = None;
        for n in 1..=limit.max(1) {
            let tries = MaxTries::new(n).expect("n >= 1");
            let mut candidate = *config;
            candidate.max_tries = tries;
            if self.service.utilization(snr_db, &candidate) < 1.0 {
                best = Some(tries);
            } else {
                break; // utilization is monotone in NmaxTries
            }
        }
        best
    }

    /// Sec. VII-B guideline: the smallest queue capacity (searched up to
    /// `limit`) whose predicted overflow loss is below `target`; `None`
    /// when even the largest queue cannot reach it (ρ ≥ 1 sustained).
    pub fn min_queue_for_loss(
        &self,
        snr_db: f64,
        config: &StackConfig,
        target: f64,
        limit: u16,
    ) -> Option<QueueCap> {
        let rho = self.service.utilization(snr_db, config);
        (1..=limit.max(1))
            .map(|k| QueueCap::new(k).expect("k >= 1"))
            .find(|cap| mm1k_blocking(rho, cap.get() as usize) <= target)
    }
}

impl Default for LossModel {
    fn default() -> Self {
        LossModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(b: u16) -> PayloadSize {
        PayloadSize::new(b).unwrap()
    }
    fn mt(n: u8) -> MaxTries {
        MaxTries::new(n).unwrap()
    }

    fn grey_zone_config() -> StackConfig {
        StackConfig::builder()
            .payload_bytes(110)
            .packet_interval_ms(30)
            .max_tries(3)
            .retry_delay_ms(30)
            .queue_cap(30)
            .build()
            .unwrap()
    }

    #[test]
    fn radio_loss_matches_eq8() {
        let m = RadioLossModel::paper();
        let base = 0.011 * 110.0 * (-0.145f64 * 10.0).exp();
        assert!((m.rate(10.0, pl(110), mt(3)) - base.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn retransmissions_reduce_radio_loss_exponentially() {
        let m = RadioLossModel::paper();
        let l1 = m.rate(8.0, pl(110), mt(1));
        let l3 = m.rate(8.0, pl(110), mt(3));
        let l8 = m.rate(8.0, pl(110), mt(8));
        assert!(l1 > l3 && l3 > l8);
        assert!(l8 < 1e-3);
    }

    #[test]
    fn mm1k_limits() {
        // Light load, big buffer: essentially no blocking.
        assert!(mm1k_blocking(0.3, 30) < 1e-12);
        // Critical load: 1/(K+1).
        assert!((mm1k_blocking(1.0, 9) - 0.1).abs() < 1e-6);
        // Overload tends to 1 − 1/ρ.
        assert!((mm1k_blocking(2.0, 50) - 0.5).abs() < 1e-9);
        // Tiny buffer at moderate load blocks noticeably.
        assert!(mm1k_blocking(0.8, 1) > 0.3);
    }

    #[test]
    fn mm1k_monotone_in_rho_and_buffer() {
        assert!(mm1k_blocking(0.9, 5) > mm1k_blocking(0.5, 5));
        assert!(mm1k_blocking(0.9, 5) > mm1k_blocking(0.9, 20));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn mm1k_rejects_zero_slots() {
        let _ = mm1k_blocking(0.5, 0);
    }

    #[test]
    fn grey_zone_retx_trades_radio_loss_for_queue_loss() {
        // Sec. VII: at high load in the grey zone, raising NmaxTries cuts
        // radio loss but inflates queue loss.
        let m = LossModel::paper();
        let mut cfg1 = grey_zone_config();
        cfg1.max_tries = mt(1);
        let mut cfg8 = grey_zone_config();
        cfg8.max_tries = mt(8);
        let snr = 9.0;
        let e1 = m.estimate(snr, &cfg1);
        let e8 = m.estimate(snr, &cfg8);
        assert!(
            e8.plr_radio < e1.plr_radio,
            "radio {} !< {}",
            e8.plr_radio,
            e1.plr_radio
        );
        assert!(
            e8.plr_queue > e1.plr_queue,
            "queue {} !> {}",
            e8.plr_queue,
            e1.plr_queue
        );
        assert!(e8.rho > e1.rho);
    }

    #[test]
    fn estimate_total_combines_stages() {
        let e = LossEstimate {
            plr_radio: 0.2,
            plr_queue: 0.5,
            rho: 1.2,
        };
        assert!((e.total() - (0.5 + 0.5 * 0.2)).abs() < 1e-12);
    }

    #[test]
    fn max_tries_within_capacity_keeps_rho_below_one() {
        let m = LossModel::paper();
        let cfg = grey_zone_config();
        // At 20 dB the 3-try configuration is stable (Table II: ρ=0.713);
        // the search should find at least 3.
        let best = m.max_tries_within_capacity(20.0, &cfg, 8).unwrap();
        assert!(best.get() >= 3);
        let mut candidate = cfg;
        candidate.max_tries = best;
        assert!(m.service.utilization(20.0, &candidate) < 1.0);
    }

    #[test]
    fn max_tries_none_when_hopeless() {
        let m = LossModel::paper();
        let mut cfg = grey_zone_config();
        cfg = StackConfig::builder()
            .payload_bytes(cfg.payload.bytes())
            .packet_interval_ms(10) // brutal load
            .retry_delay_ms(100)
            .build()
            .unwrap();
        // Deep grey zone + 10 ms arrivals: even one try exceeds capacity.
        assert!(m.max_tries_within_capacity(5.0, &cfg, 8).is_none());
    }

    #[test]
    fn min_queue_for_loss_grows_with_load() {
        let m = LossModel::paper();
        let cfg = grey_zone_config();
        let q_easy = m.min_queue_for_loss(25.0, &cfg, 1e-3, 64).unwrap();
        let q_hard = m.min_queue_for_loss(15.0, &cfg, 1e-3, 64).unwrap();
        assert!(q_hard.get() >= q_easy.get());
    }
}
