//! The paper's per-metric parameter-optimization guidelines
//! (Secs. IV-C, V-C, VI-B, VII-B) as executable recommendations.

use serde::{Deserialize, Serialize};

use wsn_params::config::StackConfig;
use wsn_params::types::{Distance, MaxTries, PacketInterval, PayloadSize, PowerLevel, QueueCap};

use crate::constants::{ENERGY_MAX_PAYLOAD_SNR_DB, GREY_ZONE_MAX_SNR_DB};
use crate::energy::EnergyModel;
use crate::goodput::GoodputModel;
use crate::loss::LossModel;
use crate::predict::LinkBudget;
use crate::service_time::ServiceTimeModel;

/// An energy recommendation (Sec. IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyAdvice {
    /// Recommended PA level.
    pub power: PowerLevel,
    /// Recommended payload size.
    pub payload: PayloadSize,
    /// The SNR expected at that level.
    pub snr_db: f64,
    /// True when the link reaches the ≥17 dB region where the maximum
    /// payload is optimal.
    pub reaches_low_impact: bool,
}

/// The executable guideline set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Guidelines {
    /// Energy model (Sec. IV).
    pub energy: EnergyModel,
    /// Goodput model (Sec. V).
    pub goodput: GoodputModel,
    /// Loss model (Sec. VII).
    pub loss: LossModel,
    /// Service-time model (Sec. VI).
    pub service: ServiceTimeModel,
    /// Link budget for SNR prediction.
    pub budget: LinkBudget,
}

impl Guidelines {
    /// Guidelines backed by the paper's published constants.
    pub fn paper() -> Self {
        Guidelines {
            energy: EnergyModel::paper(),
            goodput: GoodputModel::paper(),
            loss: LossModel::paper(),
            service: ServiceTimeModel::paper(),
            budget: LinkBudget::paper_hallway(),
        }
    }

    /// Sec. IV-C: choose the smallest output power that lifts the link
    /// into the low-impact region (SNR ≥ 17 dB by the empirical model) and
    /// use the maximum payload there; if no candidate reaches it, use the
    /// maximum power with the model-optimal (smaller) payload.
    pub fn energy_advice(
        &self,
        distance: Distance,
        candidates: &[PowerLevel],
    ) -> Option<EnergyAdvice> {
        if candidates.is_empty() {
            return None;
        }
        let reaching = candidates
            .iter()
            .copied()
            .filter(|&p| self.budget.snr_db(p, distance) >= ENERGY_MAX_PAYLOAD_SNR_DB)
            .min_by_key(|p| p.level());
        match reaching {
            Some(power) => Some(EnergyAdvice {
                power,
                payload: PayloadSize::MAX,
                snr_db: self.budget.snr_db(power, distance),
                reaches_low_impact: true,
            }),
            None => {
                let power = candidates
                    .iter()
                    .copied()
                    .max_by_key(|p| p.level())
                    .expect("non-empty candidates");
                let snr_db = self.budget.snr_db(power, distance);
                Some(EnergyAdvice {
                    power,
                    payload: self.energy.optimal_payload(snr_db, power),
                    snr_db,
                    reaches_low_impact: false,
                })
            }
        }
    }

    /// Sec. V-C: the goodput-optimal payload. Outside the grey zone this
    /// is the maximum size; inside, the model argmax (which grows with
    /// `NmaxTries`).
    pub fn goodput_payload(&self, snr_db: f64, max_tries: MaxTries) -> PayloadSize {
        if snr_db >= GREY_ZONE_MAX_SNR_DB {
            PayloadSize::MAX
        } else {
            self.goodput
                .optimal_payload(snr_db, max_tries, wsn_params::types::RetryDelay::ZERO)
        }
    }

    /// Sec. VI-B: the smallest packet interval (searched in 1 ms steps up
    /// to `limit_ms`) that keeps the system utilization under `rho_target`
    /// for the rest of the configuration, avoiding queueing delay blow-up.
    pub fn min_stable_interval(
        &self,
        snr_db: f64,
        config: &StackConfig,
        rho_target: f64,
        limit_ms: u32,
    ) -> Option<PacketInterval> {
        let t_service_s = self.service.plugin_service_time_s(
            snr_db,
            config.payload,
            config.max_tries,
            config.retry_delay,
        );
        let needed_ms = (t_service_s * 1e3 / rho_target).ceil() as u32;
        if needed_ms == 0 || needed_ms > limit_ms {
            return None;
        }
        Some(PacketInterval::from_millis(needed_ms).expect("needed_ms >= 1"))
    }

    /// Sec. VII-B: the retransmission budget that minimizes radio loss
    /// while keeping ρ < 1; falls back to a queue-size recommendation when
    /// even one attempt saturates the link.
    pub fn loss_advice(
        &self,
        snr_db: f64,
        config: &StackConfig,
        tries_limit: u8,
        queue_limit: u16,
    ) -> LossAdvice {
        match self
            .loss
            .max_tries_within_capacity(snr_db, config, tries_limit)
        {
            Some(tries) => LossAdvice::Retransmit { tries },
            None => {
                let queue = self
                    .loss
                    .min_queue_for_loss(snr_db, config, 0.05, queue_limit)
                    .unwrap_or(QueueCap::new(queue_limit.max(1)).expect("limit >= 1"));
                LossAdvice::Buffer { queue }
            }
        }
    }
}

impl Default for Guidelines {
    fn default() -> Self {
        Guidelines::paper()
    }
}

/// A loss recommendation (Sec. VII-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossAdvice {
    /// Stable link: use this retransmission budget.
    Retransmit {
        /// The recommended `NmaxTries`.
        tries: MaxTries,
    },
    /// Overloaded link: buffer with (at least) this queue size instead.
    Buffer {
        /// The recommended `Qmax`.
        queue: QueueCap,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn levels() -> Vec<PowerLevel> {
        [3u8, 7, 11, 15, 19, 23, 27, 31]
            .iter()
            .map(|&l| PowerLevel::new(l).unwrap())
            .collect()
    }

    #[test]
    fn energy_advice_at_35m_prefers_interior_power_and_max_payload() {
        let g = Guidelines::paper();
        let advice = g
            .energy_advice(Distance::from_meters(35.0).unwrap(), &levels())
            .unwrap();
        // Fig. 7: an interior PA level (≈11) reaches the low-impact zone.
        assert!(advice.reaches_low_impact);
        assert!(advice.power.level() <= 15, "power={}", advice.power.level());
        assert_eq!(advice.payload.bytes(), 114);
        assert!(advice.snr_db >= ENERGY_MAX_PAYLOAD_SNR_DB);
    }

    #[test]
    fn energy_advice_far_link_falls_back_to_max_power_small_payload() {
        let g = Guidelines::paper();
        // 200 m: even max power cannot reach 17 dB on this budget.
        let advice = g
            .energy_advice(Distance::from_meters(200.0).unwrap(), &levels())
            .unwrap();
        assert!(!advice.reaches_low_impact);
        assert_eq!(advice.power.level(), 31);
        assert!(advice.payload.bytes() < 114);
    }

    #[test]
    fn energy_advice_empty_candidates_is_none() {
        let g = Guidelines::paper();
        assert!(g
            .energy_advice(Distance::from_meters(20.0).unwrap(), &[])
            .is_none());
    }

    #[test]
    fn goodput_payload_max_outside_grey_zone() {
        let g = Guidelines::paper();
        assert_eq!(
            g.goodput_payload(15.0, MaxTries::new(3).unwrap()).bytes(),
            114
        );
        // Deep grey zone without retransmissions: smaller.
        assert!(g.goodput_payload(3.0, MaxTries::ONE).bytes() < 114);
    }

    #[test]
    fn min_stable_interval_respects_target() {
        let g = Guidelines::paper();
        let cfg = StackConfig::default();
        let interval = g.min_stable_interval(10.0, &cfg, 0.9, 1_000).unwrap();
        let mut candidate = cfg;
        candidate.packet_interval = interval;
        assert!(g.service.utilization(10.0, &candidate) <= 0.9 + 1e-6);
        // A 1 ms tighter interval would violate the target.
        if interval.millis() > 1 {
            candidate.packet_interval = PacketInterval::from_millis(interval.millis() - 1).unwrap();
            assert!(g.service.utilization(10.0, &candidate) > 0.9 - 0.05);
        }
    }

    #[test]
    fn min_stable_interval_none_when_impossible() {
        let g = Guidelines::paper();
        let cfg = StackConfig::default();
        assert!(g.min_stable_interval(5.0, &cfg, 0.9, 10).is_none());
    }

    #[test]
    fn loss_advice_switches_to_buffering_under_overload() {
        let g = Guidelines::paper();
        let overloaded = StackConfig::builder()
            .packet_interval_ms(10)
            .payload_bytes(110)
            .retry_delay_ms(100)
            .build()
            .unwrap();
        match g.loss_advice(5.0, &overloaded, 8, 64) {
            LossAdvice::Buffer { queue } => assert!(queue.get() >= 1),
            LossAdvice::Retransmit { .. } => panic!("expected buffering advice"),
        }
        let stable = StackConfig::builder()
            .packet_interval_ms(500)
            .payload_bytes(50)
            .build()
            .unwrap();
        match g.loss_advice(20.0, &stable, 8, 64) {
            LossAdvice::Retransmit { tries } => assert!(tries.get() >= 3),
            LossAdvice::Buffer { .. } => panic!("expected retransmission advice"),
        }
    }
}
