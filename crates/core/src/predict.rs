//! Analytic performance prediction for a full stack configuration.
//!
//! The optimizer needs to evaluate thousands of candidate configurations
//! without simulating each one. [`Predictor`] composes the paper's four
//! empirical models (Table III) with a [`LinkBudget`] that maps
//! `(Ptx, d)` to an expected SNR, yielding a [`Predicted`] vector of all
//! four performance metrics per configuration.

use serde::{Deserialize, Serialize};

use wsn_params::config::StackConfig;
use wsn_params::types::{Distance, PowerLevel};
use wsn_radio::pathloss::PathLoss;

use crate::energy::EnergyModel;
use crate::goodput::GoodputModel;
use crate::loss::{mm1k_blocking, LossModel};
use crate::service_time::ServiceTimeModel;

/// Maps a transmit power and distance to an expected SNR.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Path-loss model of the environment.
    pub pathloss: PathLoss,
    /// Mean noise floor, dBm.
    pub noise_dbm: f64,
}

impl LinkBudget {
    /// The paper's hallway with its −95 dBm average noise floor.
    pub fn paper_hallway() -> Self {
        LinkBudget {
            pathloss: PathLoss::paper_hallway(),
            noise_dbm: -95.0,
        }
    }

    /// The link condition of the paper's Sec. VIII case study: a heavily
    /// shadowed 35 m link where even the maximum output power only reaches
    /// **6 dB** SNR ("we assume the current SNR increases to 6 dB after
    /// the output power level increases from 23 to maximum 31"). Modeled
    /// as the hallway with ≈23 dB of additional shadowing loss.
    pub fn case_study() -> Self {
        let mut pathloss = PathLoss::paper_hallway();
        pathloss.reference_loss_db = 55.2;
        LinkBudget {
            pathloss,
            noise_dbm: -95.0,
        }
    }

    /// Expected SNR for an operating point, dB.
    pub fn snr_db(&self, power: PowerLevel, distance: Distance) -> f64 {
        self.pathloss.mean_snr_db(power, distance, self.noise_dbm)
    }
}

impl Default for LinkBudget {
    fn default() -> Self {
        LinkBudget::paper_hallway()
    }
}

/// The model-predicted performance of one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Predicted {
    /// Expected SNR of the operating point, dB.
    pub snr_db: f64,
    /// Energy per information bit (Eq. 2), µJ/bit.
    pub u_eng_uj_per_bit: f64,
    /// Maximum goodput (Eq. 4, saturated sending), b/s.
    pub max_goodput_bps: f64,
    /// Expected goodput under the configuration's periodic load, b/s.
    pub offered_goodput_bps: f64,
    /// Mean service time (Eqs. 5–7), ms.
    pub service_time_ms: f64,
    /// System utilization (Eq. 9).
    pub rho: f64,
    /// Predicted mean delay (service + queueing approximation), ms.
    pub delay_ms: f64,
    /// Radio loss rate (Eq. 8).
    pub plr_radio: f64,
    /// Queue-overflow loss rate (M/M/1/K on ρ).
    pub plr_queue: f64,
}

impl Predicted {
    /// Total predicted loss rate.
    pub fn plr_total(&self) -> f64 {
        self.plr_queue + (1.0 - self.plr_queue) * self.plr_radio
    }
}

/// Composes the four empirical models into a configuration evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Predictor {
    /// Energy model (Eq. 2 + Eq. 3).
    pub energy: EnergyModel,
    /// Goodput model (Eq. 4).
    pub goodput: GoodputModel,
    /// Loss model (Eq. 8 + queueing).
    pub loss: LossModel,
    /// Service-time model (Eqs. 5–7, 9).
    pub service: ServiceTimeModel,
    /// The link budget mapping `(Ptx, d)` to SNR.
    pub budget: LinkBudget,
}

impl Predictor {
    /// A predictor with the paper's published constants on the hallway
    /// link budget.
    pub fn paper() -> Self {
        Predictor {
            energy: EnergyModel::paper(),
            goodput: GoodputModel::paper(),
            loss: LossModel::paper(),
            service: ServiceTimeModel::paper(),
            budget: LinkBudget::paper_hallway(),
        }
    }

    /// Evaluates one configuration at its budget-implied SNR.
    pub fn evaluate(&self, config: &StackConfig) -> Predicted {
        self.evaluate_at_snr(config, self.budget.snr_db(config.power, config.distance))
    }

    /// Evaluates one configuration at an explicitly known SNR (e.g. a
    /// measured one), bypassing the link budget.
    pub fn evaluate_at_snr(&self, config: &StackConfig, snr_db: f64) -> Predicted {
        let u_eng = self
            .energy
            .u_eng_uj_per_bit(snr_db, config.payload, config.power);
        let max_goodput = self.goodput.max_goodput_bps(
            snr_db,
            config.payload,
            config.max_tries,
            config.retry_delay,
        );
        let t_service_s = self.service.plugin_service_time_s(
            snr_db,
            config.payload,
            config.max_tries,
            config.retry_delay,
        );
        let rho = t_service_s / config.packet_interval.as_secs_f64();
        let plr_queue = mm1k_blocking(rho, config.queue_cap.get() as usize);
        let plr_radio = self
            .loss
            .radio
            .rate(snr_db, config.payload, config.max_tries);

        // Delivered fraction of the periodic offered load.
        let offered_goodput = config.offered_load_bps() * (1.0 - plr_queue) * (1.0 - plr_radio);

        // Mean delay: service time plus an M/M/1-style waiting-time
        // approximation while stable; once saturated the backlog sits at
        // the buffer limit, so waiting ≈ (Qmax − 1) service times.
        let queue_wait_s = if rho < 1.0 {
            let unbounded = t_service_s * rho / (1.0 - rho);
            let cap = t_service_s * (config.queue_cap.get().saturating_sub(1)) as f64;
            unbounded.min(cap)
        } else {
            t_service_s * (config.queue_cap.get().saturating_sub(1)) as f64
        };
        let delay_ms = (t_service_s + queue_wait_s) * 1e3;

        Predicted {
            snr_db,
            u_eng_uj_per_bit: u_eng,
            max_goodput_bps: max_goodput,
            offered_goodput_bps: offered_goodput,
            service_time_ms: t_service_s * 1e3,
            rho,
            delay_ms,
            plr_radio,
            plr_queue,
        }
    }
}

impl Default for Predictor {
    fn default() -> Self {
        Predictor::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(power: u8, dist: f64, payload: u16, tries: u8, tpkt: u32, qmax: u16) -> StackConfig {
        StackConfig::builder()
            .power_level(power)
            .distance_m(dist)
            .payload_bytes(payload)
            .max_tries(tries)
            .retry_delay_ms(30)
            .packet_interval_ms(tpkt)
            .queue_cap(qmax)
            .build()
            .unwrap()
    }

    #[test]
    fn budget_snr_matches_pathloss() {
        let b = LinkBudget::paper_hallway();
        let snr = b.snr_db(
            PowerLevel::new(11).unwrap(),
            Distance::from_meters(35.0).unwrap(),
        );
        assert!((snr - 19.0).abs() < 0.5, "snr={snr}");
    }

    #[test]
    fn clean_link_prediction_is_benign() {
        let p = Predictor::paper();
        let pred = p.evaluate(&cfg(31, 10.0, 110, 3, 100, 30));
        assert!(pred.snr_db > 25.0);
        assert!(pred.plr_total() < 1e-3);
        assert!(pred.rho < 0.5);
        assert!(pred.delay_ms < 30.0);
        // Offered load delivered almost in full.
        assert!((pred.offered_goodput_bps - 8_800.0).abs() < 50.0);
    }

    #[test]
    fn grey_zone_overload_shows_queue_loss_and_delay() {
        let p = Predictor::paper();
        // 35 m at minimum power, heavy load: deep grey zone.
        let pred = p.evaluate(&cfg(3, 35.0, 110, 8, 10, 30));
        assert!(pred.snr_db < 12.0);
        assert!(pred.rho > 1.0, "rho={}", pred.rho);
        assert!(pred.plr_queue > 0.3, "plr_queue={}", pred.plr_queue);
        // Saturated 30-deep queue: delay ~ 30 service times.
        assert!(pred.delay_ms > 10.0 * pred.service_time_ms);
    }

    #[test]
    fn evaluate_at_snr_overrides_budget() {
        let p = Predictor::paper();
        let c = cfg(23, 35.0, 110, 3, 30, 30);
        let a = p.evaluate_at_snr(&c, 25.0);
        let b = p.evaluate_at_snr(&c, 8.0);
        assert!(a.plr_radio < b.plr_radio);
        assert!(a.service_time_ms < b.service_time_ms);
    }

    #[test]
    fn max_goodput_at_least_offered_goodput_when_stable() {
        let p = Predictor::paper();
        let pred = p.evaluate(&cfg(27, 20.0, 110, 3, 50, 30));
        assert!(pred.rho < 1.0);
        assert!(pred.max_goodput_bps >= pred.offered_goodput_bps);
    }

    #[test]
    fn plr_total_in_unit_interval() {
        let p = Predictor::paper();
        for power in [3u8, 11, 23, 31] {
            for tpkt in [10u32, 30, 100] {
                let pred = p.evaluate(&cfg(power, 35.0, 110, 8, tpkt, 1));
                let total = pred.plr_total();
                assert!((0.0..=1.0).contains(&total), "total={total}");
            }
        }
    }
}
