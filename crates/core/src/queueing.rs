//! Queueing-delay models for the analytic engine: M/G/1 waiting time
//! (Pollaczek–Khinchine) and its GI/G/1 generalization (Kingman/Marchal),
//! plus a finite-queue verdict that never leaks `NaN`/`∞` into JSON.
//!
//! The paper's delay metric is service time (Eqs. 5–6) plus the queueing
//! delay induced by Eq. 9's utilization ρ. The simulators measure that
//! delay; this module predicts it from the first two moments of the
//! service-time distribution, which
//! [`analytic`](../../wsn_link_sim/analytic/index.html) computes in closed
//! form. For Poisson arrivals the Kingman form below *is* the exact
//! Pollaczek–Khinchine mean; for the periodic sources the paper uses
//! (`C_a² = 0`) it is the standard heavy-traffic approximation.

use serde::{Deserialize, Serialize};

use crate::loss::mm1k_blocking;

/// First two moments of a service-time distribution, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceMoments {
    /// Mean service time `E[S]`, s.
    pub mean_s: f64,
    /// Second raw moment `E[S²]`, s².
    pub second_moment_s2: f64,
}

impl ServiceMoments {
    /// Builds moments from a mean and a variance (both must be finite,
    /// mean positive, variance non-negative).
    pub fn from_mean_var(mean_s: f64, var_s2: f64) -> ServiceMoments {
        assert!(
            mean_s.is_finite() && mean_s > 0.0,
            "service mean must be finite and positive, got {mean_s}"
        );
        assert!(
            var_s2.is_finite() && var_s2 >= 0.0,
            "service variance must be finite and >= 0, got {var_s2}"
        );
        ServiceMoments {
            mean_s,
            second_moment_s2: var_s2 + mean_s * mean_s,
        }
    }

    /// Variance `Var[S]`, s².
    pub fn variance_s2(&self) -> f64 {
        (self.second_moment_s2 - self.mean_s * self.mean_s).max(0.0)
    }

    /// Squared coefficient of variation `C_s² = Var[S]/E[S]²`.
    pub fn scv(&self) -> f64 {
        self.variance_s2() / (self.mean_s * self.mean_s)
    }
}

/// M/G/1 mean waiting time (Pollaczek–Khinchine):
/// `Wq = λ·E[S²] / (2·(1 − ρ))` with `ρ = λ·E[S]`.
///
/// Only defined in the stable region; panics if `ρ ≥ 1` (use
/// [`finite_queue_outcome`] when saturation is a possible input).
pub fn pk_waiting_time_s(lambda: f64, service: ServiceMoments) -> f64 {
    let rho = lambda * service.mean_s;
    assert!(rho < 1.0, "P-K requires rho < 1, got rho = {rho}");
    lambda * service.second_moment_s2 / (2.0 * (1.0 - rho))
}

/// GI/G/1 mean waiting time (Kingman / Marchal):
/// `Wq ≈ ρ/(1 − ρ) · (C_a² + C_s²)/2 · E[S]`.
///
/// `ca2` is the squared coefficient of variation of the inter-arrival
/// gaps: 0 for a periodic source, 1 for Poisson — in which case this is
/// exactly [`pk_waiting_time_s`].
pub fn gg1_waiting_time_s(ca2: f64, lambda: f64, service: ServiceMoments) -> f64 {
    assert!(
        ca2.is_finite() && ca2 >= 0.0,
        "C_a^2 must be finite and >= 0, got {ca2}"
    );
    let rho = lambda * service.mean_s;
    assert!(rho < 1.0, "Kingman requires rho < 1, got rho = {rho}");
    rho / (1.0 - rho) * (ca2 + service.scv()) / 2.0 * service.mean_s
}

/// Queueing verdict for one configuration and one finite queue: either a
/// stable waiting time or an explicitly saturated bound.
///
/// Every field is always finite, so the struct can be serialized into a
/// JSON response as-is even for overloaded (`ρ ≥ 1`) inputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueOutcome {
    /// Offered utilization `ρ = λ·E[S]` (may exceed 1).
    pub rho: f64,
    /// Mean waiting time in the queue, s. In the saturated regime this is
    /// the full-queue bound `(K − 1)·E[S]`, not a diverging Kingman value.
    pub wait_s: f64,
    /// Blocking probability of the K-slot queue (M/M/1/K form, Eq. 9's ρ).
    pub plr_queue: f64,
    /// True when `ρ ≥ 1`: the queue runs at its capacity bound and
    /// `wait_s` is the bound, not an equilibrium mean.
    pub saturated: bool,
}

/// Waiting time and blocking for a K-slot queue fed at rate `lambda`, with
/// the given inter-arrival variability `ca2` and service moments.
///
/// In the stable region the wait is Kingman's approximation capped at the
/// full-queue bound `(K − 1)·E[S]` (a K-slot queue holds at most K − 1
/// packets ahead of a new arrival); at and beyond saturation it *is* that
/// bound, flagged via [`QueueOutcome::saturated`].
pub fn finite_queue_outcome(
    ca2: f64,
    lambda: f64,
    service: ServiceMoments,
    capacity: usize,
) -> QueueOutcome {
    assert!(capacity >= 1, "queue must have at least one slot");
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "arrival rate must be finite and >= 0, got {lambda}"
    );
    let rho = lambda * service.mean_s;
    let full_queue_wait_s = (capacity as f64 - 1.0) * service.mean_s;
    let plr_queue = mm1k_blocking(rho, capacity);
    if rho >= 1.0 {
        return QueueOutcome {
            rho,
            wait_s: full_queue_wait_s,
            plr_queue,
            saturated: true,
        };
    }
    let wait_s = if lambda == 0.0 {
        0.0
    } else {
        gg1_waiting_time_s(ca2, lambda, service).min(full_queue_wait_s)
    };
    QueueOutcome {
        rho,
        wait_s,
        plr_queue,
        saturated: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Simulates an M/D/1 queue (Poisson arrivals, deterministic service)
    /// and returns the mean waiting time over `n` customers.
    fn simulate_md1_wait(lambda: f64, service_s: f64, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arrival = 0.0f64;
        let mut prev_departure = 0.0f64;
        let mut total_wait = 0.0f64;
        for _ in 0..n {
            let gap = -rng.gen::<f64>().max(1e-300).ln() / lambda;
            arrival += gap;
            let start = arrival.max(prev_departure);
            total_wait += start - arrival;
            prev_departure = start + service_s;
        }
        total_wait / n as f64
    }

    #[test]
    fn pk_matches_md1_simulation() {
        // M/D/1 special case: E[S²] = E[S]², so W = ρ·E[S] / (2(1 − ρ)).
        let service_s = 0.010;
        for rho in [0.3, 0.6, 0.8] {
            let lambda = rho / service_s;
            let moments = ServiceMoments::from_mean_var(service_s, 0.0);
            let analytic = pk_waiting_time_s(lambda, moments);
            let simulated = simulate_md1_wait(lambda, service_s, 400_000, 0x4D44);
            let rel = (analytic - simulated).abs() / simulated.max(1e-12);
            assert!(
                rel < 0.05,
                "rho={rho}: P-K {analytic:.6} vs simulated {simulated:.6} (rel {rel:.3})"
            );
        }
    }

    #[test]
    fn kingman_reduces_to_pk_for_poisson_arrivals() {
        let moments = ServiceMoments::from_mean_var(0.005, 9e-6);
        let lambda = 120.0; // rho = 0.6
        let pk = pk_waiting_time_s(lambda, moments);
        let kingman = gg1_waiting_time_s(1.0, lambda, moments);
        assert!((pk - kingman).abs() < 1e-12, "pk={pk} kingman={kingman}");
    }

    #[test]
    fn waiting_time_diverges_as_rho_approaches_one() {
        let service_s = 0.010;
        let moments = ServiceMoments::from_mean_var(service_s, 0.0);
        let w = |rho: f64| pk_waiting_time_s(rho / service_s, moments);
        assert!(w(0.99) > w(0.9) && w(0.999) > w(0.99) && w(0.9999) > w(0.999));
        // Divergence rate: halving the headroom doubles the wait.
        assert!(w(0.9999) > 1_000.0 * w(0.5));
        assert!(w(0.9999).is_finite());
    }

    #[test]
    fn saturated_inputs_return_explicit_bound_not_nan() {
        let moments = ServiceMoments::from_mean_var(0.020, 4e-6);
        for rho in [1.0, 1.5, 10.0] {
            let lambda = rho / moments.mean_s;
            let out = finite_queue_outcome(0.0, lambda, moments, 30);
            assert!(out.saturated);
            assert!(out.wait_s.is_finite() && out.plr_queue.is_finite() && out.rho.is_finite());
            assert_eq!(out.wait_s, 29.0 * moments.mean_s);
            assert!((0.0..=1.0).contains(&out.plr_queue));
        }
    }

    #[test]
    fn idle_queue_has_zero_wait_and_loss() {
        let moments = ServiceMoments::from_mean_var(0.020, 0.0);
        let out = finite_queue_outcome(0.0, 0.0, moments, 30);
        assert_eq!(out.wait_s, 0.0);
        assert_eq!(out.plr_queue, 0.0);
        assert!(!out.saturated);
    }

    proptest! {
        #[test]
        fn stable_outcomes_are_finite_and_monotone_in_rho(
            mean_ms in 1.0f64..50.0,
            scv in 0.0f64..2.0,
            rho_lo in 0.05f64..0.45,
            bump in 0.05f64..0.45,
            ca2 in 0.0f64..1.0,
        ) {
            let var = scv * mean_ms * mean_ms;
            let moments = ServiceMoments::from_mean_var(mean_ms / 1e3, var / 1e6);
            let rho_hi = rho_lo + bump;
            let lo = finite_queue_outcome(ca2, rho_lo / moments.mean_s, moments, 30);
            let hi = finite_queue_outcome(ca2, rho_hi / moments.mean_s, moments, 30);
            prop_assert!(lo.wait_s.is_finite() && hi.wait_s.is_finite());
            prop_assert!(lo.wait_s >= 0.0);
            prop_assert!(hi.wait_s >= lo.wait_s - 1e-12);
            prop_assert!(hi.plr_queue >= lo.plr_queue - 1e-12);
            prop_assert!(!lo.saturated && !hi.saturated);
        }

        #[test]
        fn pk_never_undershoots_the_md1_floor(
            mean_ms in 1.0f64..50.0,
            extra_scv in 0.0f64..3.0,
            rho in 0.05f64..0.95,
        ) {
            // Among all service laws with a given mean, deterministic
            // service minimizes the P-K wait; adding variance only adds
            // delay.
            let mean_s = mean_ms / 1e3;
            let lambda = rho / mean_s;
            let floor = pk_waiting_time_s(lambda, ServiceMoments::from_mean_var(mean_s, 0.0));
            let var = extra_scv * mean_s * mean_s;
            let w = pk_waiting_time_s(lambda, ServiceMoments::from_mean_var(mean_s, var));
            prop_assert!(w >= floor - 1e-15);
        }
    }
}
