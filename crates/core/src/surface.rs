//! The exponential payload–SNR surface underlying all three of the paper's
//! loss-related models.
//!
//! Eq. 3 (PER), Eq. 7 (mean transmissions) and Eq. 8 (radio loss rate) all
//! share the functional form
//!
//! ```text
//! f(lD, SNR) = α · lD · exp(β · SNR)
//! ```
//!
//! with different fitted constants. [`ExpSurface`] is that shared form.

use serde::{Deserialize, Serialize};

use wsn_params::types::PayloadSize;

/// An `α · lD · exp(β · SNR)` surface.
///
/// ```
/// use wsn_models::surface::ExpSurface;
/// use wsn_params::types::PayloadSize;
///
/// let per = ExpSurface::new(0.0128, -0.15); // the paper's Eq. 3
/// let v = per.eval(PayloadSize::new(110)?, 10.0);
/// assert!((v - 0.0128 * 110.0 * (-1.5f64).exp()).abs() < 1e-12);
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpSurface {
    /// Payload coefficient α (per byte), non-negative.
    pub alpha: f64,
    /// SNR decay coefficient β (per dB), non-positive.
    pub beta: f64,
}

impl ExpSurface {
    /// Creates a surface.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 0`, `beta > 0`, or either is non-finite: the
    /// surface would lose the monotonicities every model relies on
    /// (increasing in payload, decreasing in SNR).
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be finite and non-negative, got {alpha}"
        );
        assert!(
            beta.is_finite() && beta <= 0.0,
            "beta must be finite and non-positive, got {beta}"
        );
        ExpSurface { alpha, beta }
    }

    /// Evaluates the raw (unclamped) surface.
    pub fn eval(&self, payload: PayloadSize, snr_db: f64) -> f64 {
        self.alpha * payload.bytes() as f64 * (self.beta * snr_db).exp()
    }

    /// Evaluates the surface clamped to `[0, 1]` — the probability reading
    /// used by the PER and loss models.
    pub fn eval_prob(&self, payload: PayloadSize, snr_db: f64) -> f64 {
        self.eval(payload, snr_db).clamp(0.0, 1.0)
    }

    /// The SNR at which the surface value drops to `target` for `payload`
    /// (inverse in the SNR axis). Returns `None` when β = 0 or the target
    /// is unreachable.
    pub fn snr_for_value(&self, payload: PayloadSize, target: f64) -> Option<f64> {
        if self.beta == 0.0 || self.alpha == 0.0 || target <= 0.0 {
            return None;
        }
        let ratio = target / (self.alpha * payload.bytes() as f64);
        Some(ratio.ln() / self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(b: u16) -> PayloadSize {
        PayloadSize::new(b).unwrap()
    }

    #[test]
    fn eval_matches_formula() {
        let s = ExpSurface::new(0.02, -0.18);
        let expected = 0.02 * 65.0 * (-0.18f64 * 12.0).exp();
        assert!((s.eval(pl(65), 12.0) - expected).abs() < 1e-15);
    }

    #[test]
    fn prob_clamps() {
        let s = ExpSurface::new(0.0128, -0.15);
        assert_eq!(s.eval_prob(pl(114), -50.0), 1.0);
        assert!(s.eval_prob(pl(114), 60.0) > 0.0);
        assert!(s.eval_prob(pl(114), 60.0) < 1e-3);
    }

    #[test]
    fn monotonicities() {
        let s = ExpSurface::new(0.0128, -0.15);
        assert!(s.eval(pl(110), 10.0) > s.eval(pl(5), 10.0));
        assert!(s.eval(pl(50), 5.0) > s.eval(pl(50), 15.0));
    }

    #[test]
    fn snr_inverse_round_trips() {
        let s = ExpSurface::new(0.0128, -0.15);
        let snr = s.snr_for_value(pl(114), 0.1).unwrap();
        assert!((s.eval(pl(114), snr) - 0.1).abs() < 1e-12);
        // Paper quote: PER for max payload reaches 0.1 around 19 dB.
        assert!((snr - 18.0).abs() < 1.5, "snr={snr}");
    }

    #[test]
    fn inverse_edge_cases() {
        assert!(ExpSurface::new(0.0, -0.1)
            .snr_for_value(pl(50), 0.1)
            .is_none());
        assert!(ExpSurface::new(0.1, 0.0)
            .snr_for_value(pl(50), 0.1)
            .is_none());
        assert!(ExpSurface::new(0.1, -0.1)
            .snr_for_value(pl(50), 0.0)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn positive_beta_rejected() {
        let _ = ExpSurface::new(0.01, 0.2);
    }
}
