//! Multi-objective parameter optimization (Sec. VIII-B).
//!
//! The paper formulates joint tuning as a multi-objective optimization
//! problem `min(M1(c), …, Mk(c))` over subsets of the seven stack
//! parameters and solves instances with the epsilon-constraint method.
//! Because the experimented grid is finite (8064 configurations per
//! distance), both the exact Pareto front and epsilon-constrained optima
//! are computed by exhaustive evaluation with the analytic
//! [`Predictor`] — the same approach the paper's case study takes.

use serde::{Deserialize, Serialize};

use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;

use crate::predict::{Predicted, Predictor};

/// One of the four performance metrics, in minimization sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Minimize energy per information bit (`E`).
    Energy,
    /// Maximize maximum goodput (`G`, internally negated).
    Goodput,
    /// Minimize predicted delay (`D`).
    Delay,
    /// Minimize total packet loss rate (`L`).
    Loss,
}

impl Metric {
    /// The value of this metric for a prediction, in minimization sense
    /// (goodput is negated so that smaller is always better).
    pub fn value(self, p: &Predicted) -> f64 {
        match self {
            Metric::Energy => p.u_eng_uj_per_bit,
            Metric::Goodput => -p.max_goodput_bps,
            Metric::Delay => p.delay_ms,
            Metric::Loss => p.plr_total(),
        }
    }

    /// The natural-sense reading (goodput positive again).
    pub fn display_value(self, p: &Predicted) -> f64 {
        match self {
            Metric::Goodput => p.max_goodput_bps,
            other => other.value(p),
        }
    }
}

/// A configuration together with its predicted performance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The candidate configuration.
    pub config: StackConfig,
    /// Its model-predicted metrics.
    pub predicted: Predicted,
}

/// Exhaustive multi-objective optimizer over a parameter grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Optimizer {
    /// The analytic evaluator.
    pub predictor: Predictor,
}

impl Optimizer {
    /// An optimizer with the paper's published models and link budget.
    pub fn paper() -> Self {
        Optimizer {
            predictor: Predictor::paper(),
        }
    }

    /// Evaluates every configuration of the grid.
    pub fn evaluate_grid(&self, grid: &ParamGrid) -> Vec<Evaluation> {
        grid.iter()
            .map(|config| Evaluation {
                config,
                predicted: self.predictor.evaluate(&config),
            })
            .collect()
    }

    /// The exact Pareto front of the grid under the given metrics
    /// (all in minimization sense). Dominated and duplicate-valued points
    /// are removed; the front is sorted by the first metric.
    ///
    /// # Panics
    ///
    /// Panics if `metrics` is empty.
    pub fn pareto_front(&self, grid: &ParamGrid, metrics: &[Metric]) -> Vec<Evaluation> {
        assert!(!metrics.is_empty(), "need at least one metric");
        let evals = self.evaluate_grid(grid);
        let values: Vec<Vec<f64>> = evals
            .iter()
            .map(|e| metrics.iter().map(|m| m.value(&e.predicted)).collect())
            .collect();
        let mut front = pareto_front_indices(&values);
        front.sort_by(|&a, &b| {
            values[a][0]
                .partial_cmp(&values[b][0])
                .expect("finite values compare")
        });
        front.into_iter().map(|i| evals[i]).collect()
    }

    /// The epsilon-constraint method: minimizes `objective` subject to
    /// `metric ≤ epsilon` for every `(metric, epsilon)` constraint.
    /// Returns `None` when no grid point is feasible.
    pub fn epsilon_constraint(
        &self,
        grid: &ParamGrid,
        objective: Metric,
        constraints: &[(Metric, f64)],
    ) -> Option<Evaluation> {
        self.evaluate_grid(grid)
            .into_iter()
            .filter(|e| {
                constraints
                    .iter()
                    .all(|(m, eps)| m.value(&e.predicted) <= *eps)
            })
            .filter(|e| objective.value(&e.predicted).is_finite())
            .min_by(|a, b| {
                objective
                    .value(&a.predicted)
                    .partial_cmp(&objective.value(&b.predicted))
                    .expect("finite objective values compare")
            })
    }

    /// The paper's case-study formulation (Sec. VIII-B): maximize goodput
    /// while keeping the energy per bit within `slack` (e.g. 1.1 = 10 %)
    /// of the best energy achievable anywhere on the grid.
    ///
    /// # Panics
    ///
    /// Panics if `slack < 1.0`.
    pub fn joint_energy_goodput(&self, grid: &ParamGrid, slack: f64) -> Option<Evaluation> {
        assert!(slack >= 1.0, "slack must be >= 1.0, got {slack}");
        let best_energy = self
            .evaluate_grid(grid)
            .into_iter()
            .map(|e| e.predicted.u_eng_uj_per_bit)
            .filter(|u| u.is_finite())
            .fold(f64::INFINITY, f64::min);
        if !best_energy.is_finite() {
            return None;
        }
        self.epsilon_constraint(
            grid,
            Metric::Goodput,
            &[(Metric::Energy, best_energy * slack)],
        )
    }

    /// Weighted-sum scalarization: minimizes `Σ wᵢ · norm(Mᵢ)` where each
    /// metric is min–max normalized over the grid. A standard cross-check
    /// for the epsilon-constraint method: with positive weights the
    /// minimizer always lies on the Pareto front.
    ///
    /// Returns `None` for an empty grid or when no point has finite
    /// values on every metric.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is non-positive.
    pub fn weighted_sum(&self, grid: &ParamGrid, weights: &[(Metric, f64)]) -> Option<Evaluation> {
        assert!(!weights.is_empty(), "need at least one weighted metric");
        assert!(
            weights.iter().all(|(_, w)| *w > 0.0 && w.is_finite()),
            "weights must be positive and finite"
        );
        let evals = self.evaluate_grid(grid);
        let values: Vec<Vec<f64>> = evals
            .iter()
            .map(|e| weights.iter().map(|(m, _)| m.value(&e.predicted)).collect())
            .collect();
        // Min-max bounds per metric over finite points.
        let k = weights.len();
        let mut lo = vec![f64::INFINITY; k];
        let mut hi = vec![f64::NEG_INFINITY; k];
        for v in &values {
            if v.iter().all(|x| x.is_finite()) {
                for i in 0..k {
                    lo[i] = lo[i].min(v[i]);
                    hi[i] = hi[i].max(v[i]);
                }
            }
        }
        let mut best: Option<(usize, f64)> = None;
        for (idx, v) in values.iter().enumerate() {
            if !v.iter().all(|x| x.is_finite()) {
                continue;
            }
            let score: f64 = (0..k)
                .map(|i| {
                    let span = hi[i] - lo[i];
                    let norm = if span > 0.0 {
                        (v[i] - lo[i]) / span
                    } else {
                        0.0
                    };
                    weights[i].1 * norm
                })
                .sum();
            if best.is_none_or(|(_, s)| score < s) {
                best = Some((idx, score));
            }
        }
        best.map(|(idx, _)| evals[idx])
    }

    /// The knee point of a two-metric Pareto front: the member with the
    /// greatest normalized distance below the chord between the front's
    /// endpoints — the "best bang for the buck" compromise.
    ///
    /// Returns `None` when the front has fewer than three points (no
    /// interior point to pick).
    pub fn knee_point(&self, grid: &ParamGrid, metrics: [Metric; 2]) -> Option<Evaluation> {
        let front = self.pareto_front(grid, &metrics);
        let xy: Vec<(f64, f64)> = front
            .iter()
            .map(|e| {
                (
                    metrics[0].value(&e.predicted),
                    metrics[1].value(&e.predicted),
                )
            })
            .collect();
        knee_of_front(&xy).map(|i| front[i])
    }
}

/// The knee index of a two-metric Pareto front sorted by its first
/// coordinate: the member with the greatest normalized distance below the
/// chord between the front's endpoints. Returns `None` when the front has
/// fewer than three points (no interior point to pick).
pub fn knee_of_front(xy: &[(f64, f64)]) -> Option<usize> {
    if xy.len() < 3 {
        return None;
    }
    let (x0, y0) = xy[0];
    let (x1, y1) = xy[xy.len() - 1];
    let span_x = (x1 - x0).abs().max(f64::MIN_POSITIVE);
    let span_y = (y0 - y1).abs().max(f64::MIN_POSITIVE);
    let mut best: Option<(usize, f64)> = None;
    for (i, &(x, y)) in xy.iter().enumerate().skip(1).take(xy.len() - 2) {
        // Normalized signed distance below the chord.
        let tx = (x - x0) / span_x;
        let chord_y = y0 + (y1 - y0) * tx.clamp(0.0, 1.0);
        let dist = (chord_y - y) / span_y;
        if best.is_none_or(|(_, d)| dist > d) {
            best = Some((i, dist));
        }
    }
    best.map(|(i, _)| i)
}

/// Indices of the exact Pareto front of `values` (each row one candidate's
/// metric vector, all in minimization sense), ascending. Rows with any
/// non-finite coordinate never join the front; among duplicate-valued rows
/// only the first survives. Candidates are compared incrementally against
/// the running front, so the cost is `O(n · |front|)` rather than `O(n²)`.
pub fn pareto_front_indices(values: &[Vec<f64>]) -> Vec<usize> {
    let mut front: Vec<usize> = Vec::new();
    'candidate: for (i, v) in values.iter().enumerate() {
        if v.iter().any(|x| !x.is_finite()) {
            continue;
        }
        let mut j = 0;
        while j < front.len() {
            let f = &values[front[j]];
            if dominates(f, v) || f == v {
                continue 'candidate;
            }
            if dominates(v, f) {
                front.swap_remove(j);
            } else {
                j += 1;
            }
        }
        front.push(i);
    }
    front.sort_unstable();
    front
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer::paper()
    }
}

/// True if `a` Pareto-dominates `b` (all coordinates ≤, at least one <).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small grid on the 35 m link (the paper's case-study distance).
    fn small_grid() -> ParamGrid {
        ParamGrid {
            distances_m: vec![35.0],
            power_levels: vec![3, 11, 19, 23, 31],
            max_tries: vec![1, 3, 8],
            retry_delays_ms: vec![0],
            queue_caps: vec![30],
            packet_intervals_ms: vec![30],
            payloads: vec![5, 35, 68, 110, 114],
        }
    }

    #[test]
    fn dominates_is_strict() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 1.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 1.0]));
    }

    #[test]
    fn front_members_are_mutually_non_dominated() {
        let opt = Optimizer::paper();
        let metrics = [Metric::Energy, Metric::Goodput];
        let front = opt.pareto_front(&small_grid(), &metrics);
        assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                let va: Vec<f64> = metrics.iter().map(|m| m.value(&a.predicted)).collect();
                let vb: Vec<f64> = metrics.iter().map(|m| m.value(&b.predicted)).collect();
                assert!(!dominates(&va, &vb), "front member dominated");
            }
        }
    }

    #[test]
    fn front_dominates_or_ties_everything_else() {
        let opt = Optimizer::paper();
        let metrics = [Metric::Energy, Metric::Goodput];
        let grid = small_grid();
        let front = opt.pareto_front(&grid, &metrics);
        for e in opt.evaluate_grid(&grid) {
            let ve: Vec<f64> = metrics.iter().map(|m| m.value(&e.predicted)).collect();
            if !ve.iter().all(|v| v.is_finite()) {
                continue;
            }
            let covered = front.iter().any(|f| {
                let vf: Vec<f64> = metrics.iter().map(|m| m.value(&f.predicted)).collect();
                dominates(&vf, &ve) || vf == ve
            });
            assert!(covered, "grid point not covered by the front");
        }
    }

    #[test]
    fn epsilon_constraint_respects_constraints() {
        let opt = Optimizer::paper();
        let best = opt
            .epsilon_constraint(&small_grid(), Metric::Goodput, &[(Metric::Energy, 0.5)])
            .unwrap();
        assert!(best.predicted.u_eng_uj_per_bit <= 0.5);
        // Unconstrained goodput optimum is at least as fast.
        let unconstrained = opt
            .epsilon_constraint(&small_grid(), Metric::Goodput, &[])
            .unwrap();
        assert!(unconstrained.predicted.max_goodput_bps >= best.predicted.max_goodput_bps);
    }

    #[test]
    fn epsilon_constraint_infeasible_returns_none() {
        let opt = Optimizer::paper();
        assert!(opt
            .epsilon_constraint(&small_grid(), Metric::Goodput, &[(Metric::Energy, 1e-9)])
            .is_none());
    }

    #[test]
    fn joint_energy_goodput_beats_naive_min_payload() {
        let opt = Optimizer::paper();
        let grid = small_grid();
        let joint = opt.joint_energy_goodput(&grid, 1.15).unwrap();
        // Compare against the minimum-payload single-tuning point at the
        // same distance (the paper's worst baseline).
        let naive = StackConfig::builder()
            .distance_m(35.0)
            .power_level(23)
            .payload_bytes(5)
            .max_tries(1)
            .packet_interval_ms(30)
            .queue_cap(30)
            .retry_delay_ms(0)
            .build()
            .unwrap();
        let naive_pred = opt.predictor.evaluate(&naive);
        assert!(joint.predicted.max_goodput_bps > naive_pred.max_goodput_bps * 2.0);
    }

    #[test]
    fn metric_display_value_restores_sign() {
        let p = Predictor::paper();
        let pred = p.evaluate(&StackConfig::default());
        assert_eq!(Metric::Goodput.display_value(&pred), pred.max_goodput_bps);
        assert_eq!(Metric::Energy.display_value(&pred), pred.u_eng_uj_per_bit);
    }

    #[test]
    #[should_panic(expected = "at least one metric")]
    fn empty_metric_list_panics() {
        let opt = Optimizer::paper();
        let _ = opt.pareto_front(&small_grid(), &[]);
    }

    #[test]
    fn epsilon_constraint_winner_always_lies_on_the_front() {
        // Property: for any objective and any constraint set, the
        // epsilon-constraint winner is Pareto-optimal over the metric set
        // {objective} ∪ {constrained metrics}. Randomized over a
        // deterministic LCG so failures reproduce.
        let opt = Optimizer::paper();
        let grid = small_grid();
        let all = [Metric::Energy, Metric::Goodput, Metric::Delay, Metric::Loss];
        let mut state: u64 = 0x9e3779b97f4a7c15;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..50 {
            let objective = all[(next() % 4) as usize];
            let mut metrics = vec![objective];
            let mut constraints = Vec::new();
            for _ in 0..(next() % 3) {
                let m = all[(next() % 4) as usize];
                // Anchor the bound to a real grid value so some runs are
                // tight and some loose, but most are feasible.
                let anchor = opt
                    .evaluate_grid(&grid)
                    .into_iter()
                    .map(|e| m.value(&e.predicted))
                    .filter(|v| v.is_finite())
                    .nth((next() % 20) as usize)
                    .unwrap_or(f64::INFINITY);
                constraints.push((m, anchor * (1.0 + f64::from(next() % 10) / 100.0)));
                if !metrics.contains(&m) {
                    metrics.push(m);
                }
            }
            let Some(winner) = opt.epsilon_constraint(&grid, objective, &constraints) else {
                continue;
            };
            // Epsilon-constraint optima are weakly Pareto optimal: under
            // objective ties the grid-order pick may be dominated in the
            // secondary metrics, but a feasible front member always
            // attains the same objective value.
            let wobj = objective.value(&winner.predicted);
            let front = opt.pareto_front(&grid, &metrics);
            assert!(
                front.iter().any(|f| {
                    objective.value(&f.predicted) == wobj
                        && constraints
                            .iter()
                            .all(|(m, eps)| m.value(&f.predicted) <= *eps)
                }),
                "winner objective {wobj} for {objective:?} s.t. {constraints:?} \
                 is not attained on the front"
            );
        }
    }

    #[test]
    fn pareto_front_indices_rejects_non_finite_and_keeps_first_duplicate() {
        let values = vec![
            vec![1.0, 4.0],
            vec![2.0, f64::NAN],
            vec![1.0, 4.0],           // duplicate of row 0
            vec![0.5, f64::INFINITY], // non-finite never joins
            vec![3.0, 1.0],
            vec![2.0, 2.0],
            vec![4.0, 4.0], // dominated by rows 0 and 5
        ];
        assert_eq!(pareto_front_indices(&values), vec![0, 4, 5]);
        // A later candidate evicts an earlier front member it dominates.
        let evict = vec![vec![2.0, 2.0], vec![1.0, 1.0]];
        assert_eq!(pareto_front_indices(&evict), vec![1]);
    }

    #[test]
    fn knee_of_front_matches_knee_point() {
        let opt = Optimizer::paper();
        let grid = small_grid();
        let metrics = [Metric::Energy, Metric::Goodput];
        let front = opt.pareto_front(&grid, &metrics);
        let xy: Vec<(f64, f64)> = front
            .iter()
            .map(|e| {
                (
                    metrics[0].value(&e.predicted),
                    metrics[1].value(&e.predicted),
                )
            })
            .collect();
        match opt.knee_point(&grid, metrics) {
            Some(knee) => {
                let i = knee_of_front(&xy).expect("interior point");
                assert_eq!(front[i].config, knee.config);
            }
            None => assert!(knee_of_front(&xy).is_none()),
        }
        assert!(knee_of_front(&[(0.0, 1.0), (1.0, 0.0)]).is_none());
    }

    #[test]
    fn weighted_sum_minimizer_is_on_the_pareto_front() {
        let opt = Optimizer::paper();
        let grid = small_grid();
        let metrics = [Metric::Energy, Metric::Goodput];
        let front = opt.pareto_front(&grid, &metrics);
        for weights in [
            [(Metric::Energy, 1.0), (Metric::Goodput, 1.0)],
            [(Metric::Energy, 5.0), (Metric::Goodput, 1.0)],
            [(Metric::Energy, 1.0), (Metric::Goodput, 5.0)],
        ] {
            let best = opt.weighted_sum(&grid, &weights).expect("non-empty grid");
            let bv: Vec<f64> = metrics.iter().map(|m| m.value(&best.predicted)).collect();
            let on_front = front.iter().any(|f| {
                let fv: Vec<f64> = metrics.iter().map(|m| m.value(&f.predicted)).collect();
                fv == bv
            });
            assert!(on_front, "weighted-sum optimum off the front: {bv:?}");
        }
    }

    #[test]
    fn weighted_sum_follows_the_weights() {
        let opt = Optimizer::paper();
        let grid = small_grid();
        let energy_heavy = opt
            .weighted_sum(&grid, &[(Metric::Energy, 100.0), (Metric::Goodput, 1.0)])
            .unwrap();
        let goodput_heavy = opt
            .weighted_sum(&grid, &[(Metric::Energy, 1.0), (Metric::Goodput, 100.0)])
            .unwrap();
        assert!(
            energy_heavy.predicted.u_eng_uj_per_bit <= goodput_heavy.predicted.u_eng_uj_per_bit
        );
        assert!(goodput_heavy.predicted.max_goodput_bps >= energy_heavy.predicted.max_goodput_bps);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_sum_rejects_non_positive_weights() {
        let opt = Optimizer::paper();
        let _ = opt.weighted_sum(&small_grid(), &[(Metric::Energy, 0.0)]);
    }

    #[test]
    fn knee_point_is_an_interior_front_member() {
        let opt = Optimizer::paper();
        let grid = small_grid();
        let metrics = [Metric::Energy, Metric::Goodput];
        let front = opt.pareto_front(&grid, &metrics);
        if front.len() < 3 {
            return; // degenerate front: nothing to assert
        }
        let knee = opt.knee_point(&grid, metrics).expect("front has interior");
        let kv = (
            Metric::Energy.value(&knee.predicted),
            Metric::Goodput.value(&knee.predicted),
        );
        let first = &front[0];
        let last = &front[front.len() - 1];
        assert!(front.iter().any(|f| {
            (
                Metric::Energy.value(&f.predicted),
                Metric::Goodput.value(&f.predicted),
            ) == kv
        }));
        // It is neither extreme.
        assert_ne!(knee.config, first.config);
        assert_ne!(knee.config, last.config);
    }
}
