//! From-scratch curve fitting used to re-derive the paper's model
//! constants from (simulated) measurements.
//!
//! Two fitters are provided:
//!
//! * [`fit_exp_surface`] — fits `y = α · lD · exp(β · SNR)` to a point
//!   cloud by exploiting that, for a fixed β, the optimal α has a closed
//!   form (the model is linear in α). A coarse grid over β followed by
//!   golden-section refinement gives a robust global fit without the
//!   fragility of a general Levenberg–Marquardt implementation.
//! * [`linear_fit`] — ordinary least squares for straight lines, used for
//!   the path-loss fit of Fig. 3 (`RSSI` vs `10·log10(d)`).

use serde::{Deserialize, Serialize};

use crate::surface::ExpSurface;

/// One observation for the exponential-surface fitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurfacePoint {
    /// Payload size, bytes.
    pub payload_bytes: f64,
    /// Signal-to-noise ratio, dB.
    pub snr_db: f64,
    /// Observed value (PER, `N̄tries − 1`, per-attempt loss, …).
    pub value: f64,
}

/// Result of an exponential-surface fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurfaceFit {
    /// The fitted surface.
    pub surface: ExpSurface,
    /// Residual sum of squares at the optimum.
    pub rss: f64,
    /// Number of points fitted.
    pub n: usize,
}

/// For a fixed β, the least-squares α is closed-form; returns `(alpha, rss)`.
fn best_alpha_for_beta(points: &[SurfacePoint], beta: f64) -> (f64, f64) {
    let mut num = 0.0;
    let mut den = 0.0;
    for p in points {
        let x = p.payload_bytes * (beta * p.snr_db).exp();
        num += x * p.value;
        den += x * x;
    }
    let alpha = if den > 0.0 { (num / den).max(0.0) } else { 0.0 };
    let rss = points
        .iter()
        .map(|p| {
            let pred = alpha * p.payload_bytes * (beta * p.snr_db).exp();
            (pred - p.value).powi(2)
        })
        .sum();
    (alpha, rss)
}

/// Fits `y = α · lD · exp(β · SNR)` with α ≥ 0 and β ∈ [−2, 0].
///
/// # Errors
///
/// Returns [`FitError::TooFewPoints`] with fewer than 3 points and
/// [`FitError::NonFinite`] if any coordinate is not finite.
///
/// ```
/// use wsn_models::fit::{fit_exp_surface, SurfacePoint};
///
/// // Plant the paper's Eq. 3 constants and recover them noiselessly.
/// let mut points = Vec::new();
/// for ld in [5.0, 50.0, 110.0] {
///     for snr in [6.0, 10.0, 14.0, 18.0] {
///         points.push(SurfacePoint {
///             payload_bytes: ld,
///             snr_db: snr,
///             value: 0.0128 * ld * (-0.15f64 * snr).exp(),
///         });
///     }
/// }
/// let fit = fit_exp_surface(&points)?;
/// assert!((fit.surface.alpha - 0.0128).abs() < 1e-4);
/// assert!((fit.surface.beta - -0.15).abs() < 1e-3);
/// # Ok::<(), wsn_models::fit::FitError>(())
/// ```
pub fn fit_exp_surface(points: &[SurfacePoint]) -> Result<SurfaceFit, FitError> {
    if points.len() < 3 {
        return Err(FitError::TooFewPoints {
            got: points.len(),
            need: 3,
        });
    }
    if points
        .iter()
        .any(|p| !(p.payload_bytes.is_finite() && p.snr_db.is_finite() && p.value.is_finite()))
    {
        return Err(FitError::NonFinite);
    }

    // Coarse grid over β.
    const BETA_MIN: f64 = -2.0;
    const BETA_MAX: f64 = 0.0;
    const GRID: usize = 400;
    let mut best_beta = BETA_MIN;
    let mut best_rss = f64::INFINITY;
    for i in 0..=GRID {
        let beta = BETA_MIN + (BETA_MAX - BETA_MIN) * i as f64 / GRID as f64;
        let (_, rss) = best_alpha_for_beta(points, beta);
        if rss < best_rss {
            best_rss = rss;
            best_beta = beta;
        }
    }

    // Golden-section refinement around the best grid cell.
    let step = (BETA_MAX - BETA_MIN) / GRID as f64;
    let mut lo = (best_beta - step).max(BETA_MIN);
    let mut hi = (best_beta + step).min(BETA_MAX);
    const PHI: f64 = 0.618_033_988_749_894_8;
    for _ in 0..60 {
        let m1 = hi - PHI * (hi - lo);
        let m2 = lo + PHI * (hi - lo);
        let (_, r1) = best_alpha_for_beta(points, m1);
        let (_, r2) = best_alpha_for_beta(points, m2);
        if r1 < r2 {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let beta = 0.5 * (lo + hi);
    let (alpha, rss) = best_alpha_for_beta(points, beta);
    Ok(SurfaceFit {
        surface: ExpSurface::new(alpha, beta.min(0.0)),
        rss,
        n: points.len(),
    })
}

/// Errors from the fitting routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// Not enough points to constrain the model.
    TooFewPoints {
        /// Points supplied.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// A coordinate was NaN or infinite.
    NonFinite,
}

impl core::fmt::Display for FitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FitError::TooFewPoints { got, need } => {
                write!(f, "too few points for fit: got {got}, need {need}")
            }
            FitError::NonFinite => write!(f, "non-finite coordinate in fit input"),
        }
    }
}

impl std::error::Error for FitError {}

/// An ordinary-least-squares straight-line fit `y = slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Standard deviation of the residuals.
    pub residual_std: f64,
}

/// Ordinary least squares on paired samples.
///
/// # Errors
///
/// Returns [`FitError::TooFewPoints`] with fewer than 2 points, and
/// [`FitError::NonFinite`] for NaN/∞ inputs or a degenerate (constant) x.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Result<LinearFit, FitError> {
    if x.len() != y.len() || x.len() < 2 {
        return Err(FitError::TooFewPoints {
            got: x.len().min(y.len()),
            need: 2,
        });
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return Err(FitError::NonFinite);
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|v| (v - mx).powi(2)).sum();
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    if sxx == 0.0 {
        return Err(FitError::NonFinite);
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = y.iter().map(|v| (v - my).powi(2)).sum();
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| (b - (slope * a + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Ok(LinearFit {
        slope,
        intercept,
        r_squared,
        residual_std: (ss_res / n).sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn planted_points(alpha: f64, beta: f64, noise: f64, seed: u64) -> Vec<SurfacePoint> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points = Vec::new();
        for ld in [5.0, 20.0, 50.0, 80.0, 110.0] {
            for snr in [5.0, 8.0, 11.0, 14.0, 17.0, 20.0] {
                let clean = alpha * ld * (beta * snr).exp();
                let jitter = 1.0 + noise * (rng.gen::<f64>() - 0.5);
                points.push(SurfacePoint {
                    payload_bytes: ld,
                    snr_db: snr,
                    value: clean * jitter,
                });
            }
        }
        points
    }

    #[test]
    fn recovers_planted_constants_noiselessly() {
        let fit = fit_exp_surface(&planted_points(0.02, -0.18, 0.0, 1)).unwrap();
        assert!(
            (fit.surface.alpha - 0.02).abs() < 1e-5,
            "alpha={}",
            fit.surface.alpha
        );
        assert!(
            (fit.surface.beta - -0.18).abs() < 1e-4,
            "beta={}",
            fit.surface.beta
        );
        assert!(fit.rss < 1e-12);
    }

    #[test]
    fn recovers_planted_constants_under_noise() {
        let fit = fit_exp_surface(&planted_points(0.011, -0.145, 0.2, 7)).unwrap();
        assert!(
            (fit.surface.alpha - 0.011).abs() < 0.002,
            "alpha={}",
            fit.surface.alpha
        );
        assert!(
            (fit.surface.beta - -0.145).abs() < 0.02,
            "beta={}",
            fit.surface.beta
        );
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert_eq!(
            fit_exp_surface(&[]),
            Err(FitError::TooFewPoints { got: 0, need: 3 })
        );
        let mut pts = planted_points(0.01, -0.1, 0.0, 1);
        pts[0].value = f64::NAN;
        assert_eq!(fit_exp_surface(&pts), Err(FitError::NonFinite));
    }

    #[test]
    fn linear_fit_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| -2.19 * v + 5.0).collect();
        let fit = linear_fit(&x, &y).unwrap();
        assert!((fit.slope - -2.19).abs() < 1e-12);
        assert!((fit.intercept - 5.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.residual_std < 1e-9);
    }

    #[test]
    fn linear_fit_pathloss_shape() {
        // RSSI(d) = P − 32.2 − 21.9·log10(d): fitting against 10·log10(d)
        // must recover slope −2.19 (the path-loss exponent).
        let distances = [5.0f64, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0];
        let x: Vec<f64> = distances.iter().map(|d| 10.0 * d.log10()).collect();
        let y: Vec<f64> = distances
            .iter()
            .map(|d| -3.0 - 32.2 - 21.9 * d.log10())
            .collect();
        let fit = linear_fit(&x, &y).unwrap();
        assert!((fit.slope - -2.19).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_errors() {
        assert!(linear_fit(&[1.0], &[2.0]).is_err());
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_err()); // constant x
        assert!(linear_fit(&[1.0, f64::NAN], &[2.0, 3.0]).is_err());
    }

    #[test]
    fn fit_error_display() {
        let e = FitError::TooFewPoints { got: 1, need: 3 };
        assert!(e.to_string().contains("too few"));
        assert!(FitError::NonFinite.to_string().contains("non-finite"));
    }
}
