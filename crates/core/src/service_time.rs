//! The empirical service-time model (Eqs. 5–7) and system utilization
//! (Eq. 9).
//!
//! The service time `T_service` is the interval from the MAC accepting a
//! packet to the end of its transaction. The paper decomposes it into the
//! TinyOS 2.1 timing constants (see [`wsn_mac::timing`]) plus the number of
//! transmissions:
//!
//! * success after `N` tries (Eq. 5):
//!   `T = T_SPI + T_succ + (N − 1) · T_retry`
//! * failure after `NmaxTries` tries (Eq. 6):
//!   `T = T_SPI + T_fail + (NmaxTries − 1) · T_retry`
//!
//! with `T_succ = T_MAC + T_frame + T_ACK`,
//! `T_fail = T_MAC + T_frame + T_waitACK`,
//! `T_retry = Dretry + T_MAC + T_frame + T_waitACK` and
//! `T_MAC = T_TR + T_BO`.
//!
//! The average transmission count is modeled by Eq. 7:
//! `N̄tries = 1 + α · lD · exp(β · SNR)` (α = 0.02, β = −0.18).

use serde::{Deserialize, Serialize};

use wsn_mac::timing;
use wsn_params::config::StackConfig;
use wsn_params::types::{MaxTries, PayloadSize, RetryDelay};

use crate::constants::PaperConstants;
use crate::surface::ExpSurface;

/// The empirical service-time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceTimeModel {
    /// Eq. 7 surface for `N̄tries − 1`.
    pub ntries: ExpSurface,
    /// Per-attempt radio failure probability surface (the base of Eq. 8),
    /// used for the exact truncated-geometric expectation.
    pub attempt_loss: ExpSurface,
}

impl ServiceTimeModel {
    /// The model with the paper's published constants.
    pub fn paper() -> Self {
        let c = PaperConstants::published();
        ServiceTimeModel {
            ntries: c.ntries,
            attempt_loss: c.plr_radio,
        }
    }

    /// Mean number of transmissions `N̄tries` (Eq. 7), **uncapped** — this
    /// is the quantity Fig. 11 plots.
    pub fn mean_tries(&self, snr_db: f64, payload: PayloadSize) -> f64 {
        1.0 + self.ntries.eval(payload, snr_db)
    }

    /// `T_MAC = T_TR + T_BO` (turnaround + average initial backoff), s.
    pub fn t_mac_s(&self) -> f64 {
        timing::TURNAROUND.as_secs_f64() + timing::MEAN_INITIAL_BACKOFF.as_secs_f64()
    }

    /// `T_succ` for a payload, seconds.
    pub fn t_succ_s(&self, payload: PayloadSize) -> f64 {
        self.t_mac_s()
            + timing::frame_time(payload).as_secs_f64()
            + timing::ACK_RECEIVE.as_secs_f64()
    }

    /// `T_fail` for a payload, seconds.
    pub fn t_fail_s(&self, payload: PayloadSize) -> f64 {
        self.t_mac_s()
            + timing::frame_time(payload).as_secs_f64()
            + timing::ACK_TIMEOUT.as_secs_f64()
    }

    /// `T_retry` for a payload and retry delay, seconds.
    pub fn t_retry_s(&self, payload: PayloadSize, retry_delay: RetryDelay) -> f64 {
        retry_delay.as_secs_f64()
            + self.t_mac_s()
            + timing::frame_time(payload).as_secs_f64()
            + timing::ACK_TIMEOUT.as_secs_f64()
    }

    /// `T_SPI` for a payload, seconds.
    pub fn t_spi_s(&self, payload: PayloadSize) -> f64 {
        timing::spi_load(payload).as_secs_f64()
    }

    /// Eq. 5 with a (possibly fractional) transmission count plugged in —
    /// the paper's own way of turning Eq. 7 into an average service time.
    ///
    /// `tries` is clamped to `[1, max_tries]`.
    pub fn plugin_service_time_s(
        &self,
        snr_db: f64,
        payload: PayloadSize,
        max_tries: MaxTries,
        retry_delay: RetryDelay,
    ) -> f64 {
        let tries = self
            .mean_tries(snr_db, payload)
            .clamp(1.0, max_tries.get() as f64);
        self.t_spi_s(payload)
            + self.t_succ_s(payload)
            + (tries - 1.0) * self.t_retry_s(payload, retry_delay)
    }

    /// Exact expected service time under a truncated-geometric attempt
    /// process: each attempt independently fails with probability
    /// `p = attempt_loss(lD, SNR)`, the budget is `NmaxTries`.
    pub fn expected_service_time_s(
        &self,
        snr_db: f64,
        payload: PayloadSize,
        max_tries: MaxTries,
        retry_delay: RetryDelay,
    ) -> f64 {
        let p = self.attempt_loss.eval_prob(payload, snr_db);
        let q = 1.0 - p;
        let n = max_tries.get() as u32;
        let t_spi = self.t_spi_s(payload);
        let t_succ = self.t_succ_s(payload);
        let t_fail = self.t_fail_s(payload);
        let t_retry = self.t_retry_s(payload, retry_delay);

        let mut expectation = t_spi;
        let mut p_pow = 1.0; // p^(k-1)
        for k in 1..=n {
            let p_success_at_k = p_pow * q;
            expectation += p_success_at_k * (t_succ + (k - 1) as f64 * t_retry);
            p_pow *= p;
        }
        // p_pow is now p^n: the all-attempts-failed branch (Eq. 6).
        expectation += p_pow * (t_fail + (n - 1) as f64 * t_retry);
        expectation
    }

    /// System utilization `ρ = T̄service / Tpkt` (Eq. 9) for a full stack
    /// configuration at a given link quality, using the paper's plug-in
    /// service time.
    pub fn utilization(&self, snr_db: f64, config: &StackConfig) -> f64 {
        let t_service = self.plugin_service_time_s(
            snr_db,
            config.payload,
            config.max_tries,
            config.retry_delay,
        );
        t_service / config.packet_interval.as_secs_f64()
    }

    /// Expected per-packet transmissions including failed packets, capped
    /// by the budget (what a long simulation actually averages).
    pub fn expected_attempts(&self, snr_db: f64, payload: PayloadSize, max_tries: MaxTries) -> f64 {
        let p = self.attempt_loss.eval_prob(payload, snr_db);
        let n = max_tries.get() as u32;
        // E[attempts] = sum_{k=1}^{n} p^(k-1)  (standard truncated geometric)
        let mut total = 0.0;
        let mut p_pow = 1.0;
        for _ in 1..=n {
            total += p_pow;
            p_pow *= p;
        }
        total
    }
}

impl Default for ServiceTimeModel {
    fn default() -> Self {
        ServiceTimeModel::paper()
    }
}

/// Distribution of the truncated-geometric attempt count that underlies
/// Eqs. 5–7: each attempt independently succeeds with probability
/// `p_success`, the budget is `max_tries`.
///
/// Returns `(pmf, p_exhausted)` where `pmf[k-1]` is the probability the
/// sender stops at attempt `k` with a success, and `p_exhausted` is the
/// probability all `max_tries` attempts are spent without one. The masses
/// sum to 1; the analytic engine mixes per-attempt service times over
/// exactly these weights instead of drawing the attempt count.
pub fn attempt_count_pmf(p_success: f64, max_tries: u32) -> (Vec<f64>, f64) {
    assert!(
        (0.0..=1.0).contains(&p_success),
        "success probability must be in [0, 1], got {p_success}"
    );
    assert!(max_tries >= 1, "at least one attempt is always made");
    let fail = 1.0 - p_success;
    let mut pmf = Vec::with_capacity(max_tries as usize);
    let mut fail_pow = 1.0; // (1-p)^(k-1)
    for _ in 1..=max_tries {
        pmf.push(fail_pow * p_success);
        fail_pow *= fail;
    }
    (pmf, fail_pow)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(b: u16) -> PayloadSize {
        PayloadSize::new(b).unwrap()
    }
    fn mt(n: u8) -> MaxTries {
        MaxTries::new(n).unwrap()
    }

    #[test]
    fn attempt_pmf_sums_to_one_and_matches_expected_attempts() {
        let m = ServiceTimeModel::paper();
        for (snr, tries) in [(5.0, 1u8), (10.0, 3), (20.0, 8)] {
            let p_fail = m.attempt_loss.eval_prob(pl(110), snr);
            let (pmf, p_exhausted) = attempt_count_pmf(1.0 - p_fail, tries as u32);
            let total: f64 = pmf.iter().sum::<f64>() + p_exhausted;
            assert!((total - 1.0).abs() < 1e-12, "mass={total}");
            // E[attempts] under the pmf must agree with the closed form.
            let e_attempts: f64 = pmf
                .iter()
                .enumerate()
                .map(|(i, w)| w * (i + 1) as f64)
                .sum::<f64>()
                + p_exhausted * tries as f64;
            let closed = m.expected_attempts(snr, pl(110), mt(tries));
            assert!(
                (e_attempts - closed).abs() < 1e-12,
                "{e_attempts} vs {closed}"
            );
        }
    }

    #[test]
    fn mean_tries_matches_eq7() {
        let m = ServiceTimeModel::paper();
        let expected = 1.0 + 0.02 * 110.0 * (-0.18f64 * 20.0).exp();
        assert!((m.mean_tries(20.0, pl(110)) - expected).abs() < 1e-12);
    }

    #[test]
    fn t_mac_is_5_504_ms() {
        let m = ServiceTimeModel::paper();
        assert!((m.t_mac_s() - 5.504e-3).abs() < 1e-12);
    }

    #[test]
    fn table_ii_row_snr20_is_close() {
        // Paper Table II: Tpkt=30 ms, SNR=20 dB, lD=110, NmaxTries=3
        // → T_service = 21.39 ms, ρ = 0.713.
        let m = ServiceTimeModel::paper();
        let cfg = StackConfig::builder()
            .payload_bytes(110)
            .max_tries(3)
            .retry_delay_ms(30)
            .packet_interval_ms(30)
            .build()
            .unwrap();
        let t = m.plugin_service_time_s(20.0, cfg.payload, cfg.max_tries, cfg.retry_delay);
        assert!((t * 1e3 - 21.39).abs() < 1.5, "T_service={}ms", t * 1e3);
        let rho = m.utilization(20.0, &cfg);
        assert!((rho - 0.713).abs() < 0.06, "rho={rho}");
    }

    #[test]
    fn table_ii_row_snr10_exceeds_capacity() {
        // Paper: SNR=10 dB row has ρ = 1.236 > 1 (queue blows up).
        let m = ServiceTimeModel::paper();
        let cfg = StackConfig::builder()
            .payload_bytes(110)
            .max_tries(3)
            .retry_delay_ms(30)
            .packet_interval_ms(30)
            .build()
            .unwrap();
        let rho = m.utilization(10.0, &cfg);
        assert!(rho > 1.0, "rho={rho}");
        assert!(rho < 1.6, "rho={rho}");
    }

    #[test]
    fn table_ii_rho_ordering_matches() {
        let m = ServiceTimeModel::paper();
        let cfg = StackConfig::builder()
            .payload_bytes(110)
            .max_tries(3)
            .retry_delay_ms(30)
            .packet_interval_ms(30)
            .build()
            .unwrap();
        let rho10 = m.utilization(10.0, &cfg);
        let rho20 = m.utilization(20.0, &cfg);
        let rho30 = m.utilization(30.0, &cfg);
        assert!(rho10 > rho20 && rho20 > rho30);
        // At SNR 30 the paper reports 0.617.
        assert!((rho30 - 0.617).abs() < 0.06, "rho30={rho30}");
    }

    #[test]
    fn service_time_grows_with_payload_and_falls_with_snr() {
        let m = ServiceTimeModel::paper();
        let t_small = m.plugin_service_time_s(15.0, pl(5), mt(3), RetryDelay::from_millis(30));
        let t_large = m.plugin_service_time_s(15.0, pl(110), mt(3), RetryDelay::from_millis(30));
        assert!(t_large > t_small);
        let t_low = m.plugin_service_time_s(6.0, pl(110), mt(3), RetryDelay::from_millis(30));
        let t_high = m.plugin_service_time_s(25.0, pl(110), mt(3), RetryDelay::from_millis(30));
        assert!(t_low > t_high);
    }

    #[test]
    fn exact_expectation_close_to_plugin_at_high_snr() {
        let m = ServiceTimeModel::paper();
        let exact = m.expected_service_time_s(25.0, pl(110), mt(3), RetryDelay::ZERO);
        let plugin = m.plugin_service_time_s(25.0, pl(110), mt(3), RetryDelay::ZERO);
        assert!(
            (exact - plugin).abs() / plugin < 0.05,
            "{exact} vs {plugin}"
        );
    }

    #[test]
    fn single_attempt_has_no_retry_term() {
        let m = ServiceTimeModel::paper();
        let t = m.expected_service_time_s(10.0, pl(50), mt(1), RetryDelay::from_millis(100));
        let p = m.attempt_loss.eval_prob(pl(50), 10.0);
        let expected = m.t_spi_s(pl(50)) + (1.0 - p) * m.t_succ_s(pl(50)) + p * m.t_fail_s(pl(50));
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn expected_attempts_bounds() {
        let m = ServiceTimeModel::paper();
        // Perfect channel: exactly 1 attempt.
        assert!((m.expected_attempts(60.0, pl(5), mt(8)) - 1.0).abs() < 1e-3);
        // Dead channel (PER=1): exactly the budget.
        assert!((m.expected_attempts(-60.0, pl(114), mt(8)) - 8.0).abs() < 1e-9);
        // In between, monotone in the budget.
        let a3 = m.expected_attempts(8.0, pl(110), mt(3));
        let a8 = m.expected_attempts(8.0, pl(110), mt(8));
        assert!(a8 > a3 && a3 > 1.0);
    }
}
