//! Budgeted parameter-space exploration (the APEX direction).
//!
//! The paper answers its Sec. VIII-B optimization instances by exhaustive
//! evaluation — affordable with the closed-form models, but not with
//! per-candidate simulation or on grids larger than Table I's. This module
//! provides the budget-bounded alternative: [`explore_grid`] spends at most
//! `budget` candidate evaluations on a [`ParamGrid`] and combines three
//! deterministic strategies:
//!
//! 1. **Sweep** — a coprime-stride (low-discrepancy) sample of the grid,
//!    spending about half the budget, so every axis is covered without the
//!    aliasing a plain `n/k` stride suffers on the lexicographic index.
//! 2. **Successive halving** — the best swept candidates seed a pool whose
//!    members are refined by evaluating their axis neighbors; after each
//!    round only the better half survives.
//! 3. **Local search** — plain hill climbing on the axis neighborhood of
//!    the incumbent until no neighbor improves or the budget runs out.
//!
//! The evaluator is a caller-supplied closure (closed-form predictor,
//! memoized analytic engine, seeded fast simulation, …) returning the
//! objective in minimization sense, `None` for infeasible candidates, or
//! an error to abort the whole search — which is how a serving layer
//! threads a cooperative deadline through the scan. Each grid index is
//! evaluated at most once and counted once; repeat visits hit the memo.

use std::collections::HashMap;

use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;

/// How many of the best swept candidates seed the halving pool.
const POOL_SEEDS: usize = 8;

/// The outcome of a budgeted search: the winning grid index plus the
/// evaluation ledger that proves the budget was honored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreOutcome {
    /// Lexicographic grid index of the best feasible candidate found.
    pub best_index: usize,
    /// Its objective value, in minimization sense.
    pub best_value: f64,
    /// Total candidate evaluations spent (unique grid indices; never
    /// exceeds the budget).
    pub evaluations: u64,
    /// Evaluations spent by the stride sweep.
    pub swept: u64,
    /// Evaluations spent by successive halving of the seed pool.
    pub refined: u64,
    /// Evaluations spent by the final local search.
    pub local: u64,
}

/// Mixed-radix axis view of a [`ParamGrid`], payload fastest — the same
/// order as [`ParamGrid::config_at`].
struct Axes {
    lens: [usize; 7],
}

impl Axes {
    fn of(grid: &ParamGrid) -> Self {
        Axes {
            lens: [
                grid.payloads.len(),
                grid.packet_intervals_ms.len(),
                grid.queue_caps.len(),
                grid.retry_delays_ms.len(),
                grid.max_tries.len(),
                grid.power_levels.len(),
                grid.distances_m.len(),
            ],
        }
    }

    fn decode(&self, index: usize) -> [usize; 7] {
        let mut rest = index;
        let mut coords = [0usize; 7];
        for (c, &len) in coords.iter_mut().zip(&self.lens) {
            *c = rest % len;
            rest /= len;
        }
        coords
    }

    fn encode(&self, coords: &[usize; 7]) -> usize {
        let mut index = 0usize;
        for (&c, &len) in coords.iter().zip(&self.lens).rev() {
            index = index * len + c;
        }
        index
    }

    /// Grid indices one step away along each axis (at most 14).
    fn neighbors(&self, index: usize) -> Vec<usize> {
        let coords = self.decode(index);
        let mut out = Vec::with_capacity(14);
        for axis in 0..7 {
            if coords[axis] > 0 {
                let mut c = coords;
                c[axis] -= 1;
                out.push(self.encode(&c));
            }
            if coords[axis] + 1 < self.lens[axis] {
                let mut c = coords;
                c[axis] += 1;
                out.push(self.encode(&c));
            }
        }
        out
    }
}

/// The smallest integer `>= near` coprime to `n` (for the sweep stride).
fn coprime_step(n: usize, near: usize) -> usize {
    fn gcd(mut a: usize, mut b: usize) -> usize {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    }
    let mut s = near.max(1);
    while gcd(s, n) != 1 {
        s += 1;
    }
    s
}

/// Runs the budgeted three-phase search over `grid`, spending at most
/// `budget` evaluations of `eval`.
///
/// `eval` receives the lexicographic grid index and the configuration and
/// returns the objective value in minimization sense (`None` marks the
/// candidate infeasible; non-finite values are treated the same). Returns
/// `Ok(None)` when the grid is empty, the budget is zero, or no feasible
/// candidate was found within budget.
///
/// # Errors
///
/// Propagates the first error `eval` returns, aborting the search — the
/// hook for cooperative deadline enforcement.
pub fn explore_grid<F, E>(
    grid: &ParamGrid,
    budget: u64,
    mut eval: F,
) -> Result<Option<ExploreOutcome>, E>
where
    F: FnMut(usize, &StackConfig) -> Result<Option<f64>, E>,
{
    let n = grid.len();
    if n == 0 || budget == 0 {
        return Ok(None);
    }
    let axes = Axes::of(grid);
    let mut memo: HashMap<usize, Option<f64>> = HashMap::new();
    let mut evaluations: u64 = 0;
    let mut best: Option<(usize, f64)> = None;

    // probe(idx) → Ok(Some(value)) once known, Ok(None) when the budget is
    // spent; `fresh` distinguishes a paid evaluation from a memo hit.
    let mut probe = |idx: usize,
                     counter: &mut u64,
                     best: &mut Option<(usize, f64)>|
     -> Result<Option<Option<f64>>, E> {
        let v = match memo.get(&idx) {
            Some(v) => *v,
            None => {
                if evaluations >= budget {
                    return Ok(None);
                }
                evaluations += 1;
                *counter += 1;
                let v = eval(idx, &grid.config_at(idx))?.filter(|x| x.is_finite());
                memo.insert(idx, v);
                v
            }
        };
        // Memo hits update the slot too: a later phase must see values an
        // earlier phase already paid for.
        if let Some(v) = v {
            if best.is_none_or(|(_, b)| v < b) {
                *best = Some((idx, v));
            }
        }
        Ok(Some(v))
    };

    // Phase 1: coprime-stride sweep over about half the budget.
    let mut swept: u64 = 0;
    let target = ((budget / 2).max(1) as usize).min(n);
    let step = coprime_step(n, (n * 61) / 100);
    let mut pool: Vec<(usize, f64)> = Vec::new();
    let mut at = 0usize;
    for _ in 0..target {
        match probe(at, &mut swept, &mut best)? {
            Some(Some(v)) => pool.push((at, v)),
            Some(None) => {}
            None => break,
        }
        at = (at + step) % n;
    }

    // Phase 2: successive halving of the best seeds' neighborhoods.
    let mut refined: u64 = 0;
    pool.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
    pool.truncate(POOL_SEEDS);
    'halving: while pool.len() > 1 {
        let mut round: Vec<(usize, f64)> = Vec::with_capacity(pool.len());
        for &(idx, v) in &pool {
            let mut champ = (idx, v);
            for nb in axes.neighbors(idx) {
                match probe(nb, &mut refined, &mut best)? {
                    Some(Some(nv)) if nv < champ.1 => champ = (nb, nv),
                    Some(_) => {}
                    // Budget spent mid-round: the incumbent is already
                    // tracked through the probe slot, so just stop.
                    None => break 'halving,
                }
            }
            round.push(champ);
        }
        round.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
        round.dedup_by_key(|c| c.0);
        round.truncate((round.len() / 2).max(1));
        pool = round;
    }

    // Phase 3: hill climbing from the incumbent.
    let mut local: u64 = 0;
    if let Some((mut bi, mut bv)) = best {
        loop {
            let mut improved: Option<(usize, f64)> = None;
            let mut exhausted = false;
            for nb in axes.neighbors(bi) {
                match probe(nb, &mut local, &mut improved)? {
                    Some(_) => {}
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            }
            match improved {
                Some((i, v)) if v < bv => {
                    bi = i;
                    bv = v;
                }
                _ => break,
            }
            if exhausted {
                break;
            }
        }
        // The climb starts at the incumbent and only ever improves.
        best = Some((bi, bv));
    }

    Ok(best.map(|(best_index, best_value)| ExploreOutcome {
        best_index,
        best_value,
        evaluations,
        swept,
        refined,
        local,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ParamGrid {
        ParamGrid {
            distances_m: vec![35.0],
            ..ParamGrid::paper()
        }
    }

    /// A deterministic synthetic objective with a unique optimum.
    fn objective(idx: usize, n: usize) -> f64 {
        let x = idx as f64 / n as f64;
        (x - 0.37).powi(2)
    }

    #[test]
    fn never_exceeds_the_budget_and_counts_match() {
        let g = grid();
        let n = g.len();
        for budget in [1u64, 7, 64, 500, 10_000, 100_000] {
            let mut calls = 0u64;
            let out = explore_grid(&g, budget, |idx, _cfg| {
                calls += 1;
                Ok::<_, ()>(Some(objective(idx, n)))
            })
            .unwrap()
            .expect("feasible grid");
            assert!(calls <= budget, "budget {budget}: {calls} calls");
            assert_eq!(out.evaluations, calls);
            assert_eq!(out.evaluations, out.swept + out.refined + out.local);
            assert!(out.evaluations <= n as u64, "memo dedups repeat visits");
        }
    }

    #[test]
    fn is_deterministic() {
        let g = grid();
        let n = g.len();
        let run = || {
            explore_grid(&g, 300, |idx, _| Ok::<_, ()>(Some(objective(idx, n))))
                .unwrap()
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn full_budget_matches_the_exhaustive_winner() {
        let g = grid();
        let n = g.len();
        let out = explore_grid(&g, n as u64, |idx, _| Ok::<_, ()>(Some(objective(idx, n))))
            .unwrap()
            .unwrap();
        let exhaustive = (0..n)
            .min_by(|&a, &b| {
                objective(a, n)
                    .partial_cmp(&objective(b, n))
                    .expect("finite")
            })
            .unwrap();
        assert_eq!(out.best_index, exhaustive);
    }

    #[test]
    fn infeasible_everywhere_returns_none() {
        let out = explore_grid(&grid(), 100, |_, _| Ok::<Option<f64>, ()>(None)).unwrap();
        assert!(out.is_none());
        let nan = explore_grid(&grid(), 100, |_, _| Ok::<_, ()>(Some(f64::NAN))).unwrap();
        assert!(nan.is_none(), "non-finite objectives are infeasible");
    }

    #[test]
    fn evaluator_error_aborts_the_search() {
        let mut calls = 0;
        let err = explore_grid(&grid(), 1000, |_, _| {
            calls += 1;
            if calls > 5 {
                Err("deadline")
            } else {
                Ok(Some(1.0))
            }
        })
        .unwrap_err();
        assert_eq!(err, "deadline");
        assert_eq!(calls, 6);
    }

    #[test]
    fn zero_budget_and_empty_grid_return_none() {
        assert!(explore_grid(&grid(), 0, |_, _| Ok::<_, ()>(Some(1.0)))
            .unwrap()
            .is_none());
        let mut empty = grid();
        empty.payloads.clear();
        assert!(explore_grid(&empty, 10, |_, _| Ok::<_, ()>(Some(1.0)))
            .unwrap()
            .is_none());
    }

    #[test]
    fn neighbors_round_trip_the_mixed_radix_encoding() {
        let g = ParamGrid::paper();
        let axes = Axes::of(&g);
        for idx in [0usize, 1, 8063, 8064, 48_383] {
            assert_eq!(axes.encode(&axes.decode(idx)), idx);
            for nb in axes.neighbors(idx) {
                assert!(nb < g.len());
                assert_ne!(nb, idx);
                // A neighbor differs in exactly one coordinate, by one step.
                let a = axes.decode(idx);
                let b = axes.decode(nb);
                let diffs: Vec<usize> = (0..7).filter(|&k| a[k] != b[k]).collect();
                assert_eq!(diffs.len(), 1);
                let k = diffs[0];
                assert_eq!(a[k].abs_diff(b[k]), 1);
            }
        }
    }

    #[test]
    fn sweep_stride_is_coprime_and_aliasing_free() {
        let n = ParamGrid::paper().len();
        let step = coprime_step(n, (n * 61) / 100);
        // The stride visits distinct indices and all payload residues.
        let residues: std::collections::HashSet<usize> =
            (0..16).map(|i| (i * step) % n % 8).collect();
        assert_eq!(residues.len(), 8, "payload axis fully covered");
    }
}
