//! Closed-loop adaptive tuning.
//!
//! Sec. IV-B of the paper concludes that "adapting the payload size to the
//! varying link quality can be an efficient way to minimize energy
//! consumption in dynamic channel conditions", and Sec. III-A motivates
//! adaptation from the measured RSSI instability. This module closes that
//! loop: an EWMA link-quality estimator plus a hysteresis-guarded retuner
//! that reads the empirical models at the estimated SNR and adjusts
//! payload and retransmission budget (and optionally power).

use serde::{Deserialize, Serialize};

use wsn_params::config::StackConfig;
use wsn_params::types::{MaxTries, PayloadSize, PowerLevel};

use crate::constants::GREY_ZONE_MAX_SNR_DB;
use crate::energy::EnergyModel;
use crate::goodput::GoodputModel;

/// Exponentially-weighted moving-average SNR estimator.
///
/// ```
/// use wsn_models::adapt::SnrEstimator;
///
/// let mut est = SnrEstimator::new(0.2);
/// for _ in 0..50 {
///     est.update(10.0);
/// }
/// assert!((est.value().unwrap() - 10.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnrEstimator {
    alpha: f64,
    ewma: Option<f64>,
    samples: u64,
}

impl SnrEstimator {
    /// Creates an estimator with smoothing factor `alpha` (weight of the
    /// newest sample).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        SnrEstimator {
            alpha,
            ewma: None,
            samples: 0,
        }
    }

    /// Feeds one SNR observation (dB) and returns the updated estimate.
    pub fn update(&mut self, snr_db: f64) -> f64 {
        let next = match self.ewma {
            None => snr_db,
            Some(prev) => prev + self.alpha * (snr_db - prev),
        };
        self.ewma = Some(next);
        self.samples += 1;
        next
    }

    /// The current estimate, if any sample has arrived.
    pub fn value(&self) -> Option<f64> {
        self.ewma
    }

    /// Number of samples consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// What the tuner optimizes for when it re-reads the models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TuneObjective {
    /// Minimize energy per information bit (Sec. IV-C policy).
    Energy,
    /// Maximize goodput (Sec. V-C policy).
    Goodput,
}

/// A hysteresis-guarded, model-driven link tuner.
///
/// The tuner keeps the last SNR it acted on; a retune is only proposed when
/// the estimate moved by more than `hysteresis_db`, avoiding configuration
/// flapping on fading noise (the concern raised by Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveTuner {
    /// The tuning goal.
    pub objective: TuneObjective,
    /// Minimum estimate movement before acting, dB.
    pub hysteresis_db: f64,
    energy: EnergyModel,
    goodput: GoodputModel,
    acted_at_db: Option<f64>,
}

impl AdaptiveTuner {
    /// Creates a tuner with the paper's models.
    ///
    /// # Panics
    ///
    /// Panics if `hysteresis_db` is negative or not finite.
    pub fn new(objective: TuneObjective, hysteresis_db: f64) -> Self {
        assert!(
            hysteresis_db.is_finite() && hysteresis_db >= 0.0,
            "hysteresis must be finite and non-negative, got {hysteresis_db}"
        );
        AdaptiveTuner {
            objective,
            hysteresis_db,
            energy: EnergyModel::paper(),
            goodput: GoodputModel::paper(),
            acted_at_db: None,
        }
    }

    /// The SNR the current configuration was chosen for, if any.
    pub fn acted_at_db(&self) -> Option<f64> {
        self.acted_at_db
    }

    /// Proposes a new configuration for the estimated SNR, or `None` when
    /// the estimate has not moved past the hysteresis band.
    pub fn retune(&mut self, snr_db: f64, current: &StackConfig) -> Option<StackConfig> {
        if let Some(prev) = self.acted_at_db {
            if (snr_db - prev).abs() < self.hysteresis_db {
                return None;
            }
        }
        self.acted_at_db = Some(snr_db);
        let mut next = *current;
        match self.objective {
            TuneObjective::Energy => {
                next.payload = self.energy.optimal_payload(snr_db, current.power);
                // Grey zone: allow the MAC to recover losses; clean link:
                // a light budget suffices.
                next.max_tries = if snr_db < GREY_ZONE_MAX_SNR_DB {
                    MaxTries::new(8).expect("valid")
                } else {
                    MaxTries::new(3).expect("valid")
                };
            }
            TuneObjective::Goodput => {
                next.payload = if snr_db >= GREY_ZONE_MAX_SNR_DB {
                    PayloadSize::MAX
                } else {
                    self.goodput.optimal_payload(
                        snr_db,
                        MaxTries::new(8).expect("valid"),
                        current.retry_delay,
                    )
                };
                next.max_tries = MaxTries::new(8).expect("valid");
            }
        }
        if next == *current {
            None
        } else {
            Some(next)
        }
    }

    /// Convenience: the power level the tuner would pick from `candidates`
    /// for a distance-implied SNR table (Sec. IV-C power rule, delegated to
    /// the energy model).
    pub fn pick_power(&self, snr_by_level: &[(PowerLevel, f64)]) -> Option<PowerLevel> {
        snr_by_level
            .iter()
            .filter(|(_, snr)| *snr >= GREY_ZONE_MAX_SNR_DB)
            .min_by_key(|(p, _)| p.level())
            .map(|(p, _)| *p)
            .or_else(|| {
                snr_by_level
                    .iter()
                    .max_by_key(|(p, _)| p.level())
                    .map(|(p, _)| *p)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StackConfig {
        // Starts with a non-optimal retry budget so the first retune has
        // something to change even on a clean link.
        StackConfig::builder()
            .distance_m(35.0)
            .power_level(31)
            .payload_bytes(114)
            .max_tries(1)
            .build()
            .unwrap()
    }

    #[test]
    fn estimator_converges_and_smooths() {
        let mut est = SnrEstimator::new(0.25);
        assert!(est.value().is_none());
        for _ in 0..40 {
            est.update(12.0);
        }
        assert!((est.value().unwrap() - 12.0).abs() < 0.05);
        // A single outlier moves the estimate by only alpha of the jump.
        let moved = est.update(22.0);
        assert!((moved - 14.5).abs() < 0.1, "moved={moved}");
        assert_eq!(est.samples(), 41);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn estimator_rejects_bad_alpha() {
        let _ = SnrEstimator::new(0.0);
    }

    #[test]
    fn tuner_shrinks_payload_when_link_degrades() {
        let mut tuner = AdaptiveTuner::new(TuneObjective::Energy, 1.0);
        let good = tuner.retune(25.0, &cfg()).expect("first call acts");
        assert_eq!(good.payload.bytes(), 114);
        let degraded = tuner.retune(6.0, &good).expect("large move acts");
        assert!(
            degraded.payload.bytes() < 60,
            "payload={}",
            degraded.payload.bytes()
        );
        assert_eq!(degraded.max_tries.get(), 8);
    }

    #[test]
    fn hysteresis_suppresses_flapping() {
        let mut tuner = AdaptiveTuner::new(TuneObjective::Energy, 3.0);
        let first = tuner.retune(20.0, &cfg());
        assert!(first.is_some() || tuner.acted_at_db().is_some());
        // Small wiggles inside the band do nothing.
        assert!(tuner.retune(21.5, &cfg()).is_none());
        assert!(tuner.retune(18.6, &cfg()).is_none());
        // A real shift acts.
        assert!(tuner.retune(9.0, &cfg()).is_some());
    }

    #[test]
    fn goodput_objective_prefers_max_payload_outside_grey_zone() {
        let mut tuner = AdaptiveTuner::new(TuneObjective::Goodput, 0.0);
        let base = StackConfig::builder()
            .payload_bytes(20)
            .max_tries(1)
            .build()
            .unwrap();
        let tuned = tuner.retune(15.0, &base).expect("acts");
        assert_eq!(tuned.payload.bytes(), 114);
        assert_eq!(tuned.max_tries.get(), 8);
    }

    #[test]
    fn retune_returns_none_when_nothing_changes() {
        let mut tuner = AdaptiveTuner::new(TuneObjective::Energy, 0.0);
        let tuned = tuner.retune(25.0, &cfg()).expect("first act changes tries");
        // Same SNR again: configuration already optimal → no proposal.
        assert!(tuner.retune(25.0, &tuned).is_none());
    }

    #[test]
    fn pick_power_takes_cheapest_clear_level() {
        let tuner = AdaptiveTuner::new(TuneObjective::Energy, 1.0);
        let lv = |l: u8| PowerLevel::new(l).unwrap();
        let table = [(lv(3), 6.0), (lv(11), 14.0), (lv(31), 26.0)];
        assert_eq!(tuner.pick_power(&table).unwrap().level(), 11);
        // Nothing clears the grey zone: fall back to maximum power.
        let weak = [(lv(3), 2.0), (lv(31), 8.0)];
        assert_eq!(tuner.pick_power(&weak).unwrap().level(), 31);
        assert!(tuner.pick_power(&[]).is_none());
    }
}
