//! Low-power listening (LPL) duty-cycling — the "periodic wake-up" MAC
//! dimension the paper's discussion (Sec. VIII-D) flags as the next factor
//! to model.
//!
//! The model follows BoX-MAC-2, the default LPL layer of the TinyOS 2.1
//! stack the paper measured (with LPL disabled):
//!
//! * the **receiver** sleeps and wakes every `wake_interval` for a short
//!   `check_duration` of CCA sampling; its radio duty cycle is
//!   `check/wake`;
//! * the **sender** retransmits the data frame back-to-back until the
//!   receiver wakes and acknowledges: on average half a wake interval of
//!   transmission (plus one frame), which is the classic sender-cost /
//!   receiver-cost trade-off;
//! * delivery latency gains `wake_interval/2` on average.
//!
//! Minimising the two-node energy over the wake interval has the textbook
//! closed form `w* = sqrt(2 · P_rx · t_check / (rate · P_tx))`, reproduced
//! by [`LplModel::optimal_wake_interval`] and cross-checked numerically.

use serde::{Deserialize, Serialize};

use wsn_params::types::{PayloadSize, PowerLevel};
use wsn_radio::cc2420;
use wsn_sim_engine::time::SimDuration;

/// LPL configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LplConfig {
    /// Receiver sleep period between channel checks.
    pub wake_interval: SimDuration,
    /// Duration of each channel check (radio in RX).
    pub check_duration: SimDuration,
}

impl LplConfig {
    /// TinyOS-ish defaults: 512 ms wake interval, 11 ms check.
    pub fn tinyos_default() -> Self {
        LplConfig {
            wake_interval: SimDuration::from_millis(512),
            check_duration: SimDuration::from_millis(11),
        }
    }

    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the check is zero or not shorter than the wake interval.
    pub fn new(wake_interval: SimDuration, check_duration: SimDuration) -> Self {
        assert!(!check_duration.is_zero(), "check duration must be positive");
        assert!(
            check_duration < wake_interval,
            "check ({check_duration}) must be shorter than the wake interval ({wake_interval})"
        );
        LplConfig {
            wake_interval,
            check_duration,
        }
    }

    /// Receiver radio duty cycle `check/wake`.
    pub fn receiver_duty_cycle(&self) -> f64 {
        self.check_duration.as_secs_f64() / self.wake_interval.as_secs_f64()
    }
}

impl Default for LplConfig {
    fn default() -> Self {
        LplConfig::tinyos_default()
    }
}

/// Energy breakdown of one LPL operating point, watts (time-averaged).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LplPowerBudget {
    /// Sender transmit cost (preamble trains), W.
    pub sender_tx_w: f64,
    /// Receiver duty-cycled listening cost, W.
    pub receiver_listen_w: f64,
    /// Sleep-floor cost of both radios, W.
    pub sleep_floor_w: f64,
}

impl LplPowerBudget {
    /// Total two-node power, W.
    pub fn total_w(&self) -> f64 {
        self.sender_tx_w + self.receiver_listen_w + self.sleep_floor_w
    }
}

/// Analytic LPL energy/latency model for one link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LplModel {
    /// Transmit power level of the sender.
    pub power: PowerLevel,
    /// Payload carried by each packet.
    pub payload: PayloadSize,
}

impl LplModel {
    /// Creates the model for an operating point.
    pub fn new(power: PowerLevel, payload: PayloadSize) -> Self {
        LplModel { power, payload }
    }

    /// Expected sender transmission time per delivered packet: half a wake
    /// interval of preamble frames plus the final data frame, seconds.
    pub fn sender_tx_time_s(&self, lpl: &LplConfig) -> f64 {
        let frame = wsn_mac::timing::frame_time(self.payload).as_secs_f64();
        lpl.wake_interval.as_secs_f64() / 2.0 + frame
    }

    /// Expected added delivery latency (wake-up wait), seconds.
    pub fn added_latency_s(&self, lpl: &LplConfig) -> f64 {
        lpl.wake_interval.as_secs_f64() / 2.0
    }

    /// Time-averaged two-node power at a packet rate, W.
    pub fn power_budget(&self, lpl: &LplConfig, rate_pps: f64) -> LplPowerBudget {
        assert!(
            rate_pps.is_finite() && rate_pps >= 0.0,
            "rate must be finite and non-negative, got {rate_pps}"
        );
        let sender_tx_w = rate_pps * self.sender_tx_time_s(lpl) * cc2420::tx_power_w(self.power);
        let receiver_listen_w = lpl.receiver_duty_cycle() * cc2420::rx_power_w();
        let sleep_floor_w = 2.0 * cc2420::sleep_power_w();
        LplPowerBudget {
            sender_tx_w,
            receiver_listen_w,
            sleep_floor_w,
        }
    }

    /// Always-on baseline: the receiver listens continuously (the paper's
    /// measured stack), W.
    pub fn always_on_power_w(&self, rate_pps: f64) -> f64 {
        let frame = wsn_mac::timing::frame_time(self.payload).as_secs_f64();
        rate_pps * frame * cc2420::tx_power_w(self.power) + cc2420::rx_power_w()
    }

    /// Closed-form energy-optimal wake interval for a packet rate:
    /// `w* = sqrt(2 · P_rx · t_check / (rate · P_tx))`, clamped to
    /// `[2 · check, max_interval]`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_pps` is not positive and finite.
    pub fn optimal_wake_interval(
        &self,
        check: SimDuration,
        rate_pps: f64,
        max_interval: SimDuration,
    ) -> SimDuration {
        assert!(
            rate_pps.is_finite() && rate_pps > 0.0,
            "rate must be positive, got {rate_pps}"
        );
        let w_star = (2.0 * cc2420::rx_power_w() * check.as_secs_f64()
            / (rate_pps * cc2420::tx_power_w(self.power)))
        .sqrt();
        let lo = check.as_secs_f64() * 2.0;
        let hi = max_interval.as_secs_f64();
        SimDuration::from_secs_f64(w_star.clamp(lo, hi))
    }

    /// Numeric argmin of the total power over a millisecond grid; used to
    /// cross-check the closed form (and by tests).
    pub fn optimal_wake_interval_numeric(
        &self,
        check: SimDuration,
        rate_pps: f64,
        max_interval: SimDuration,
    ) -> SimDuration {
        let mut best = SimDuration::from_micros(check.as_micros() * 2);
        let mut best_power = f64::INFINITY;
        let mut w_ms = check.as_millis().max(1) * 2;
        while w_ms <= max_interval.as_millis() {
            let lpl = LplConfig::new(SimDuration::from_millis(w_ms), check);
            let p = self.power_budget(&lpl, rate_pps).total_w();
            if p < best_power {
                best_power = p;
                best = lpl.wake_interval;
            }
            w_ms += 1;
        }
        best
    }

    /// The largest wake interval whose added latency stays within
    /// `max_latency` (delay-constrained tuning); `None` when even the
    /// minimum interval violates the bound.
    pub fn max_interval_for_latency(
        &self,
        check: SimDuration,
        max_latency: SimDuration,
    ) -> Option<SimDuration> {
        // added latency = w/2  =>  w <= 2 * max_latency
        let w = SimDuration::from_micros(max_latency.as_micros().saturating_mul(2));
        if w <= check * 2 {
            None
        } else {
            Some(w)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LplModel {
        LplModel::new(
            PowerLevel::new(31).expect("valid"),
            PayloadSize::new(50).expect("valid"),
        )
    }

    fn check() -> SimDuration {
        SimDuration::from_millis(11)
    }

    #[test]
    fn duty_cycle_is_check_over_wake() {
        let lpl = LplConfig::tinyos_default();
        assert!((lpl.receiver_duty_cycle() - 11.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shorter than the wake interval")]
    fn check_longer_than_wake_rejected() {
        let _ = LplConfig::new(SimDuration::from_millis(10), SimDuration::from_millis(20));
    }

    #[test]
    fn lpl_beats_always_on_at_low_rates() {
        let m = model();
        let lpl = LplConfig::tinyos_default();
        let rate = 0.1; // one packet every 10 s
        let duty_cycled = m.power_budget(&lpl, rate).total_w();
        let always_on = m.always_on_power_w(rate);
        assert!(
            duty_cycled < always_on / 10.0,
            "LPL {duty_cycled} W vs always-on {always_on} W"
        );
    }

    #[test]
    fn sender_cost_grows_with_wake_interval() {
        let m = model();
        let short = LplConfig::new(SimDuration::from_millis(100), check());
        let long = LplConfig::new(SimDuration::from_millis(1000), check());
        let rate = 1.0;
        assert!(m.power_budget(&long, rate).sender_tx_w > m.power_budget(&short, rate).sender_tx_w);
        assert!(
            m.power_budget(&long, rate).receiver_listen_w
                < m.power_budget(&short, rate).receiver_listen_w
        );
    }

    #[test]
    fn closed_form_matches_numeric_argmin() {
        let m = model();
        for rate in [0.2, 1.0, 5.0] {
            let analytic = m.optimal_wake_interval(check(), rate, SimDuration::from_secs(4));
            let numeric = m.optimal_wake_interval_numeric(check(), rate, SimDuration::from_secs(4));
            let a = analytic.as_millis_f64();
            let n = numeric.as_millis_f64();
            assert!(
                (a - n).abs() / n < 0.05,
                "rate={rate}: analytic {a} ms vs numeric {n} ms"
            );
        }
    }

    #[test]
    fn optimal_interval_shrinks_with_rate() {
        let m = model();
        let slow = m.optimal_wake_interval(check(), 0.1, SimDuration::from_secs(10));
        let fast = m.optimal_wake_interval(check(), 10.0, SimDuration::from_secs(10));
        assert!(slow > fast, "{slow} !> {fast}");
    }

    #[test]
    fn latency_bound_caps_the_interval() {
        let m = model();
        let w = m
            .max_interval_for_latency(check(), SimDuration::from_millis(250))
            .expect("feasible");
        assert_eq!(w.as_millis(), 500);
        assert!((m.added_latency_s(&LplConfig::new(w, check())) - 0.25).abs() < 1e-9);
        assert!(m
            .max_interval_for_latency(check(), SimDuration::from_millis(5))
            .is_none());
    }

    #[test]
    fn budget_components_sum() {
        let m = model();
        let lpl = LplConfig::tinyos_default();
        let b = m.power_budget(&lpl, 2.0);
        assert!(
            (b.total_w() - (b.sender_tx_w + b.receiver_listen_w + b.sleep_floor_w)).abs() < 1e-15
        );
        assert!(b.sender_tx_w > 0.0 && b.receiver_listen_w > 0.0 && b.sleep_floor_w > 0.0);
    }
}
