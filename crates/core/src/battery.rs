//! Battery-lifetime estimation — the deployment question behind every
//! energy number in the paper.
//!
//! A TelosB runs on 2 × AA cells (≈ 2500 mAh at 3 V). Given a stack
//! configuration, a link quality and a traffic rate, the whole-radio
//! power model ([`EnergyModel::total_uj_per_bit`] components) converts
//! directly into node lifetime, for both the paper's always-on MAC and
//! the LPL extension.
//!
//! [`EnergyModel::total_uj_per_bit`]: crate::energy::EnergyModel::total_uj_per_bit

use serde::{Deserialize, Serialize};

use wsn_params::config::StackConfig;
use wsn_radio::cc2420;

use crate::lpl::{LplConfig, LplModel};
use crate::service_time::ServiceTimeModel;

/// A battery as capacity at the radio's supply voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    /// Usable capacity, milliamp-hours.
    pub capacity_mah: f64,
}

impl Battery {
    /// Two alkaline AA cells: ~2500 mAh usable.
    pub fn two_aa() -> Self {
        Battery {
            capacity_mah: 2500.0,
        }
    }

    /// A CR2032 coin cell: ~220 mAh.
    pub fn coin_cell() -> Self {
        Battery {
            capacity_mah: 220.0,
        }
    }

    /// Usable energy, joules (at the CC2420 3 V supply).
    pub fn energy_j(&self) -> f64 {
        self.capacity_mah * 1e-3 * 3600.0 * cc2420::SUPPLY_VOLTAGE
    }

    /// Lifetime in days at a constant drain, `None` for zero/invalid drain.
    pub fn lifetime_days(&self, drain_w: f64) -> Option<f64> {
        if !(drain_w.is_finite() && drain_w > 0.0) {
            return None;
        }
        Some(self.energy_j() / drain_w / 86_400.0)
    }
}

impl Default for Battery {
    fn default() -> Self {
        Battery::two_aa()
    }
}

/// Time-averaged sender radio power for a configuration at a link
/// quality, W — the always-on (paper) MAC.
///
/// Uses the expected service-time decomposition: TX power during frames,
/// RX power while listening (an always-on radio listens whenever it is
/// not transmitting), idle only during the SPI load and retry gaps.
pub fn always_on_drain_w(snr_db: f64, config: &StackConfig) -> f64 {
    let service = ServiceTimeModel::paper();
    let attempts = service.expected_attempts(snr_db, config.payload, config.max_tries);
    let frame_s = wsn_mac::timing::frame_time(config.payload).as_secs_f64();
    let interval_s = config.packet_interval.as_secs_f64();

    let tx_s = attempts * frame_s;
    let spi_s = service.t_spi_s(config.payload);
    let retry_idle_s = (attempts - 1.0) * config.retry_delay.as_secs_f64();
    // Everything else in the interval the radio spends in RX.
    let rx_s = (interval_s - tx_s - spi_s - retry_idle_s).max(0.0);

    (tx_s * cc2420::tx_power_w(config.power)
        + rx_s * cc2420::rx_power_w()
        + (spi_s + retry_idle_s) * cc2420::idle_power_w())
        / interval_s
}

/// Time-averaged sender+receiver power with LPL at the given wake
/// interval, W (delegates to [`LplModel`]).
pub fn lpl_drain_w(config: &StackConfig, lpl: &LplConfig) -> f64 {
    let model = LplModel::new(config.power, config.payload);
    model
        .power_budget(lpl, config.packet_interval.rate_pps())
        .total_w()
}

/// Lifetime comparison for one configuration: always-on vs LPL, days.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeEstimate {
    /// Always-on (the paper's measured stack), days.
    pub always_on_days: f64,
    /// Duty-cycled with the given LPL configuration, days.
    pub lpl_days: f64,
}

/// Estimates both lifetimes on a battery.
pub fn estimate(
    battery: &Battery,
    snr_db: f64,
    config: &StackConfig,
    lpl: &LplConfig,
) -> LifetimeEstimate {
    LifetimeEstimate {
        always_on_days: battery
            .lifetime_days(always_on_drain_w(snr_db, config))
            .unwrap_or(f64::INFINITY),
        lpl_days: battery
            .lifetime_days(lpl_drain_w(config, lpl))
            .unwrap_or(f64::INFINITY),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(tpkt: u32) -> StackConfig {
        StackConfig::builder()
            .distance_m(20.0)
            .power_level(31)
            .payload_bytes(50)
            .max_tries(3)
            .retry_delay_ms(0)
            .queue_cap(30)
            .packet_interval_ms(tpkt)
            .build()
            .unwrap()
    }

    #[test]
    fn battery_energy_arithmetic() {
        let b = Battery::two_aa();
        // 2.5 Ah × 3600 s × 3 V = 27 kJ.
        assert!((b.energy_j() - 27_000.0).abs() < 1.0);
        assert!(b.lifetime_days(0.0).is_none());
        assert!(b.lifetime_days(f64::NAN).is_none());
    }

    #[test]
    fn always_on_lifetime_is_radio_bound() {
        // An always-on CC2420 draws ~56 mW listening: 2×AA last ~5.5 days
        // regardless of traffic — the paper's stack is a battery hog.
        let drain = always_on_drain_w(25.0, &cfg(1000));
        assert!(drain > 0.050 && drain < 0.060, "drain={drain}");
        let days = Battery::two_aa().lifetime_days(drain).unwrap();
        assert!(days > 4.0 && days < 7.0, "days={days}");
    }

    #[test]
    fn lpl_extends_lifetime_by_an_order_of_magnitude_at_low_rate() {
        // A monitoring workload: one packet every 10 s.
        let lpl = LplConfig::tinyos_default();
        let est = estimate(&Battery::two_aa(), 25.0, &cfg(10_000), &lpl);
        assert!(
            est.lpl_days > 10.0 * est.always_on_days,
            "always-on {} days vs LPL {} days",
            est.always_on_days,
            est.lpl_days
        );
        // And LPL still keeps the node alive for months, not days.
        assert!(est.lpl_days > 60.0, "lpl_days={}", est.lpl_days);
    }

    #[test]
    fn heavier_traffic_drains_faster() {
        let lpl = LplConfig::tinyos_default();
        let light = lpl_drain_w(&cfg(1000), &lpl);
        let heavy = lpl_drain_w(&cfg(50), &lpl);
        assert!(heavy > light);
    }

    #[test]
    fn always_on_drain_is_dominated_by_listening() {
        // CC2420 quirk: RX (56.4 mW) costs *more* than TX at full power
        // (52.2 mW), so an always-on radio's drain barely moves with link
        // quality — retransmissions just swap listen time for (slightly
        // cheaper) transmit time.
        let strong = always_on_drain_w(25.0, &cfg(100));
        let weak = always_on_drain_w(6.0, &cfg(100));
        let rel = (weak - strong).abs() / strong;
        assert!(rel < 0.05, "relative drain change {rel}");
        assert!(strong > 0.9 * cc2420::rx_power_w() * 0.5, "strong={strong}");
    }

    #[test]
    fn coin_cell_is_proportionally_smaller() {
        let aa = Battery::two_aa();
        let coin = Battery::coin_cell();
        let drain = 0.001;
        let ratio = aa.lifetime_days(drain).unwrap() / coin.lifetime_days(drain).unwrap();
        assert!((ratio - 2500.0 / 220.0).abs() < 1e-9);
    }
}
