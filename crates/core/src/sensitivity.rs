//! Local parameter-sensitivity analysis: which knob matters at a given
//! operating point?
//!
//! The paper's core message is that parameter effects are *joint* — the
//! impact of one knob depends on where the other six sit. This module
//! makes that quantitative: for one configuration, perturb each parameter
//! to its neighbouring grid values and record how much each performance
//! metric moves. The resulting tornado ranking shows, e.g., that payload
//! size dominates energy in the grey zone while it is nearly irrelevant
//! above 19 dB (Fig. 6(d)'s zones, re-derived from the models).

use serde::{Deserialize, Serialize};

use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;
use wsn_params::types::{MaxTries, PacketInterval, PayloadSize, PowerLevel, QueueCap, RetryDelay};

use crate::optimize::Metric;
use crate::predict::Predictor;

/// The tunable axes (distance excluded: it is environment, not a knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Knob {
    /// CC2420 PA level.
    Power,
    /// Maximum transmissions.
    MaxTries,
    /// Retry delay.
    RetryDelay,
    /// Queue capacity.
    QueueCap,
    /// Packet interval.
    PacketInterval,
    /// Payload size.
    Payload,
}

impl Knob {
    /// All six tunable knobs.
    pub fn all() -> [Knob; 6] {
        [
            Knob::Power,
            Knob::MaxTries,
            Knob::RetryDelay,
            Knob::QueueCap,
            Knob::PacketInterval,
            Knob::Payload,
        ]
    }

    /// Human-readable name (the paper's symbol).
    pub fn name(self) -> &'static str {
        match self {
            Knob::Power => "Ptx",
            Knob::MaxTries => "NmaxTries",
            Knob::RetryDelay => "Dretry",
            Knob::QueueCap => "Qmax",
            Knob::PacketInterval => "Tpkt",
            Knob::Payload => "lD",
        }
    }

    /// The neighbouring values of this knob on `grid` around `config`:
    /// the grid entries immediately below and above the current value.
    fn neighbours(self, config: &StackConfig, grid: &ParamGrid) -> Vec<StackConfig> {
        fn around<T: PartialOrd + Copy>(values: &[T], current: T) -> Vec<T> {
            let mut sorted: Vec<T> = values.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("orderable"));
            let mut out = Vec::new();
            let below = sorted.iter().rev().find(|&&v| v < current);
            let above = sorted.iter().find(|&&v| v > current);
            if let Some(&v) = below {
                out.push(v);
            }
            if let Some(&v) = above {
                out.push(v);
            }
            out
        }
        let mut out = Vec::new();
        match self {
            Knob::Power => {
                for v in around(&grid.power_levels, config.power.level()) {
                    let mut c = *config;
                    c.power = PowerLevel::new(v).expect("grid values valid");
                    out.push(c);
                }
            }
            Knob::MaxTries => {
                for v in around(&grid.max_tries, config.max_tries.get()) {
                    let mut c = *config;
                    c.max_tries = MaxTries::new(v).expect("grid values valid");
                    out.push(c);
                }
            }
            Knob::RetryDelay => {
                for v in around(&grid.retry_delays_ms, config.retry_delay.millis()) {
                    let mut c = *config;
                    c.retry_delay = RetryDelay::from_millis(v);
                    out.push(c);
                }
            }
            Knob::QueueCap => {
                for v in around(&grid.queue_caps, config.queue_cap.get()) {
                    let mut c = *config;
                    c.queue_cap = QueueCap::new(v).expect("grid values valid");
                    out.push(c);
                }
            }
            Knob::PacketInterval => {
                for v in around(&grid.packet_intervals_ms, config.packet_interval.millis()) {
                    let mut c = *config;
                    c.packet_interval = PacketInterval::from_millis(v).expect("grid values valid");
                    out.push(c);
                }
            }
            Knob::Payload => {
                for v in around(&grid.payloads, config.payload.bytes()) {
                    let mut c = *config;
                    c.payload = PayloadSize::new(v).expect("grid values valid");
                    out.push(c);
                }
            }
        }
        out
    }
}

/// Sensitivity of one metric to one knob at one operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnobSensitivity {
    /// The knob perturbed.
    pub knob: Knob,
    /// Largest relative metric change over the knob's grid neighbours,
    /// `max |Δmetric| / |metric|` (0 when the metric is 0 or the knob has
    /// no neighbours on the grid).
    pub relative_impact: f64,
}

/// The normalization floor for a metric: relative changes are computed
/// against `max(|baseline|, floor)` so that near-zero baselines (e.g. a
/// 10⁻⁷ loss rate on a clean link) don't blow the ranking up. The floors
/// are one "practically relevant" unit per metric: 0.01 µJ/bit, 1 kb/s,
/// 1 ms, one loss percentage point.
fn sensitivity_floor(metric: Metric) -> f64 {
    match metric {
        Metric::Energy => 0.01,
        Metric::Goodput => 1_000.0,
        Metric::Delay => 1.0,
        Metric::Loss => 0.01,
    }
}

/// Computes the tornado ranking of all knobs for `metric` at `config`,
/// most impactful first.
///
/// Non-finite baseline metrics (e.g. infinite energy on a dead link)
/// yield an empty ranking.
pub fn tornado(
    predictor: &Predictor,
    config: &StackConfig,
    grid: &ParamGrid,
    metric: Metric,
) -> Vec<KnobSensitivity> {
    let base = metric.value(&predictor.evaluate(config));
    if !base.is_finite() {
        return Vec::new();
    }
    let scale = base.abs().max(sensitivity_floor(metric));
    let mut out: Vec<KnobSensitivity> = Knob::all()
        .into_iter()
        .map(|knob| {
            let impact = knob
                .neighbours(config, grid)
                .into_iter()
                .map(|c| {
                    let v = metric.value(&predictor.evaluate(&c));
                    if v.is_finite() {
                        (v - base).abs() / scale
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0f64, f64::max);
            KnobSensitivity {
                knob,
                relative_impact: impact,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.relative_impact
            .partial_cmp(&a.relative_impact)
            .expect("impacts ordered (NaN excluded)")
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ParamGrid {
        ParamGrid::paper()
    }

    fn config(power: u8) -> StackConfig {
        StackConfig::builder()
            .distance_m(35.0)
            .power_level(power)
            .payload_bytes(65)
            .max_tries(3)
            .retry_delay_ms(30)
            .queue_cap(30)
            .packet_interval_ms(100)
            .build()
            .unwrap()
    }

    #[test]
    fn neighbours_are_adjacent_grid_values() {
        let cfg = config(11);
        let n = Knob::Power.neighbours(&cfg, &grid());
        let levels: Vec<u8> = n.iter().map(|c| c.power.level()).collect();
        assert_eq!(levels, vec![7, 15]);
        // Edge of the axis: only one neighbour.
        let edge = config(31);
        let n = Knob::Power.neighbours(&edge, &grid());
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].power.level(), 27);
    }

    #[test]
    fn ranking_is_sorted_and_covers_all_knobs() {
        let predictor = Predictor::paper();
        let ranking = tornado(&predictor, &config(11), &grid(), Metric::Energy);
        assert_eq!(ranking.len(), 6);
        for pair in ranking.windows(2) {
            assert!(pair[0].relative_impact >= pair[1].relative_impact);
        }
    }

    #[test]
    fn payload_matters_more_in_grey_zone_than_clean() {
        let predictor = Predictor::paper();
        let impact_of = |power: u8| {
            tornado(&predictor, &config(power), &grid(), Metric::Energy)
                .into_iter()
                .find(|k| k.knob == Knob::Payload)
                .unwrap()
                .relative_impact
        };
        // Ptx=3 at 35 m is the grey zone; Ptx=31 is deep in the low-impact
        // zone — exactly Fig. 6(d)'s structure. (The clean-link payload
        // impact never reaches zero because of overhead amortisation.)
        assert!(
            impact_of(3) > 2.0 * impact_of(31),
            "grey {} vs clean {}",
            impact_of(3),
            impact_of(31)
        );
    }

    #[test]
    fn queue_does_not_affect_energy() {
        let predictor = Predictor::paper();
        let ranking = tornado(&predictor, &config(11), &grid(), Metric::Energy);
        let q = ranking.iter().find(|k| k.knob == Knob::QueueCap).unwrap();
        assert_eq!(q.relative_impact, 0.0);
    }

    #[test]
    fn interval_dominates_delay_under_load() {
        let predictor = Predictor::paper();
        let mut cfg = config(7);
        cfg.packet_interval = PacketInterval::from_millis(30).unwrap();
        let ranking = tornado(&predictor, &cfg, &grid(), Metric::Delay);
        let tpkt = ranking
            .iter()
            .position(|k| k.knob == Knob::PacketInterval)
            .unwrap();
        // Tpkt must rank among the top three delay levers near saturation.
        assert!(tpkt < 3, "Tpkt ranked {tpkt} in {ranking:?}");
    }

    #[test]
    fn dead_link_yields_empty_ranking() {
        let predictor = Predictor::paper();
        let mut cfg = config(3);
        cfg.distance = wsn_params::types::Distance::from_meters(500.0).unwrap();
        let ranking = tornado(&predictor, &cfg, &grid(), Metric::Energy);
        assert!(ranking.is_empty());
    }

    #[test]
    fn knob_names_match_paper_symbols() {
        assert_eq!(Knob::Payload.name(), "lD");
        assert_eq!(Knob::Power.name(), "Ptx");
        assert_eq!(Knob::all().len(), 6);
    }
}
