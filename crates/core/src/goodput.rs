//! The maximum-goodput model (Eq. 4, Sec. V-B) and the goodput-optimal
//! payload rules of Sec. V-C.
//!
//! ```text
//! maxGoodput = lD / T̄service · (1 − PLR_radio)
//! ```
//!
//! with `T̄service` from Eqs. 5–7 and `PLR_radio` from Eq. 8. `lD` is read
//! in bits so the result is in bits per second.

use serde::{Deserialize, Serialize};

use wsn_params::types::{MaxTries, PayloadSize, RetryDelay};

use crate::loss::RadioLossModel;
use crate::service_time::ServiceTimeModel;

/// The empirical maximum-goodput model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoodputModel {
    /// Service-time part (Eqs. 5–7).
    pub service: ServiceTimeModel,
    /// Radio-loss part (Eq. 8).
    pub loss: RadioLossModel,
}

impl GoodputModel {
    /// The model with the paper's published constants.
    pub fn paper() -> Self {
        GoodputModel {
            service: ServiceTimeModel::paper(),
            loss: RadioLossModel::paper(),
        }
    }

    /// Maximum goodput in bits per second (Eq. 4).
    ///
    /// ```
    /// use wsn_models::goodput::GoodputModel;
    /// use wsn_params::types::{MaxTries, PayloadSize, RetryDelay};
    ///
    /// let g = GoodputModel::paper();
    /// let bps = g.max_goodput_bps(
    ///     25.0,
    ///     PayloadSize::new(114)?,
    ///     MaxTries::new(3)?,
    ///     RetryDelay::ZERO,
    /// );
    /// // A clean link moves ~45-50 kb/s of payload through this stack.
    /// assert!(bps > 40_000.0 && bps < 60_000.0);
    /// # Ok::<(), wsn_params::error::InvalidParam>(())
    /// ```
    pub fn max_goodput_bps(
        &self,
        snr_db: f64,
        payload: PayloadSize,
        max_tries: MaxTries,
        retry_delay: RetryDelay,
    ) -> f64 {
        let t_service = self
            .service
            .plugin_service_time_s(snr_db, payload, max_tries, retry_delay);
        let plr = self.loss.rate(snr_db, payload, max_tries);
        payload.bits() as f64 / t_service * (1.0 - plr)
    }

    /// The goodput-optimal payload size: integer argmax over 1..=114
    /// bytes (Sec. V-C / Fig. 13).
    pub fn optimal_payload(
        &self,
        snr_db: f64,
        max_tries: MaxTries,
        retry_delay: RetryDelay,
    ) -> PayloadSize {
        let mut best = PayloadSize::new(1).expect("1 byte is valid");
        let mut best_g = f64::NEG_INFINITY;
        for bytes in 1..=114u16 {
            let payload = PayloadSize::new(bytes).expect("1..=114 is valid");
            let g = self.max_goodput_bps(snr_db, payload, max_tries, retry_delay);
            if g > best_g {
                best_g = g;
                best = payload;
            }
        }
        best
    }
}

impl Default for GoodputModel {
    fn default() -> Self {
        GoodputModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(b: u16) -> PayloadSize {
        PayloadSize::new(b).unwrap()
    }
    fn mt(n: u8) -> MaxTries {
        MaxTries::new(n).unwrap()
    }

    #[test]
    fn goodput_increases_with_snr_then_saturates() {
        let g = GoodputModel::paper();
        let g5 = g.max_goodput_bps(5.0, pl(110), mt(3), RetryDelay::ZERO);
        let g12 = g.max_goodput_bps(12.0, pl(110), mt(3), RetryDelay::ZERO);
        let g19 = g.max_goodput_bps(19.0, pl(110), mt(3), RetryDelay::ZERO);
        let g30 = g.max_goodput_bps(30.0, pl(110), mt(3), RetryDelay::ZERO);
        assert!(g5 < g12 && g12 < g19 && g19 < g30);
        // Paper Sec. V-A: beyond ~19 dB extra power buys little goodput.
        let grey_gain = (g19 - g12) / g12;
        let clean_gain = (g30 - g19) / g19;
        assert!(clean_gain < grey_gain / 2.0, "{clean_gain} vs {grey_gain}");
    }

    #[test]
    fn max_payload_optimal_outside_grey_zone() {
        // Sec. V-C: outside the grey zone, max payload + retransmissions
        // maximise goodput.
        let g = GoodputModel::paper();
        for snr in [12.0, 15.0, 20.0, 30.0] {
            assert_eq!(
                g.optimal_payload(snr, mt(3), RetryDelay::ZERO).bytes(),
                114,
                "snr={snr}"
            );
        }
    }

    #[test]
    fn optimal_payload_shrinks_deep_in_grey_zone_without_retx() {
        let g = GoodputModel::paper();
        let best5 = g.optimal_payload(3.0, mt(1), RetryDelay::ZERO);
        assert!(best5.bytes() < 114, "best={}", best5.bytes());
    }

    #[test]
    fn retransmissions_increase_optimal_payload_in_grey_zone() {
        // Sec. V-C: "Larger NmaxTries increases the optimal payload size."
        let g = GoodputModel::paper();
        let snr = 3.0;
        let without = g.optimal_payload(snr, mt(1), RetryDelay::ZERO).bytes();
        let with = g.optimal_payload(snr, mt(8), RetryDelay::ZERO).bytes();
        assert!(with >= without, "with={with} without={without}");
    }

    #[test]
    fn retransmissions_raise_goodput_in_grey_zone() {
        let g = GoodputModel::paper();
        let snr = 8.0;
        let g1 = g.max_goodput_bps(snr, pl(110), mt(1), RetryDelay::ZERO);
        let g3 = g.max_goodput_bps(snr, pl(110), mt(3), RetryDelay::ZERO);
        assert!(g3 > g1, "{g3} !> {g1}");
    }

    #[test]
    fn retry_delay_reduces_goodput_when_retrying() {
        let g = GoodputModel::paper();
        let snr = 8.0;
        let fast = g.max_goodput_bps(snr, pl(110), mt(3), RetryDelay::ZERO);
        let slow = g.max_goodput_bps(snr, pl(110), mt(3), RetryDelay::from_millis(100));
        assert!(fast > slow);
    }

    #[test]
    fn goodput_is_positive_and_below_phy_rate() {
        let g = GoodputModel::paper();
        for snr in [0.0, 5.0, 10.0, 20.0, 40.0] {
            for bytes in [5u16, 50, 114] {
                let bps = g.max_goodput_bps(snr, pl(bytes), mt(3), RetryDelay::ZERO);
                assert!(bps >= 0.0);
                assert!(bps < 250_000.0);
            }
        }
    }
}
