//! The three SNR "joint-effect zones" of Fig. 6(d).
//!
//! The paper classifies the joint effect of SNR and payload size on PER
//! into three regions:
//!
//! 1. **high-impact** (5–12 dB, the "grey zone"): high average PER, strongly
//!    payload dependent;
//! 2. **medium-impact** (12–19 dB): lower PER, still clearly payload
//!    dependent;
//! 3. **low-impact** (≥ 19 dB): neither SNR nor payload matters much.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::constants::{GREY_ZONE_MAX_SNR_DB, LOW_IMPACT_MIN_SNR_DB};

/// One of the paper's three joint-effect zones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Zone {
    /// SNR < 12 dB — the grey zone; PER changes dramatically with payload.
    HighImpact,
    /// 12 dB ≤ SNR < 19 dB — PER relatively low but payload-sensitive.
    MediumImpact,
    /// SNR ≥ 19 dB — PER essentially flat in both SNR and payload.
    LowImpact,
}

impl Zone {
    /// Classifies an SNR value.
    ///
    /// ```
    /// use wsn_models::zones::Zone;
    ///
    /// assert_eq!(Zone::of(8.0), Zone::HighImpact);
    /// assert_eq!(Zone::of(15.0), Zone::MediumImpact);
    /// assert_eq!(Zone::of(25.0), Zone::LowImpact);
    /// ```
    pub fn of(snr_db: f64) -> Zone {
        if snr_db < GREY_ZONE_MAX_SNR_DB {
            Zone::HighImpact
        } else if snr_db < LOW_IMPACT_MIN_SNR_DB {
            Zone::MediumImpact
        } else {
            Zone::LowImpact
        }
    }

    /// True for the grey zone (the paper uses "grey zone" and
    /// "high-impact zone" for the same region).
    pub fn is_grey(self) -> bool {
        self == Zone::HighImpact
    }

    /// The inclusive-exclusive SNR interval of this zone,
    /// `(min_db, max_db)`; unbounded ends are ±∞.
    pub fn snr_bounds_db(self) -> (f64, f64) {
        match self {
            Zone::HighImpact => (f64::NEG_INFINITY, GREY_ZONE_MAX_SNR_DB),
            Zone::MediumImpact => (GREY_ZONE_MAX_SNR_DB, LOW_IMPACT_MIN_SNR_DB),
            Zone::LowImpact => (LOW_IMPACT_MIN_SNR_DB, f64::INFINITY),
        }
    }
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Zone::HighImpact => "high-impact (grey zone, SNR < 12 dB)",
            Zone::MediumImpact => "medium-impact (12-19 dB)",
            Zone::LowImpact => "low-impact (SNR >= 19 dB)",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_half_open() {
        assert_eq!(Zone::of(11.999), Zone::HighImpact);
        assert_eq!(Zone::of(12.0), Zone::MediumImpact);
        assert_eq!(Zone::of(18.999), Zone::MediumImpact);
        assert_eq!(Zone::of(19.0), Zone::LowImpact);
    }

    #[test]
    fn grey_zone_alias() {
        assert!(Zone::of(5.0).is_grey());
        assert!(!Zone::of(13.0).is_grey());
    }

    #[test]
    fn bounds_cover_the_line() {
        let (lo1, hi1) = Zone::HighImpact.snr_bounds_db();
        let (lo2, hi2) = Zone::MediumImpact.snr_bounds_db();
        let (lo3, hi3) = Zone::LowImpact.snr_bounds_db();
        assert_eq!(hi1, lo2);
        assert_eq!(hi2, lo3);
        assert!(lo1.is_infinite() && hi3.is_infinite());
    }

    #[test]
    fn display_names_the_zone() {
        assert!(Zone::HighImpact.to_string().contains("grey"));
    }
}
