//! Property tests for the MAC substrate: the transaction state machine
//! always terminates with consistent accounting, and the queue never
//! miscounts.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use wsn_mac::queue::{Admission, TxQueue};
use wsn_mac::transaction::{Action, RadioActivity, Transaction, TxOutcome};
use wsn_params::types::{MaxTries, PayloadSize, QueueCap};
use wsn_sim_engine::time::SimDuration;

/// Drives a transaction with a scripted ACK pattern; extra attempts beyond
/// the script fail.
fn drive(
    payload: u16,
    max_tries: u8,
    dretry_ms: u32,
    acks: &[bool],
    cca_busy: f64,
    seed: u64,
) -> (TxOutcome, u32, SimDuration) {
    let mut txn = Transaction::new(
        PayloadSize::new(payload).unwrap(),
        MaxTries::new(max_tries).unwrap(),
        SimDuration::from_millis(dretry_ms as u64),
    );
    txn.set_cca_busy_probability(cca_busy);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut transmissions = 0u32;
    let mut elapsed = SimDuration::ZERO;
    let mut steps = 0u32;
    loop {
        steps += 1;
        assert!(steps < 100_000, "transaction did not terminate");
        match txn.advance(&mut rng) {
            Action::Wait { duration, .. } => elapsed += duration,
            Action::Transmit { try_number } => {
                transmissions += 1;
                assert_eq!(try_number, transmissions as u8);
                let acked = acks
                    .get(transmissions as usize - 1)
                    .copied()
                    .unwrap_or(false);
                txn.on_tx_result(acked);
            }
            Action::Complete(outcome) => return (outcome, transmissions, elapsed),
        }
    }
}

proptest! {
    #[test]
    fn transaction_terminates_with_consistent_tries(
        payload in 1u16..=114,
        max_tries in 1u8..=8,
        dretry in prop::sample::select(vec![0u32, 30, 100]),
        acks in prop::collection::vec(any::<bool>(), 0..10),
        cca_busy in 0.0f64..0.95,
        seed in 0u64..1000,
    ) {
        let (outcome, transmissions, elapsed) =
            drive(payload, max_tries, dretry, &acks, cca_busy, seed);
        // Transmissions never exceed the budget and match the outcome.
        prop_assert!(transmissions <= max_tries as u32);
        prop_assert_eq!(outcome.tries() as u32, transmissions);
        // Delivered iff some scripted ACK within the budget was true.
        let expected_delivered = acks
            .iter()
            .take(max_tries as usize)
            .any(|&a| a);
        prop_assert_eq!(outcome.is_delivered(), expected_delivered);
        // If delivered, the ACK used is the first true within budget.
        if expected_delivered {
            let first_ack = acks.iter().position(|&a| a).unwrap() as u32 + 1;
            prop_assert_eq!(transmissions, first_ack);
        }
        // Time advanced at least one backoff + frame per transmission.
        prop_assert!(elapsed >= SimDuration::from_micros(320 * transmissions as u64));
    }

    #[test]
    fn transaction_time_grows_with_retry_delay(
        payload in 1u16..=114,
        seed in 0u64..500,
    ) {
        let acks = [false, false, true];
        let (_, _, fast) = drive(payload, 3, 0, &acks, 0.0, seed);
        let (_, _, slow) = drive(payload, 3, 100, &acks, 0.0, seed);
        // Same seed → same backoffs; the only difference is 2 × Dretry.
        let diff = slow - fast;
        prop_assert_eq!(diff, SimDuration::from_millis(200));
    }

    #[test]
    fn queue_accounting_under_random_operations(
        cap in 1u16..=32,
        ops in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut queue: TxQueue<u32> = TxQueue::new(QueueCap::new(cap).unwrap());
        let mut accepted = 0u64;
        let mut popped = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if *op {
                match queue.offer(i as u32) {
                    Admission::Accepted { depth } => {
                        accepted += 1;
                        prop_assert!(depth <= cap as usize);
                    }
                    Admission::Dropped => {
                        prop_assert_eq!(queue.len(), cap as usize);
                    }
                }
            } else if queue.pop().is_some() {
                popped += 1;
            }
        }
        prop_assert_eq!(queue.offered(), ops.iter().filter(|&&o| o).count() as u64);
        prop_assert_eq!(accepted, queue.offered() - queue.dropped());
        prop_assert_eq!(queue.len() as u64, accepted - popped);
        prop_assert!(queue.peak_depth() <= cap as usize);
    }

    #[test]
    fn first_activity_is_spi_load_then_listen(
        payload in 1u16..=114,
        seed in 0u64..100,
    ) {
        let mut txn = Transaction::new(
            PayloadSize::new(payload).unwrap(),
            MaxTries::ONE,
            SimDuration::ZERO,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let first = txn.advance(&mut rng);
        match first {
            Action::Wait { activity, .. } => {
                prop_assert_eq!(activity, RadioActivity::SpiLoad)
            }
            _ => prop_assert!(false, "first action must be the SPI load"),
        }
        let second = txn.advance(&mut rng);
        match second {
            Action::Wait { activity, duration } => {
                prop_assert_eq!(activity, RadioActivity::Listen);
                prop_assert_eq!(duration.as_micros() % 320, 0);
            }
            _ => prop_assert!(false, "second action must be the initial backoff"),
        }
    }
}
