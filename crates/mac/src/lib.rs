//! # wsn-mac
//!
//! The MAC-layer substrate of the reproduction: IEEE 802.15.4 beaconless
//! unslotted CSMA-CA as implemented by the TinyOS 2.1 CC2420 stack the
//! paper measured.
//!
//! * [`timing`] — the paper's Sec. V-B constants (`T_TR`, `T_BO`, `T_ACK`,
//!   `T_waitACK`) plus the calibrated SPI-loading model `T_SPI(lD)`,
//! * [`queue`] — the `Qmax`-bounded drop-tail transmit FIFO whose overflow
//!   is the paper's queuing loss `PLR_queue`,
//! * [`transaction`] — the per-packet CSMA-CA / ACK / retransmission state
//!   machine (`NmaxTries`, `Dretry`).
//!
//! The MAC is written as a pull-driven state machine so it can be driven by
//! the discrete-event link simulator (`wsn-link-sim`) while staying unit
//! testable in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;
pub mod timing;
pub mod transaction;

/// Convenient glob-import of the MAC substrate.
pub mod prelude {
    pub use crate::queue::{Admission, TxQueue};
    pub use crate::transaction::{Action, RadioActivity, Transaction, TxOutcome};
}
