//! TinyOS 2.1 / CC2420 MAC timing.
//!
//! These are the constants the paper lists when deriving its service-time
//! model (Sec. V-B):
//!
//! * `T_TR` — radio turnaround time: **0.224 ms**,
//! * `T_BO` — initial backoff, average **5.28 ms** (uniform over 1..=32
//!   backoff units of 320 µs — mean 16.5 × 320 µs = 5.28 ms),
//! * `T_ACK` — time until the software ACK is received: **≈ 1.96 ms**,
//! * `T_waitACK` — software ACK wait timeout: **8.192 ms**,
//! * `T_SPI` — one-time SPI bus loading of the frame. The paper does not
//!   publish a formula; we use an affine model in the MPDU length,
//!   `T_SPI = 1.5 ms + 45 µs/byte`, calibrated so the reproduced service
//!   times match the paper's Table II (e.g. 110-byte payload at SNR 20 dB,
//!   `NmaxTries = 3` → ≈ 21.4 ms).

use rand::Rng;

use wsn_params::config::StackConfig;
use wsn_params::frame::FrameGeometry;
use wsn_params::types::PayloadSize;
use wsn_sim_engine::time::SimDuration;

/// Radio turnaround time `T_TR` (RX→TX switch), 224 µs.
pub const TURNAROUND: SimDuration = SimDuration::from_micros(224);

/// One CSMA backoff unit (20 symbols at 16 µs), 320 µs.
pub const BACKOFF_UNIT: SimDuration = SimDuration::from_micros(320);

/// Initial backoff is uniform over `1..=INITIAL_BACKOFF_MAX_UNITS` units.
pub const INITIAL_BACKOFF_MAX_UNITS: u32 = 32;

/// Mean initial backoff `T_BO` = 16.5 × 320 µs = 5.28 ms.
pub const MEAN_INITIAL_BACKOFF: SimDuration = SimDuration::from_micros(5_280);

/// Congestion backoff (after busy CCA) is uniform over `1..=8` units.
pub const CONGESTION_BACKOFF_MAX_UNITS: u32 = 8;

/// Time from end of data frame until the software ACK has been received,
/// `T_ACK` ≈ 1.96 ms (measured by the paper's authors).
pub const ACK_RECEIVE: SimDuration = SimDuration::from_micros(1_960);

/// Software ACK wait timeout `T_waitACK` = 8.192 ms.
pub const ACK_TIMEOUT: SimDuration = SimDuration::from_micros(8_192);

/// Fixed part of the SPI frame-loading time, µs.
pub const SPI_BASE_US: u64 = 1_500;

/// Per-MPDU-byte part of the SPI frame-loading time, µs.
pub const SPI_PER_BYTE_US: u64 = 45;

/// SPI bus loading time `T_SPI` for a frame carrying `payload`.
///
/// ```
/// use wsn_params::types::PayloadSize;
/// use wsn_mac::timing::spi_load;
///
/// // 110-byte payload → 123-byte MPDU → 1.5 ms + 123·45 µs ≈ 7.0 ms.
/// let t = spi_load(PayloadSize::new(110)?);
/// assert_eq!(t.as_micros(), 1_500 + 123 * 45);
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
pub fn spi_load(payload: PayloadSize) -> SimDuration {
    let mpdu = FrameGeometry::for_payload(payload).mpdu_bytes() as u64;
    SimDuration::from_micros(SPI_BASE_US + SPI_PER_BYTE_US * mpdu)
}

/// On-air transmission time `T_frame` of the data frame for `payload`.
pub fn frame_time(payload: PayloadSize) -> SimDuration {
    SimDuration::from_micros(FrameGeometry::for_payload(payload).air_time_us() as u64)
}

/// Draws an initial backoff: uniform over 1..=32 backoff units.
pub fn draw_initial_backoff<R: Rng + ?Sized>(rng: &mut R) -> SimDuration {
    BACKOFF_UNIT * rng.gen_range(1..=INITIAL_BACKOFF_MAX_UNITS) as u64
}

/// Draws a congestion backoff: uniform over 1..=8 backoff units.
pub fn draw_congestion_backoff<R: Rng + ?Sized>(rng: &mut R) -> SimDuration {
    BACKOFF_UNIT * rng.gen_range(1..=CONGESTION_BACKOFF_MAX_UNITS) as u64
}

/// Mean and variance of a random duration, in µs / µs².
///
/// The analytic engine composes per-attempt service times from these
/// instead of drawing them; keeping the moments next to the draw
/// functions pins both to the same distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingMoments {
    /// Mean, µs.
    pub mean_us: f64,
    /// Variance, µs².
    pub var_us2: f64,
}

impl TimingMoments {
    /// A deterministic duration: mean `us`, zero variance.
    pub fn exact(us: f64) -> TimingMoments {
        TimingMoments {
            mean_us: us,
            var_us2: 0.0,
        }
    }

    /// Second raw moment `E[T²]`, µs².
    pub fn second_moment_us2(self) -> f64 {
        self.var_us2 + self.mean_us * self.mean_us
    }
}

/// Moments of a backoff uniform over `1..=max_units` units of 320 µs —
/// the distribution [`draw_initial_backoff`] / [`draw_congestion_backoff`]
/// sample from.
///
/// For a discrete uniform on `{1, …, N}` scaled by `u` = 320 µs:
/// mean `u·(N+1)/2`, variance `u²·(N²−1)/12`.
pub fn uniform_backoff_moments(max_units: u32) -> TimingMoments {
    let unit = BACKOFF_UNIT.as_micros() as f64;
    let n = max_units as f64;
    TimingMoments {
        mean_us: unit * (n + 1.0) / 2.0,
        var_us2: unit * unit * (n * n - 1.0) / 12.0,
    }
}

/// Moments of the initial backoff (uniform over 1..=32 units; mean 5.28 ms).
pub fn initial_backoff_moments() -> TimingMoments {
    uniform_backoff_moments(INITIAL_BACKOFF_MAX_UNITS)
}

/// Moments of the congestion backoff (uniform over 1..=8 units).
pub fn congestion_backoff_moments() -> TimingMoments {
    uniform_backoff_moments(CONGESTION_BACKOFF_MAX_UNITS)
}

/// The retry delay `Dretry` of a configuration as a simulation duration.
pub fn retry_delay(config: &StackConfig) -> SimDuration {
    SimDuration::from_millis(config.retry_delay.millis() as u64)
}

/// The packet inter-arrival time `Tpkt` of a configuration as a duration.
pub fn packet_interval(config: &StackConfig) -> SimDuration {
    SimDuration::from_millis(config.packet_interval.millis() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_constants() {
        assert_eq!(TURNAROUND.as_micros(), 224);
        assert_eq!(MEAN_INITIAL_BACKOFF.as_micros(), 5_280);
        assert_eq!(ACK_RECEIVE.as_micros(), 1_960);
        assert_eq!(ACK_TIMEOUT.as_micros(), 8_192);
    }

    #[test]
    fn initial_backoff_mean_is_5_28ms() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let total: u64 = (0..n)
            .map(|_| draw_initial_backoff(&mut rng).as_micros())
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 5_280.0).abs() < 30.0, "mean={mean}");
    }

    #[test]
    fn initial_backoff_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let b = draw_initial_backoff(&mut rng).as_micros();
            assert!((320..=32 * 320).contains(&b));
            assert_eq!(b % 320, 0);
        }
    }

    #[test]
    fn congestion_backoff_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let b = draw_congestion_backoff(&mut rng).as_micros();
            assert!((320..=8 * 320).contains(&b));
        }
    }

    #[test]
    fn frame_time_matches_250kbps() {
        let t = frame_time(PayloadSize::new(110).unwrap());
        // (6 + 11 + 110 + 2) bytes × 32 µs = 4.128 ms.
        assert_eq!(t.as_micros(), 4_128);
    }

    #[test]
    fn spi_load_grows_with_payload() {
        let small = spi_load(PayloadSize::new(5).unwrap());
        let large = spi_load(PayloadSize::new(110).unwrap());
        assert!(large > small);
        assert_eq!(small.as_micros(), 1_500 + 18 * 45);
    }

    #[test]
    fn backoff_moments_match_empirical_draws() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let draws: Vec<f64> = (0..n)
            .map(|_| draw_initial_backoff(&mut rng).as_micros() as f64)
            .collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
        let m = initial_backoff_moments();
        assert!(
            (mean - m.mean_us).abs() / m.mean_us < 0.01,
            "mean={mean} vs {}",
            m.mean_us
        );
        assert!(
            (var - m.var_us2).abs() / m.var_us2 < 0.02,
            "var={var} vs {}",
            m.var_us2
        );
    }

    #[test]
    fn moment_helpers_pin_paper_values() {
        let init = initial_backoff_moments();
        assert_eq!(init.mean_us, 5_280.0); // T_BO = 5.28 ms
        let cong = congestion_backoff_moments();
        assert_eq!(cong.mean_us, 320.0 * 4.5);
        let exact = TimingMoments::exact(224.0);
        assert_eq!(exact.var_us2, 0.0);
        assert_eq!(exact.second_moment_us2(), 224.0 * 224.0);
    }

    #[test]
    fn config_durations() {
        let cfg = StackConfig::default(); // Dretry=30ms, Tpkt=30ms
        assert_eq!(retry_delay(&cfg).as_millis(), 30);
        assert_eq!(packet_interval(&cfg).as_millis(), 30);
    }
}
