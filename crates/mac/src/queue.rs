//! The transmit FIFO sitting on top of the MAC.
//!
//! The paper's `Qmax` parameter caps this queue; arrivals that find it full
//! are dropped and counted towards the queuing loss rate `PLR_queue`
//! (Sec. VII). The packet currently in MAC service occupies one slot, so
//! `Qmax = 1` means "no buffering": a new packet is only accepted when the
//! link is idle.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use wsn_params::types::QueueCap;

/// Outcome of offering a packet to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The packet was accepted at the reported queue depth (including it).
    Accepted {
        /// Queue occupancy immediately after acceptance.
        depth: usize,
    },
    /// The queue was full; the packet is lost to queuing overflow.
    Dropped,
}

/// Drop-tail transmit queue with capacity `Qmax`.
///
/// ```
/// use wsn_params::types::QueueCap;
/// use wsn_mac::queue::{Admission, TxQueue};
///
/// let mut q: TxQueue<u32> = TxQueue::new(QueueCap::new(2)?);
/// assert_eq!(q.offer(1), Admission::Accepted { depth: 1 });
/// assert_eq!(q.offer(2), Admission::Accepted { depth: 2 });
/// assert_eq!(q.offer(3), Admission::Dropped);
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.dropped(), 1);
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TxQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    offered: u64,
    dropped: u64,
    peak_depth: usize,
}

impl<T> TxQueue<T> {
    /// Creates an empty queue with capacity `cap`.
    pub fn new(cap: QueueCap) -> Self {
        TxQueue {
            items: VecDeque::with_capacity(cap.get() as usize),
            capacity: cap.get() as usize,
            offered: 0,
            dropped: 0,
            peak_depth: 0,
        }
    }

    /// Offers a packet; returns whether it was admitted or dropped.
    pub fn offer(&mut self, item: T) -> Admission {
        self.offered += 1;
        if self.items.len() >= self.capacity {
            self.dropped += 1;
            return Admission::Dropped;
        }
        self.items.push_back(item);
        let depth = self.items.len();
        self.peak_depth = self.peak_depth.max(depth);
        Admission::Accepted { depth }
    }

    /// Removes the head-of-line packet, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// The head-of-line packet without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity (`Qmax`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Packets offered since creation.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Packets dropped by overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Highest occupancy observed.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Fraction of offered packets dropped so far (`PLR_queue`); zero when
    /// nothing was offered.
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(n: u16) -> QueueCap {
        QueueCap::new(n).unwrap()
    }

    #[test]
    fn fifo_order() {
        let mut q = TxQueue::new(cap(10));
        for i in 0..5 {
            q.offer(i);
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_one_admits_only_when_empty() {
        let mut q = TxQueue::new(cap(1));
        assert_eq!(q.offer("a"), Admission::Accepted { depth: 1 });
        assert_eq!(q.offer("b"), Admission::Dropped);
        q.pop();
        assert_eq!(q.offer("c"), Admission::Accepted { depth: 1 });
    }

    #[test]
    fn accounting_is_consistent() {
        let mut q = TxQueue::new(cap(3));
        for i in 0..10 {
            q.offer(i);
        }
        assert_eq!(q.offered(), 10);
        assert_eq!(q.dropped(), 7);
        assert_eq!(q.len(), 3);
        assert!((q.drop_rate() - 0.7).abs() < 1e-12);
        assert_eq!(q.peak_depth(), 3);
        // offered == dropped + currently queued + popped
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(q.offered(), q.dropped() + popped);
    }

    #[test]
    fn drop_rate_zero_when_unused() {
        let q: TxQueue<u8> = TxQueue::new(cap(1));
        assert_eq!(q.drop_rate(), 0.0);
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 1);
    }

    #[test]
    fn peak_depth_tracks_high_water_mark() {
        let mut q = TxQueue::new(cap(30));
        for i in 0..12 {
            q.offer(i);
        }
        for _ in 0..12 {
            q.pop();
        }
        assert_eq!(q.peak_depth(), 12);
        assert!(q.is_empty());
    }
}
