//! The per-packet MAC transaction: unslotted CSMA-CA with software ACK and
//! bounded retransmissions.
//!
//! One [`Transaction`] carries a single packet from "handed to the MAC" to
//! either *delivered* (ACK received) or *failed* (transmission budget
//! `NmaxTries` exhausted). The transaction is a pull-driven state machine:
//! the driver (the link simulator) repeatedly calls
//! [`Transaction::advance`], obeys the returned [`Action`] — waiting in a
//! radio state, or consulting the channel for a transmission attempt — and
//! feeds attempt outcomes back via [`Transaction::on_tx_result`].
//!
//! Phase sequence for each attempt (timings in [`crate::timing`]):
//!
//! ```text
//! [SPI load]                                     (first attempt only)
//! initial backoff → CCA → turnaround → TX frame
//!     ├── ACK received  → T_ACK      → Delivered
//!     └── no ACK        → T_waitACK  → tries left? Dretry → next attempt
//!                                      otherwise  → Failed
//! ```
//!
//! On a single interference-free link the CCA always reports an idle
//! channel, matching the paper's single-link deployment; the congestion
//! backoff path exists for completeness and is exercised in tests via
//! [`Transaction::force_congestion`].

use rand::Rng;

use wsn_params::types::{MaxTries, PayloadSize};
use wsn_sim_engine::time::SimDuration;

use crate::timing;

/// What the radio is doing during a [`Action::Wait`] phase; used by the
/// driver to meter energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioActivity {
    /// CPU is loading the frame over the SPI bus; radio idle.
    SpiLoad,
    /// Radio listening (backoff + CCA, or waiting for an ACK).
    Listen,
    /// RX→TX turnaround; PLL settling, drain comparable to TX.
    TxPrep,
    /// Data frame on the air.
    Transmit,
    /// Radio idle between retries (`Dretry`).
    Idle,
}

/// Terminal result of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// The packet was acknowledged after `tries` transmissions.
    Delivered {
        /// Number of transmissions used (1 = first attempt succeeded).
        tries: u8,
    },
    /// The transmission budget was exhausted without an ACK.
    Failed {
        /// Number of transmissions used (equals `NmaxTries`).
        tries: u8,
    },
}

impl TxOutcome {
    /// Number of transmissions used.
    pub fn tries(self) -> u8 {
        match self {
            TxOutcome::Delivered { tries } | TxOutcome::Failed { tries } => tries,
        }
    }

    /// True if the packet was delivered.
    pub fn is_delivered(self) -> bool {
        matches!(self, TxOutcome::Delivered { .. })
    }
}

/// Instruction to the driver, returned by [`Transaction::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Occupy the radio in `activity` for `duration`, then `advance` again.
    Wait {
        /// How long the phase lasts.
        duration: SimDuration,
        /// What the radio is doing meanwhile.
        activity: RadioActivity,
    },
    /// The frame is on the air: consult the channel, then report the result
    /// through [`Transaction::on_tx_result`] before advancing.
    Transmit {
        /// 1-based attempt number.
        try_number: u8,
    },
    /// The transaction is over.
    Complete(TxOutcome),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Load,
    Backoff { congestion: bool },
    Cca,
    Turnaround,
    Transmitting,
    AwaitResult,
    AckTail { acked: bool },
    RetryWait,
    Terminal(TxOutcome),
}

/// The per-packet CSMA-CA transaction state machine.
///
/// ```
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
/// use wsn_params::types::{MaxTries, PayloadSize};
/// use wsn_mac::transaction::{Action, Transaction, TxOutcome};
/// use wsn_sim_engine::time::SimDuration;
///
/// let mut tx = Transaction::new(
///     PayloadSize::new(50)?,
///     MaxTries::new(3)?,
///     SimDuration::from_millis(30),
/// );
/// let mut rng = StdRng::seed_from_u64(9);
/// let outcome = loop {
///     match tx.advance(&mut rng) {
///         Action::Wait { .. } => continue,           // a real driver sleeps here
///         Action::Transmit { .. } => tx.on_tx_result(true), // pretend ACK
///         Action::Complete(outcome) => break outcome,
///     }
/// };
/// assert_eq!(outcome, TxOutcome::Delivered { tries: 1 });
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
#[derive(Debug, Clone)]
pub struct Transaction {
    payload: PayloadSize,
    max_tries: MaxTries,
    retry_delay: SimDuration,
    /// `T_SPI` for this payload, fixed at construction (the payload never
    /// changes over the transaction's life).
    spi_load: SimDuration,
    /// `T_frame` for this payload, fixed at construction.
    frame_time: SimDuration,
    tries_used: u8,
    phase: Phase,
    force_congestion: u32,
    cca_busy_prob: f64,
    cca_retries: u32,
}

impl Transaction {
    /// Creates the transaction for one packet.
    pub fn new(payload: PayloadSize, max_tries: MaxTries, retry_delay: SimDuration) -> Self {
        Transaction {
            payload,
            max_tries,
            retry_delay,
            spi_load: timing::spi_load(payload),
            frame_time: timing::frame_time(payload),
            tries_used: 0,
            phase: Phase::Load,
            force_congestion: 0,
            cca_busy_prob: 0.0,
            cca_retries: 0,
        }
    }

    /// Sets the probability that each clear-channel assessment reports a
    /// busy medium (e.g. a CCA-detectable interferer's duty cycle). The
    /// transaction then performs TinyOS-style congestion backoff; after
    /// [`Self::MAX_CCA_RETRIES`] consecutive busy CCAs the attempt is sent
    /// anyway (matching the unslotted CSMA behaviour of transmitting after
    /// the backoff budget is spent rather than dropping).
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `[0, 1]`.
    pub fn set_cca_busy_probability(&mut self, prob: f64) {
        assert!(
            (0.0..=1.0).contains(&prob),
            "CCA busy probability must be in [0, 1], got {prob}"
        );
        self.cca_busy_prob = prob;
    }

    /// Consecutive busy CCAs tolerated before transmitting regardless.
    pub const MAX_CCA_RETRIES: u32 = 16;

    /// The payload this transaction carries.
    pub fn payload(&self) -> PayloadSize {
        self.payload
    }

    /// Transmissions used so far.
    pub fn tries_used(&self) -> u8 {
        self.tries_used
    }

    /// Forces the next `n` CCA checks to report a busy channel, exercising
    /// the congestion-backoff path (single-link runs never take it
    /// naturally).
    pub fn force_congestion(&mut self, n: u32) {
        self.force_congestion = n;
    }

    /// Busy CCAs deferred so far in the current attempt (resets on a clear
    /// assessment). Exposed so an external CCA policy (see
    /// [`advance_with_cca`](Self::advance_with_cca)) can honor the
    /// [`MAX_CCA_RETRIES`](Self::MAX_CCA_RETRIES) transmit-anyway budget.
    pub fn cca_retries(&self) -> u32 {
        self.cca_retries
    }

    /// The configured external-interferer CCA busy probability.
    pub fn cca_busy_probability(&self) -> f64 {
        self.cca_busy_prob
    }

    /// The default clear-channel assessment: samples the configured
    /// external-interferer busy probability (see
    /// [`set_cca_busy_probability`](Self::set_cca_busy_probability)),
    /// drawing from `rng` only when the probability is non-zero and the
    /// transmit-anyway budget has not been spent. This is exactly the
    /// decision [`advance`](Self::advance) makes; it is public so a
    /// shared-channel medium can fall back to it for external noise after
    /// checking real occupancy.
    pub fn sample_cca_busy<R: Rng + ?Sized>(txn: &Self, rng: &mut R) -> bool {
        txn.cca_busy_prob > 0.0
            && txn.cca_retries < Self::MAX_CCA_RETRIES
            && rng.gen::<f64>() < txn.cca_busy_prob
    }

    /// Advances the state machine and returns the next driver instruction.
    ///
    /// # Panics
    ///
    /// Panics if called while a transmission result is outstanding (i.e.
    /// after [`Action::Transmit`] was returned but before
    /// [`on_tx_result`](Self::on_tx_result) was called).
    pub fn advance<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Action {
        self.advance_with_cca(rng, Self::sample_cca_busy)
    }

    /// Like [`advance`](Self::advance), but delegates the clear-channel
    /// assessment to `cca_busy`, called exactly once per CCA with the
    /// transaction state and the backoff RNG. The multi-link simulator
    /// samples *actual* channel occupancy here; passing
    /// [`sample_cca_busy`](Self::sample_cca_busy) reproduces
    /// [`advance`](Self::advance) bit-for-bit. A [`force_congestion`]
    /// override is applied *before* the callback runs (and does not
    /// suppress it, so RNG consumption is identical either way).
    ///
    /// # Panics
    ///
    /// Panics under the same condition as [`advance`](Self::advance).
    ///
    /// [`force_congestion`]: Self::force_congestion
    pub fn advance_with_cca<R, F>(&mut self, rng: &mut R, cca_busy: F) -> Action
    where
        R: Rng + ?Sized,
        F: FnOnce(&Self, &mut R) -> bool,
    {
        match self.phase {
            Phase::Load => {
                self.phase = Phase::Backoff { congestion: false };
                Action::Wait {
                    duration: self.spi_load,
                    activity: RadioActivity::SpiLoad,
                }
            }
            Phase::Backoff { congestion } => {
                self.phase = Phase::Cca;
                let duration = if congestion {
                    timing::draw_congestion_backoff(rng)
                } else {
                    timing::draw_initial_backoff(rng)
                };
                Action::Wait {
                    duration,
                    activity: RadioActivity::Listen,
                }
            }
            Phase::Cca => {
                let forced = if self.force_congestion > 0 {
                    self.force_congestion -= 1;
                    true
                } else {
                    false
                };
                let sampled = cca_busy(&*self, rng);
                if forced || sampled {
                    self.cca_retries += 1;
                    self.phase = Phase::Backoff { congestion: true };
                    // CCA itself takes 8 symbols = 128 µs of listening.
                    return Action::Wait {
                        duration: SimDuration::from_micros(128),
                        activity: RadioActivity::Listen,
                    };
                }
                self.cca_retries = 0;
                self.phase = Phase::Turnaround;
                Action::Wait {
                    duration: timing::TURNAROUND,
                    activity: RadioActivity::TxPrep,
                }
            }
            Phase::Turnaround => {
                self.phase = Phase::Transmitting;
                Action::Wait {
                    duration: self.frame_time,
                    activity: RadioActivity::Transmit,
                }
            }
            Phase::Transmitting => {
                self.tries_used += 1;
                self.phase = Phase::AwaitResult;
                Action::Transmit {
                    try_number: self.tries_used,
                }
            }
            Phase::AwaitResult => {
                panic!("advance called before on_tx_result reported the attempt outcome")
            }
            Phase::AckTail { acked } => {
                if acked {
                    self.phase = Phase::Terminal(TxOutcome::Delivered {
                        tries: self.tries_used,
                    });
                } else if self.tries_used < self.max_tries.get() {
                    self.phase = Phase::RetryWait;
                } else {
                    self.phase = Phase::Terminal(TxOutcome::Failed {
                        tries: self.tries_used,
                    });
                }
                let duration = if acked {
                    timing::ACK_RECEIVE
                } else {
                    timing::ACK_TIMEOUT
                };
                Action::Wait {
                    duration,
                    activity: RadioActivity::Listen,
                }
            }
            Phase::RetryWait => {
                self.phase = Phase::Backoff { congestion: false };
                Action::Wait {
                    duration: self.retry_delay,
                    activity: RadioActivity::Idle,
                }
            }
            Phase::Terminal(outcome) => Action::Complete(outcome),
        }
    }

    /// Reports whether the attempt announced by [`Action::Transmit`] was
    /// acknowledged.
    ///
    /// # Panics
    ///
    /// Panics if no transmission result is outstanding.
    pub fn on_tx_result(&mut self, acked: bool) {
        assert!(
            self.phase == Phase::AwaitResult,
            "on_tx_result called with no outstanding transmission"
        );
        self.phase = Phase::AckTail { acked };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn payload() -> PayloadSize {
        PayloadSize::new(50).unwrap()
    }

    fn drive(tx: &mut Transaction, ack_plan: &[bool]) -> (TxOutcome, SimDuration, u32) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut total = SimDuration::ZERO;
        let mut attempts = 0usize;
        let mut waits = 0u32;
        loop {
            match tx.advance(&mut rng) {
                Action::Wait { duration, .. } => {
                    total += duration;
                    waits += 1;
                }
                Action::Transmit { try_number } => {
                    assert_eq!(try_number as usize, attempts + 1);
                    tx.on_tx_result(ack_plan[attempts]);
                    attempts += 1;
                }
                Action::Complete(outcome) => return (outcome, total, waits),
            }
        }
    }

    #[test]
    fn first_try_success() {
        let mut tx = Transaction::new(payload(), MaxTries::new(3).unwrap(), SimDuration::ZERO);
        let (outcome, _, _) = drive(&mut tx, &[true]);
        assert_eq!(outcome, TxOutcome::Delivered { tries: 1 });
    }

    #[test]
    fn succeeds_on_last_allowed_try() {
        let mut tx = Transaction::new(payload(), MaxTries::new(3).unwrap(), SimDuration::ZERO);
        let (outcome, _, _) = drive(&mut tx, &[false, false, true]);
        assert_eq!(outcome, TxOutcome::Delivered { tries: 3 });
    }

    #[test]
    fn fails_after_budget_exhausted() {
        let mut tx = Transaction::new(payload(), MaxTries::new(3).unwrap(), SimDuration::ZERO);
        let (outcome, _, _) = drive(&mut tx, &[false, false, false]);
        assert_eq!(outcome, TxOutcome::Failed { tries: 3 });
        assert!(!outcome.is_delivered());
    }

    #[test]
    fn no_retransmission_when_budget_is_one() {
        let mut tx = Transaction::new(payload(), MaxTries::ONE, SimDuration::from_millis(100));
        let (outcome, _, _) = drive(&mut tx, &[false]);
        assert_eq!(outcome, TxOutcome::Failed { tries: 1 });
    }

    #[test]
    fn service_time_components_for_one_success() {
        // Deterministic expectation apart from the random backoff:
        // SPI + backoff + turnaround + frame + T_ACK.
        let mut tx = Transaction::new(payload(), MaxTries::ONE, SimDuration::ZERO);
        let (_, total, _) = drive(&mut tx, &[true]);
        let fixed = timing::spi_load(payload())
            + timing::TURNAROUND
            + timing::frame_time(payload())
            + timing::ACK_RECEIVE;
        let backoff = total - fixed;
        assert!(backoff.as_micros().is_multiple_of(320), "backoff={backoff}");
        assert!(backoff >= timing::BACKOFF_UNIT && backoff <= timing::BACKOFF_UNIT * 32);
    }

    #[test]
    fn retry_adds_dretry_timeout_and_backoff() {
        let dretry = SimDuration::from_millis(30);
        let mut tx1 = Transaction::new(payload(), MaxTries::new(2).unwrap(), dretry);
        let (_, with_retry, _) = drive(&mut tx1, &[false, true]);
        let mut tx2 = Transaction::new(payload(), MaxTries::ONE, dretry);
        let (_, single, _) = drive(&mut tx2, &[true]);
        // The retry path must cost at least Dretry + T_waitACK − T_ACK more.
        let extra = with_retry - single;
        let min_extra = dretry + timing::ACK_TIMEOUT - timing::ACK_RECEIVE;
        assert!(extra >= min_extra, "extra={extra} min={min_extra}");
    }

    #[test]
    fn spi_load_happens_only_once() {
        // Count SpiLoad waits across a 3-try transaction.
        let mut tx = Transaction::new(payload(), MaxTries::new(3).unwrap(), SimDuration::ZERO);
        let mut rng = StdRng::seed_from_u64(1);
        let mut spi_loads = 0;
        let mut attempts = 0;
        loop {
            match tx.advance(&mut rng) {
                Action::Wait { activity, .. } => {
                    if activity == RadioActivity::SpiLoad {
                        spi_loads += 1;
                    }
                }
                Action::Transmit { .. } => {
                    tx.on_tx_result(attempts == 2);
                    attempts += 1;
                }
                Action::Complete(_) => break,
            }
        }
        assert_eq!(spi_loads, 1);
        assert_eq!(attempts, 3);
    }

    #[test]
    fn congestion_path_adds_short_backoffs() {
        let mut tx = Transaction::new(payload(), MaxTries::ONE, SimDuration::ZERO);
        tx.force_congestion(2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut listens = 0;
        loop {
            match tx.advance(&mut rng) {
                Action::Wait { activity, .. } => {
                    if activity == RadioActivity::Listen {
                        listens += 1;
                    }
                }
                Action::Transmit { .. } => tx.on_tx_result(true),
                Action::Complete(_) => break,
            }
        }
        // initial backoff + 2×(CCA-busy + congestion backoff) + final ACK listen
        // = 1 + 4 + 1 listens, plus the successful CCA is silent (no wait).
        assert!(listens >= 6, "listens={listens}");
    }

    #[test]
    fn probabilistic_cca_busy_defers_transmission() {
        // Aggregate over many transactions: with 60 % busy CCAs the mean
        // listen count per packet must clearly exceed the clear-channel
        // baseline of 2 (initial backoff + ACK reception).
        let mut rng = StdRng::seed_from_u64(77);
        let mut listens = 0u32;
        let transactions = 50;
        for _ in 0..transactions {
            let mut tx = Transaction::new(payload(), MaxTries::ONE, SimDuration::ZERO);
            tx.set_cca_busy_probability(0.6);
            loop {
                match tx.advance(&mut rng) {
                    Action::Wait { activity, .. } => {
                        if activity == RadioActivity::Listen {
                            listens += 1;
                        }
                    }
                    Action::Transmit { .. } => tx.on_tx_result(true),
                    Action::Complete(_) => break,
                }
            }
        }
        // E[extra listens] = 2 × E[busy CCAs] = 2 × 0.6/0.4 = 3 per packet.
        let mean = listens as f64 / transactions as f64;
        assert!(mean > 3.0, "mean listens per packet = {mean}");
    }

    #[test]
    fn cca_busy_one_transmits_after_retry_budget() {
        // Even a permanently-busy channel must eventually transmit (the
        // unslotted CSMA budget behaviour), not loop forever.
        let mut tx = Transaction::new(payload(), MaxTries::ONE, SimDuration::ZERO);
        tx.set_cca_busy_probability(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut steps = 0u32;
        loop {
            steps += 1;
            assert!(steps < 10_000, "transaction did not terminate");
            match tx.advance(&mut rng) {
                Action::Wait { .. } => {}
                Action::Transmit { .. } => tx.on_tx_result(true),
                Action::Complete(outcome) => {
                    assert!(outcome.is_delivered());
                    break;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "CCA busy probability")]
    fn invalid_cca_probability_rejected() {
        let mut tx = Transaction::new(payload(), MaxTries::ONE, SimDuration::ZERO);
        tx.set_cca_busy_probability(1.5);
    }

    #[test]
    #[should_panic(expected = "no outstanding transmission")]
    fn result_without_transmit_panics() {
        let mut tx = Transaction::new(payload(), MaxTries::ONE, SimDuration::ZERO);
        tx.on_tx_result(true);
    }

    #[test]
    #[should_panic(expected = "before on_tx_result")]
    fn advance_with_outstanding_result_panics() {
        let mut tx = Transaction::new(payload(), MaxTries::ONE, SimDuration::ZERO);
        let mut rng = StdRng::seed_from_u64(2);
        loop {
            match tx.advance(&mut rng) {
                Action::Transmit { .. } => {
                    // Skip on_tx_result and advance again: must panic.
                    let _ = tx.advance(&mut rng);
                    unreachable!();
                }
                Action::Wait { .. } => continue,
                Action::Complete(_) => unreachable!(),
            }
        }
    }

    #[test]
    fn precomputed_phase_durations_match_timing_module() {
        // The SPI-load and frame-time waits are fixed at construction;
        // they must equal the timing-module functions for the payload.
        let mut tx = Transaction::new(payload(), MaxTries::ONE, SimDuration::ZERO);
        let mut rng = StdRng::seed_from_u64(11);
        let mut saw_spi = false;
        let mut saw_frame = false;
        loop {
            match tx.advance(&mut rng) {
                Action::Wait { duration, activity } => match activity {
                    RadioActivity::SpiLoad => {
                        assert_eq!(duration, timing::spi_load(payload()));
                        saw_spi = true;
                    }
                    RadioActivity::Transmit => {
                        assert_eq!(duration, timing::frame_time(payload()));
                        saw_frame = true;
                    }
                    _ => {}
                },
                Action::Transmit { .. } => tx.on_tx_result(true),
                Action::Complete(_) => break,
            }
        }
        assert!(saw_spi && saw_frame);
    }

    #[test]
    fn complete_is_idempotent() {
        let mut tx = Transaction::new(payload(), MaxTries::ONE, SimDuration::ZERO);
        let (outcome, _, _) = drive(&mut tx, &[true]);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(tx.advance(&mut rng), Action::Complete(outcome));
        assert_eq!(tx.advance(&mut rng), Action::Complete(outcome));
    }
}
