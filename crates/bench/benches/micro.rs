//! Microbenchmarks of the hot simulation and model paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;
use wsn_bench::micro_config;
use wsn_link_sim::simulation::{LinkSimulation, SimOptions};
use wsn_models::goodput::GoodputModel;
use wsn_models::optimize::{Metric, Optimizer};
use wsn_models::predict::Predictor;
use wsn_models::service_time::ServiceTimeModel;
use wsn_params::grid::ParamGrid;
use wsn_params::types::{MaxTries, PayloadSize, RetryDelay};
use wsn_radio::channel::{Channel, ChannelConfig};
use wsn_radio::per::{DsssPer, EmpiricalPer, PerModel};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(20);

    group.bench_function("link_sim_500_packets", |b| {
        let cfg = micro_config();
        b.iter(|| {
            let outcome = LinkSimulation::new(
                black_box(cfg),
                SimOptions {
                    record_packets: false,
                    ..SimOptions::quick(500)
                },
            )
            .run();
            black_box(outcome.metrics().delivered)
        })
    });

    group.bench_function("channel_observe", |b| {
        let mut channel = Channel::new(
            ChannelConfig::paper_hallway(),
            micro_config().power,
            micro_config().distance,
        );
        let mut fading = StdRng::seed_from_u64(1);
        let mut noise = StdRng::seed_from_u64(2);
        b.iter(|| black_box(channel.observe(&mut fading, &mut noise).snr_db))
    });
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("models");
    let payload = PayloadSize::new(110).expect("valid");

    group.bench_function("per_empirical", |b| {
        let model = EmpiricalPer::paper();
        b.iter(|| black_box(model.per(black_box(12.5), payload)))
    });

    group.bench_function("per_dsss", |b| {
        let model = DsssPer;
        b.iter(|| black_box(model.per(black_box(2.5), payload)))
    });

    group.bench_function("service_time_expected", |b| {
        let model = ServiceTimeModel::paper();
        b.iter(|| {
            black_box(model.expected_service_time_s(
                black_box(12.5),
                payload,
                MaxTries::new(8).expect("valid"),
                RetryDelay::from_millis(30),
            ))
        })
    });

    group.bench_function("max_goodput", |b| {
        let model = GoodputModel::paper();
        b.iter(|| {
            black_box(model.max_goodput_bps(
                black_box(9.0),
                payload,
                MaxTries::new(3).expect("valid"),
                RetryDelay::ZERO,
            ))
        })
    });

    group.bench_function("predict_config", |b| {
        let predictor = Predictor::paper();
        let cfg = micro_config();
        b.iter(|| black_box(predictor.evaluate(black_box(&cfg)).max_goodput_bps))
    });
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer");
    group.sample_size(10);
    let grid = ParamGrid {
        distances_m: vec![35.0],
        queue_caps: vec![30],
        packet_intervals_ms: vec![30],
        ..ParamGrid::paper()
    };

    group.bench_function("evaluate_grid_576", |b| {
        let opt = Optimizer::paper();
        b.iter(|| black_box(opt.evaluate_grid(black_box(&grid)).len()))
    });

    group.bench_function("pareto_front_energy_goodput", |b| {
        let opt = Optimizer::paper();
        b.iter(|| {
            black_box(
                opt.pareto_front(black_box(&grid), &[Metric::Energy, Metric::Goodput])
                    .len(),
            )
        })
    });

    group.bench_function("epsilon_constraint", |b| {
        let opt = Optimizer::paper();
        b.iter(|| {
            black_box(opt.epsilon_constraint(
                black_box(&grid),
                Metric::Goodput,
                &[(Metric::Energy, 0.5)],
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_models, bench_optimizer);
criterion_main!(benches);
