//! One Criterion benchmark per reproduced table and figure.
//!
//! Each benchmark regenerates the corresponding paper artifact end-to-end
//! (simulation campaign + analysis + rendering) at the tiny `Scale::Bench`
//! packet count, so `cargo bench --bench figures` both times the harness
//! and smoke-tests every reproduction path in release mode.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wsn_experiments::campaign::Scale;
use wsn_experiments::run_experiment;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));

    for (id, _) in wsn_experiments::all_experiments() {
        group.bench_function(id, |b| {
            b.iter(|| {
                let report =
                    run_experiment(black_box(id), Scale::Bench).expect("known experiment id");
                black_box(report.sections.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
