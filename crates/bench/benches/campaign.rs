//! Campaign-runner throughput: configurations simulated per second through
//! the streaming sharded runner at `Scale::Bench`, swept over worker-thread
//! counts. This is the benchmark that shows whether the atomic work index +
//! bounded reorder buffer actually scales past one core.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wsn_experiments::campaign::{Campaign, Scale};
use wsn_experiments::stream::SinkFn;
use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;

fn bench_campaign_throughput(c: &mut Criterion) {
    let grid = ParamGrid {
        distances_m: vec![10.0, 20.0, 30.0, 35.0],
        power_levels: vec![3, 7, 11, 31],
        max_tries: vec![1, 3],
        retry_delays_ms: vec![0],
        queue_caps: vec![30],
        packet_intervals_ms: vec![50],
        payloads: vec![50],
    };
    let configs: Vec<StackConfig> = grid.iter().collect();

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));

    for threads in [1usize, 4, 8] {
        let campaign = Campaign {
            threads,
            ..Campaign::new(Scale::Bench)
        };
        let name = format!("{}configs_{threads}threads", configs.len());
        group.bench_function(&name, |b| {
            b.iter(|| {
                let mut delivered = 0usize;
                let mut sink = SinkFn::new(|_i, _r: &_| delivered += 1);
                let stats = campaign.run_streamed(black_box(&configs), &mut sink);
                black_box((delivered, stats.max_pending))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaign_throughput);
criterion_main!(benches);
