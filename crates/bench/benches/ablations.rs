//! Ablation benchmarks for the design choices documented in DESIGN.md:
//! each variant runs the same 500-packet link workload so throughput
//! differences between modeling choices are directly comparable.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wsn_bench::micro_config;
use wsn_link_sim::simulation::{LinkSimulation, SimOptions};
use wsn_link_sim::traffic::TrafficModel;
use wsn_radio::channel::ChannelConfig;
use wsn_radio::noise::NoiseModel;
use wsn_radio::per::{DsssPer, PerBackend};
use wsn_radio::shadowing::SigmaProfile;

fn run_with(channel: ChannelConfig, traffic: TrafficModel) -> u64 {
    let outcome = LinkSimulation::new(
        micro_config(),
        SimOptions {
            record_packets: false,
            ..SimOptions::quick(500)
        }
        .with_channel(channel)
        .with_traffic(traffic),
    )
    .run();
    outcome.metrics().delivered
}

fn bench_channel_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_channel");
    group.sample_size(20);

    group.bench_function("empirical_per_backend", |b| {
        b.iter(|| {
            black_box(run_with(
                ChannelConfig::paper_hallway(),
                TrafficModel::Periodic,
            ))
        })
    });

    group.bench_function("dsss_per_backend", |b| {
        let mut channel = ChannelConfig::paper_hallway();
        channel.per_backend = PerBackend::Dsss(DsssPer);
        b.iter(|| black_box(run_with(channel, TrafficModel::Periodic)))
    });

    group.bench_function("constant_noise", |b| {
        let mut channel = ChannelConfig::paper_hallway();
        channel.noise = NoiseModel::constant_default();
        b.iter(|| black_box(run_with(channel, TrafficModel::Periodic)))
    });

    group.bench_function("no_fading", |b| {
        let mut channel = ChannelConfig::paper_hallway();
        channel.sigma_profile = SigmaProfile::none();
        b.iter(|| black_box(run_with(channel, TrafficModel::Periodic)))
    });

    group.bench_function("no_ack_loss", |b| {
        let mut channel = ChannelConfig::paper_hallway();
        channel.ack_loss = false;
        b.iter(|| black_box(run_with(channel, TrafficModel::Periodic)))
    });
    group.finish();
}

fn bench_traffic_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_traffic");
    group.sample_size(20);

    for (name, traffic) in [
        ("periodic", TrafficModel::Periodic),
        ("poisson", TrafficModel::Poisson),
        ("saturating", TrafficModel::Saturating),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_with(ChannelConfig::paper_hallway(), traffic)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_channel_ablations, bench_traffic_ablations);
criterion_main!(benches);
