//! # wsn-bench
//!
//! Criterion benchmark harness for the reproduction:
//!
//! * `benches/figures.rs` — one benchmark per reproduced table/figure,
//!   regenerating the artifact at [`Scale::Bench`] packet counts
//!   (`cargo bench -p wsn-bench --bench figures`),
//! * `benches/micro.rs` — microbenchmarks of the hot simulation and model
//!   paths (event loop, PER backends, service-time model, optimizer),
//! * `benches/ablations.rs` — design-choice ablations called out in
//!   DESIGN.md (channel backend, noise model, fading, arrival process).
//!
//! [`Scale::Bench`]: wsn_experiments::campaign::Scale::Bench

/// The standard per-packet simulation workload used by microbenchmarks:
/// a mid-quality 20 m link with retransmissions enabled.
pub fn micro_config() -> wsn_params::config::StackConfig {
    wsn_params::config::StackConfig::builder()
        .distance_m(20.0)
        .power_level(19)
        .payload_bytes(80)
        .max_tries(3)
        .retry_delay_ms(30)
        .queue_cap(30)
        .packet_interval_ms(30)
        .build()
        .expect("constants are valid")
}

#[cfg(test)]
mod tests {
    #[test]
    fn micro_config_is_valid() {
        let cfg = super::micro_config();
        assert_eq!(cfg.payload.bytes(), 80);
    }
}
