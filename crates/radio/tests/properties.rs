//! Property tests for the radio substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use wsn_params::types::{Distance, PayloadSize, PowerLevel};
use wsn_radio::channel::{Channel, ChannelConfig};
use wsn_radio::interference::{combine_dbm, InterferenceModel};
use wsn_radio::pathloss::PathLoss;
use wsn_radio::per::{DsssPer, EmpiricalPer, PerModel};

proptest! {
    #[test]
    fn pathloss_monotone_in_distance(
        d1 in 1.0f64..100.0,
        delta in 0.1f64..50.0,
    ) {
        let pl = PathLoss::paper_hallway();
        let near = Distance::from_meters(d1).unwrap();
        let far = Distance::from_meters(d1 + delta).unwrap();
        prop_assert!(pl.loss_db(far) > pl.loss_db(near));
        let p = PowerLevel::new(19).unwrap();
        prop_assert!(pl.mean_rssi_dbm(p, far) < pl.mean_rssi_dbm(p, near));
    }

    #[test]
    fn pathloss_monotone_in_power(level in 1u8..=30, d in 1.0f64..60.0) {
        let pl = PathLoss::paper_hallway();
        let dist = Distance::from_meters(d).unwrap();
        let lo = PowerLevel::new(level).unwrap();
        let hi = PowerLevel::new(level + 1).unwrap();
        prop_assert!(pl.mean_rssi_dbm(hi, dist) >= pl.mean_rssi_dbm(lo, dist));
    }

    #[test]
    fn per_backends_are_probabilities(
        snr in -30.0f64..50.0,
        payload in 1u16..=114,
    ) {
        let payload = PayloadSize::new(payload).unwrap();
        for per in [
            EmpiricalPer::paper().per(snr, payload),
            DsssPer.per(snr, payload),
            EmpiricalPer::paper().ack_per(snr),
            DsssPer.ack_per(snr),
        ] {
            prop_assert!((0.0..=1.0).contains(&per), "per={per}");
        }
    }

    #[test]
    fn per_monotone_in_payload(
        snr in -10.0f64..40.0,
        payload in 1u16..=113,
    ) {
        let small = PayloadSize::new(payload).unwrap();
        let large = PayloadSize::new(payload + 1).unwrap();
        prop_assert!(
            EmpiricalPer::paper().per(snr, large) >= EmpiricalPer::paper().per(snr, small)
        );
        prop_assert!(DsssPer.per(snr, large) >= DsssPer.per(snr, small) - 1e-15);
    }

    #[test]
    fn combine_dbm_dominates_both_terms(a in -120.0f64..0.0, b in -120.0f64..0.0) {
        let c = combine_dbm(a, b);
        prop_assert!(c >= a.max(b) - 1e-9);
        prop_assert!(c <= a.max(b) + 3.02); // equal powers add 3.01 dB
    }

    #[test]
    fn interference_collision_probability_bounded(
        duty in 0.0f64..=1.0,
        busy_ms in 0.5f64..50.0,
        detectable in any::<bool>(),
    ) {
        let m = InterferenceModel {
            duty_cycle: duty,
            power_dbm: -75.0,
            cca_detectable: detectable,
            mean_busy_ms: busy_ms,
        };
        let p = m.collision_probability();
        prop_assert!((0.0..=1.0).contains(&p));
        // Deferral helps when bursts are long relative to one frame
        // (mean idle gap ≥ frame time ⟺ busy·(1−d) ≥ 4.256 ms). Against
        // many short bursts even a clear CCA cannot protect the frame —
        // the model correctly lets p exceed the raw duty cycle there.
        if detectable && duty > 0.0 && duty < 1.0 && busy_ms * (1.0 - duty) >= 4.256 {
            prop_assert!(p <= duty + 1e-12, "p={} duty={}", p, duty);
        }
    }

    #[test]
    fn channel_observations_center_on_budget(
        level in prop::sample::select(vec![3u8, 11, 19, 27]),
        d in 5.0f64..35.0,
        seed in 0u64..500,
    ) {
        let mut ch = Channel::new(
            ChannelConfig::paper_hallway(),
            PowerLevel::new(level).unwrap(),
            Distance::from_meters(d).unwrap(),
        );
        let mut fading = StdRng::seed_from_u64(seed);
        let mut noise = StdRng::seed_from_u64(seed ^ 0xA5A5);
        let n = 4000;
        let mean_rssi: f64 = (0..n)
            .map(|_| ch.observe(&mut fading, &mut noise).rssi_dbm)
            .sum::<f64>() / n as f64;
        prop_assert!(
            (mean_rssi - ch.mean_rssi_dbm()).abs() < 0.6,
            "mean {mean_rssi} vs budget {}",
            ch.mean_rssi_dbm()
        );
    }
}
