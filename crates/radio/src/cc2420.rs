//! TI CC2420 radio characteristics, taken from the datasheet the paper used
//! to estimate `Etx` in its energy model (Eq. 2).
//!
//! The CC2420 exposes 31 programmable PA levels; the datasheet specifies the
//! output power and TX current draw at eight anchor levels. Intermediate
//! levels are linearly interpolated, which matches common practice in the
//! WSN literature.

use wsn_params::frame::PHY_RATE_BPS;
use wsn_params::types::PowerLevel;

/// Supply voltage of a TelosB mote (2 × AA), volts.
pub const SUPPLY_VOLTAGE: f64 = 3.0;

/// RX / listen current draw, amperes (datasheet: 18.8 mA).
pub const RX_CURRENT_A: f64 = 18.8e-3;

/// Idle-mode current draw, amperes (datasheet: 426 µA).
pub const IDLE_CURRENT_A: f64 = 426e-6;

/// Power-down (sleep) current draw, amperes (datasheet: 20 µA).
pub const SLEEP_CURRENT_A: f64 = 20e-6;

/// Receiver sensitivity, dBm (datasheet: −95 dBm).
pub const SENSITIVITY_DBM: f64 = -95.0;

/// Datasheet anchors: `(PA level, output dBm, TX current A)`.
const PA_TABLE: [(u8, f64, f64); 8] = [
    (3, -25.0, 8.5e-3),
    (7, -15.0, 9.9e-3),
    (11, -10.0, 11.2e-3),
    (15, -7.0, 12.5e-3),
    (19, -5.0, 13.9e-3),
    (23, -3.0, 15.2e-3),
    (27, -1.0, 16.5e-3),
    (31, 0.0, 17.4e-3),
];

fn interpolate(level: u8, field: impl Fn(&(u8, f64, f64)) -> f64) -> f64 {
    let l = level as f64;
    if level <= PA_TABLE[0].0 {
        return field(&PA_TABLE[0]);
    }
    if level >= PA_TABLE[PA_TABLE.len() - 1].0 {
        return field(&PA_TABLE[PA_TABLE.len() - 1]);
    }
    for pair in PA_TABLE.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        if level >= lo.0 && level <= hi.0 {
            let t = (l - lo.0 as f64) / (hi.0 as f64 - lo.0 as f64);
            return field(lo) + t * (field(hi) - field(lo));
        }
    }
    unreachable!("PA table covers 3..=31 and ends are clamped")
}

/// Transmit output power for a PA level, dBm.
///
/// ```
/// use wsn_params::types::PowerLevel;
/// use wsn_radio::cc2420::output_power_dbm;
///
/// assert_eq!(output_power_dbm(PowerLevel::MAX), 0.0);
/// assert_eq!(output_power_dbm(PowerLevel::new(23)?), -3.0);
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
pub fn output_power_dbm(level: PowerLevel) -> f64 {
    interpolate(level.level(), |a| a.1)
}

/// Transmit current draw for a PA level, amperes.
pub fn tx_current_a(level: PowerLevel) -> f64 {
    interpolate(level.level(), |a| a.2)
}

/// Transmit power drain for a PA level, watts (`V · I`).
pub fn tx_power_w(level: PowerLevel) -> f64 {
    SUPPLY_VOLTAGE * tx_current_a(level)
}

/// Energy to transmit one bit at a PA level, joules — the `Etx` of Eq. 2.
///
/// At the maximum level this is `3 V × 17.4 mA / 250 kb/s ≈ 0.209 µJ/bit`,
/// which is why the paper's best-case energies (Table IV) sit around
/// 0.24 µJ per *information* bit once overhead is added.
pub fn tx_energy_per_bit_j(level: PowerLevel) -> f64 {
    tx_power_w(level) / PHY_RATE_BPS as f64
}

/// RX/listen power drain, watts.
pub fn rx_power_w() -> f64 {
    SUPPLY_VOLTAGE * RX_CURRENT_A
}

/// Idle power drain, watts.
pub fn idle_power_w() -> f64 {
    SUPPLY_VOLTAGE * IDLE_CURRENT_A
}

/// Sleep (power-down) drain, watts.
pub fn sleep_power_w() -> f64 {
    SUPPLY_VOLTAGE * SLEEP_CURRENT_A
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lvl(l: u8) -> PowerLevel {
        PowerLevel::new(l).unwrap()
    }

    #[test]
    fn anchor_levels_match_datasheet() {
        for (level, dbm, amps) in PA_TABLE {
            assert_eq!(output_power_dbm(lvl(level)), dbm);
            assert_eq!(tx_current_a(lvl(level)), amps);
        }
    }

    #[test]
    fn interpolation_is_monotone_in_level() {
        let mut prev_dbm = f64::NEG_INFINITY;
        let mut prev_amp = 0.0;
        for level in 1..=31 {
            let dbm = output_power_dbm(lvl(level));
            let amp = tx_current_a(lvl(level));
            assert!(dbm >= prev_dbm, "dBm not monotone at level {level}");
            assert!(amp >= prev_amp, "current not monotone at level {level}");
            prev_dbm = dbm;
            prev_amp = amp;
        }
    }

    #[test]
    fn sub_anchor_levels_clamp() {
        assert_eq!(output_power_dbm(lvl(1)), -25.0);
        assert_eq!(tx_current_a(lvl(2)), 8.5e-3);
    }

    #[test]
    fn midpoint_interpolates_linearly() {
        // Level 5 is halfway between 3 (−25 dBm) and 7 (−15 dBm).
        assert!((output_power_dbm(lvl(5)) - -20.0).abs() < 1e-9);
        assert!((tx_current_a(lvl(5)) - 9.2e-3).abs() < 1e-12);
    }

    #[test]
    fn energy_per_bit_at_max_power() {
        let e = tx_energy_per_bit_j(PowerLevel::MAX);
        // 3 V * 17.4 mA / 250 kb/s = 208.8 nJ/bit.
        assert!((e - 2.088e-7).abs() < 1e-12);
    }

    #[test]
    fn rx_drain_exceeds_all_tx_drains() {
        // A well-known CC2420 property: listening is more expensive than
        // transmitting at any power level.
        assert!(rx_power_w() > tx_power_w(PowerLevel::MAX));
        assert!(idle_power_w() < tx_power_w(PowerLevel::MIN));
    }
}
