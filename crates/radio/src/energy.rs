//! Radio energy accounting.
//!
//! The sender's radio is modeled as a three-state machine (transmit at a PA
//! level, receive/listen, idle); the meter integrates the CC2420 datasheet
//! power drains over the time spent in each state. This gives the *measured*
//! energy figure that the paper's empirical model (Eq. 2) is later compared
//! against.

use serde::{Deserialize, Serialize};

use wsn_params::types::PowerLevel;
use wsn_sim_engine::time::SimDuration;

use crate::cc2420;

/// Cumulative energy breakdown of one radio, joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy spent transmitting.
    pub tx_j: f64,
    /// Energy spent listening (CCA, ACK wait, RX).
    pub rx_j: f64,
    /// Energy spent idle.
    pub idle_j: f64,
}

impl EnergyBreakdown {
    /// Total energy across all states, joules.
    pub fn total_j(&self) -> f64 {
        self.tx_j + self.rx_j + self.idle_j
    }
}

/// Integrates radio power drain over simulated time.
///
/// ```
/// use wsn_params::types::PowerLevel;
/// use wsn_sim_engine::time::SimDuration;
/// use wsn_radio::energy::EnergyMeter;
///
/// let mut meter = EnergyMeter::new();
/// meter.add_tx(PowerLevel::MAX, SimDuration::from_millis(4));
/// meter.add_rx(SimDuration::from_millis(8));
/// let e = meter.breakdown();
/// assert!(e.tx_j > 0.0 && e.rx_j > e.tx_j); // RX drain > TX drain on CC2420
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    breakdown: EnergyBreakdown,
    tx_time_us: u64,
    rx_time_us: u64,
    idle_time_us: u64,
}

impl EnergyMeter {
    /// A meter with no accumulated energy.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Accounts `duration` of transmission at `level`.
    pub fn add_tx(&mut self, level: PowerLevel, duration: SimDuration) {
        self.breakdown.tx_j += cc2420::tx_power_w(level) * duration.as_secs_f64();
        self.tx_time_us += duration.as_micros();
    }

    /// Accounts `duration` of listening / receiving.
    pub fn add_rx(&mut self, duration: SimDuration) {
        self.breakdown.rx_j += cc2420::rx_power_w() * duration.as_secs_f64();
        self.rx_time_us += duration.as_micros();
    }

    /// Accounts `duration` of idle time.
    pub fn add_idle(&mut self, duration: SimDuration) {
        self.breakdown.idle_j += cc2420::idle_power_w() * duration.as_secs_f64();
        self.idle_time_us += duration.as_micros();
    }

    /// The accumulated energy breakdown.
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.breakdown
    }

    /// Total accumulated energy, joules.
    pub fn total_j(&self) -> f64 {
        self.breakdown.total_j()
    }

    /// Total time accounted in any state.
    pub fn accounted_time(&self) -> SimDuration {
        SimDuration::from_micros(self.tx_time_us + self.rx_time_us + self.idle_time_us)
    }

    /// Time spent transmitting.
    pub fn tx_time(&self) -> SimDuration {
        SimDuration::from_micros(self.tx_time_us)
    }

    /// Time spent listening.
    pub fn rx_time(&self) -> SimDuration {
        SimDuration::from_micros(self.rx_time_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_energy_matches_hand_computation() {
        let mut m = EnergyMeter::new();
        m.add_tx(PowerLevel::MAX, SimDuration::from_millis(10));
        // 3 V * 17.4 mA * 10 ms = 522 µJ.
        assert!((m.total_j() - 522e-6).abs() < 1e-12);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let mut m = EnergyMeter::new();
        m.add_tx(PowerLevel::new(7).unwrap(), SimDuration::from_millis(3));
        m.add_rx(SimDuration::from_millis(5));
        m.add_idle(SimDuration::from_secs(1));
        let b = m.breakdown();
        assert!((b.tx_j + b.rx_j + b.idle_j - m.total_j()).abs() < 1e-18);
        assert_eq!(m.accounted_time(), SimDuration::from_micros(1_008_000));
    }

    #[test]
    fn higher_power_level_costs_more() {
        let mut low = EnergyMeter::new();
        let mut high = EnergyMeter::new();
        low.add_tx(PowerLevel::new(3).unwrap(), SimDuration::from_millis(4));
        high.add_tx(PowerLevel::new(31).unwrap(), SimDuration::from_millis(4));
        assert!(high.total_j() > low.total_j());
    }

    #[test]
    fn idle_is_cheap() {
        let mut idle = EnergyMeter::new();
        let mut rx = EnergyMeter::new();
        idle.add_idle(SimDuration::from_secs(1));
        rx.add_rx(SimDuration::from_secs(1));
        assert!(idle.total_j() < rx.total_j() / 10.0);
    }

    #[test]
    fn meter_is_additive() {
        let mut m = EnergyMeter::new();
        for _ in 0..10 {
            m.add_tx(PowerLevel::MAX, SimDuration::from_millis(1));
        }
        let mut once = EnergyMeter::new();
        once.add_tx(PowerLevel::MAX, SimDuration::from_millis(10));
        assert!((m.total_j() - once.total_j()).abs() < 1e-15);
        assert_eq!(m.tx_time(), once.tx_time());
    }
}
