//! Campaign-shared memoization of deterministic link budgets.
//!
//! Every configuration of a campaign grid that shares a `(power, distance)`
//! operating point has the same mean RSSI (path loss), shadowing deviation
//! and mean noise floor — the paper's Table I grid re-uses each of its
//! 6 × 8 operating points 1008 times. [`LinkBudgetTable`] computes each
//! [`LinkBudget`] once and hands out [`Channel`]s built from the memo.
//!
//! **Bit-for-bit contract:** the memoized values are produced by exactly
//! the same code paths [`Channel::new`] runs
//! ([`PathLoss::mean_rssi_dbm`](crate::pathloss::PathLoss::mean_rssi_dbm),
//! [`SigmaProfile::sigma_db`](crate::shadowing::SigmaProfile::sigma_db),
//! [`NoiseModel::mean_dbm`](crate::noise::NoiseModel::mean_dbm)), so a
//! channel obtained through the table is indistinguishable from one built
//! directly — same fields, same observation stream. A test below pins this.

use std::collections::HashMap;
use std::sync::Mutex;

use wsn_params::types::{Distance, PowerLevel};

use crate::channel::{Channel, ChannelConfig};

/// The deterministic per-`(power, distance)` terms of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// Mean (un-faded) received signal strength, dBm.
    pub mean_rssi_dbm: f64,
    /// Stationary shadowing deviation at this distance, dB.
    pub sigma_db: f64,
    /// Expected noise floor, dBm.
    pub noise_mean_dbm: f64,
}

impl LinkBudget {
    /// Computes the budget for one operating point, via the identical
    /// code paths [`Channel::new`] uses.
    pub fn compute(config: &ChannelConfig, power: PowerLevel, distance: Distance) -> Self {
        LinkBudget {
            mean_rssi_dbm: config.pathloss.mean_rssi_dbm(power, distance),
            sigma_db: config.sigma_profile.sigma_db(distance),
            noise_mean_dbm: config.noise.mean_dbm(),
        }
    }
}

/// A thread-shared memo of [`LinkBudget`]s for one propagation environment.
///
/// Wrap it in an `Arc` and hand clones to campaign workers: the first
/// worker to simulate an operating point pays for the `log10` and mixture
/// arithmetic, every later configuration at the same point reuses the
/// entry. Lock contention is negligible — the lock is taken once per
/// *simulation run*, not per packet.
#[derive(Debug, Default)]
pub struct LinkBudgetTable {
    config: ChannelConfig,
    /// Keyed by `(PA level, distance bits)`; distances come from a finite
    /// experiment grid, so exact-bits keying is both correct and complete.
    cache: Mutex<HashMap<(u8, u64), LinkBudget>>,
}

impl LinkBudgetTable {
    /// Creates an empty table for `config`.
    pub fn new(config: ChannelConfig) -> Self {
        LinkBudgetTable {
            config,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The propagation environment this table memoizes.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// The budget for one operating point, computed at most once.
    pub fn budget(&self, power: PowerLevel, distance: Distance) -> LinkBudget {
        let key = (power.level(), distance.meters().to_bits());
        let mut cache = self.cache.lock().expect("budget cache lock");
        *cache
            .entry(key)
            .or_insert_with(|| LinkBudget::compute(&self.config, power, distance))
    }

    /// A live channel for one operating point, built from the memoized
    /// budget; identical to `Channel::new(*self.config(), power, distance)`.
    pub fn channel(&self, power: PowerLevel, distance: Distance) -> Channel {
        Channel::from_budget(self.config, self.budget(power, distance))
    }

    /// Computes (and memoizes) the budgets for every operating point in
    /// `points` up front. Campaign runners call this once, serially,
    /// before spawning workers, so that per-worker table clones (see
    /// [`clone_table`](Self::clone_table)) start fully populated and no
    /// worker ever contends on a shared lock mid-run.
    pub fn prewarm<I>(&self, points: I)
    where
        I: IntoIterator<Item = (PowerLevel, Distance)>,
    {
        for (power, distance) in points {
            let _ = self.budget(power, distance);
        }
    }

    /// A deep copy of this table: same environment, same memoized budgets,
    /// its own uncontended lock. Budgets are pure functions of
    /// `(config, power, distance)`, so clones are interchangeable with the
    /// original — handing each campaign worker its own clone removes the
    /// shared-lock contention without perturbing a single bit of output.
    pub fn clone_table(&self) -> LinkBudgetTable {
        LinkBudgetTable {
            config: self.config,
            cache: Mutex::new(self.cache.lock().expect("budget cache lock").clone()),
        }
    }

    /// Number of distinct operating points memoized so far.
    pub fn len(&self) -> usize {
        self.cache.lock().expect("budget cache lock").len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wsn_params::types::PayloadSize;

    fn pt(power: u8, dist: f64) -> (PowerLevel, Distance) {
        (
            PowerLevel::new(power).unwrap(),
            Distance::from_meters(dist).unwrap(),
        )
    }

    #[test]
    fn table_channel_is_bit_identical_to_direct_construction() {
        let config = ChannelConfig::paper_hallway();
        let table = LinkBudgetTable::new(config);
        let payload = PayloadSize::new(110).unwrap();
        for (power, dist) in [(3u8, 35.0), (11, 20.0), (31, 10.0), (7, 35.0)] {
            let (p, d) = pt(power, dist);
            let mut direct = Channel::new(config, p, d);
            let mut memoized = table.channel(p, d);
            assert_eq!(
                direct.mean_rssi_dbm().to_bits(),
                memoized.mean_rssi_dbm().to_bits()
            );
            // Identical observation + delivery streams under identical RNGs.
            let mut f1 = StdRng::seed_from_u64(1);
            let mut n1 = StdRng::seed_from_u64(2);
            let mut d1 = StdRng::seed_from_u64(3);
            let mut f2 = StdRng::seed_from_u64(1);
            let mut n2 = StdRng::seed_from_u64(2);
            let mut d2 = StdRng::seed_from_u64(3);
            for _ in 0..64 {
                let a = direct.observe(&mut f1, &mut n1);
                let b = memoized.observe(&mut f2, &mut n2);
                assert_eq!(a.rssi_dbm.to_bits(), b.rssi_dbm.to_bits());
                assert_eq!(a.snr_db.to_bits(), b.snr_db.to_bits());
                assert_eq!(a.noise_dbm.to_bits(), b.noise_dbm.to_bits());
                assert_eq!(a.lqi, b.lqi);
                assert_eq!(
                    direct.data_success(&a, payload, &mut d1),
                    memoized.data_success(&b, payload, &mut d2)
                );
            }
        }
    }

    #[test]
    fn repeated_lookups_hit_the_memo() {
        let table = LinkBudgetTable::new(ChannelConfig::paper_hallway());
        assert!(table.is_empty());
        let (p, d) = pt(11, 35.0);
        let first = table.budget(p, d);
        assert_eq!(table.len(), 1);
        for _ in 0..10 {
            assert_eq!(table.budget(p, d), first);
        }
        assert_eq!(table.len(), 1, "same operating point must not re-insert");
        let (p2, d2) = pt(19, 35.0);
        let other = table.budget(p2, d2);
        assert_eq!(table.len(), 2);
        assert_ne!(first.mean_rssi_dbm, other.mean_rssi_dbm);
        // Same distance ⇒ same sigma and noise terms.
        assert_eq!(first.sigma_db, other.sigma_db);
        assert_eq!(first.noise_mean_dbm, other.noise_mean_dbm);
    }

    #[test]
    fn prewarmed_clone_matches_original_without_recomputing() {
        let table = LinkBudgetTable::new(ChannelConfig::paper_hallway());
        let points: Vec<_> = [(3u8, 10.0), (11, 20.0), (31, 35.0)]
            .iter()
            .map(|&(p, d)| pt(p, d))
            .collect();
        table.prewarm(points.iter().copied());
        assert_eq!(table.len(), 3);
        let clone = table.clone_table();
        assert_eq!(clone.len(), 3, "clone starts fully populated");
        for &(p, d) in &points {
            let a = table.budget(p, d);
            let b = clone.budget(p, d);
            assert_eq!(a.mean_rssi_dbm.to_bits(), b.mean_rssi_dbm.to_bits());
            assert_eq!(a.sigma_db.to_bits(), b.sigma_db.to_bits());
            assert_eq!(a.noise_mean_dbm.to_bits(), b.noise_mean_dbm.to_bits());
        }
        // New points memoize independently in each copy.
        let (p, d) = pt(19, 10.0);
        let _ = clone.budget(p, d);
        assert_eq!(clone.len(), 4);
        assert_eq!(table.len(), 3, "original unaffected by clone lookups");
    }

    #[test]
    fn budget_matches_hand_computation() {
        let config = ChannelConfig::paper_hallway();
        let (p, d) = pt(23, 35.0);
        let b = LinkBudget::compute(&config, p, d);
        assert_eq!(
            b.mean_rssi_dbm.to_bits(),
            config.pathloss.mean_rssi_dbm(p, d).to_bits()
        );
        assert_eq!(b.sigma_db, 3.5);
        assert!((b.noise_mean_dbm - -95.0).abs() < 1e-9);
    }
}
