//! Receiver noise-floor model.
//!
//! Sec. III-A analyses ~24 million noise-floor samples and finds the noise
//! floor is **not** constant: its distribution has a dominant mode around
//! −95 dBm plus a heavier high-noise tail (bursty 2.4 GHz interference,
//! e.g. WiFi). Fig. 5 contrasts the "real SNR" distribution with the SNR
//! obtained by assuming a constant −95 dBm floor.
//!
//! We model the floor as a two-component Gaussian mixture whose mean is
//! −95 dBm, and also provide the constant-floor variant as the ablation the
//! paper plots.

use serde::{Deserialize, Serialize};

use wsn_sim_engine::rng::NormalSampler;

/// The constant noise-floor average the paper quotes, dBm.
pub const NOISE_FLOOR_MEAN_DBM: f64 = -95.0;

/// Noise-floor model: constant, or a two-component Gaussian mixture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseModel {
    /// A fixed floor (the "assuming constant noise" curve of Fig. 5).
    Constant {
        /// The fixed floor value, dBm.
        floor_dbm: f64,
    },
    /// Quiet mode + interference tail.
    Mixture {
        /// Mean of the quiet mode, dBm.
        quiet_mean_dbm: f64,
        /// Deviation of the quiet mode, dB.
        quiet_sigma_db: f64,
        /// Mean of the interference mode, dBm.
        busy_mean_dbm: f64,
        /// Deviation of the interference mode, dB.
        busy_sigma_db: f64,
        /// Probability of drawing from the interference mode.
        busy_prob: f64,
    },
}

impl NoiseModel {
    /// Constant −95 dBm floor.
    pub fn constant_default() -> Self {
        NoiseModel::Constant {
            floor_dbm: NOISE_FLOOR_MEAN_DBM,
        }
    }

    /// The hallway mixture: 90 % quiet `N(−95.5, 0.8²)`,
    /// 10 % interfered `N(−90.5, 1.5²)`; overall mean −95.0 dBm.
    pub fn paper_hallway() -> Self {
        NoiseModel::Mixture {
            quiet_mean_dbm: -95.5,
            quiet_sigma_db: 0.8,
            busy_mean_dbm: -90.5,
            busy_sigma_db: 1.5,
            busy_prob: 0.1,
        }
    }

    /// Draws one noise-floor sample, dBm.
    ///
    /// Generic over [`NormalSampler`] (the engine-mode sampling seam): the
    /// generator type selects Box–Muller (golden `StdRng`) or Ziggurat
    /// (fast [`FastRng`](wsn_sim_engine::rng::FastRng)) for the Gaussian
    /// components.
    pub fn sample_dbm<R: NormalSampler + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            NoiseModel::Constant { floor_dbm } => floor_dbm,
            NoiseModel::Mixture {
                quiet_mean_dbm,
                quiet_sigma_db,
                busy_mean_dbm,
                busy_sigma_db,
                busy_prob,
            } => {
                let (mean, sigma) = if rng.gen::<f64>() < busy_prob {
                    (busy_mean_dbm, busy_sigma_db)
                } else {
                    (quiet_mean_dbm, quiet_sigma_db)
                };
                mean + sigma * rng.sample_standard_normal()
            }
        }
    }

    /// The expected value of the floor, dBm.
    pub fn mean_dbm(&self) -> f64 {
        match *self {
            NoiseModel::Constant { floor_dbm } => floor_dbm,
            NoiseModel::Mixture {
                quiet_mean_dbm,
                busy_mean_dbm,
                busy_prob,
                ..
            } => (1.0 - busy_prob) * quiet_mean_dbm + busy_prob * busy_mean_dbm,
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::paper_hallway()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_model_is_constant() {
        let m = NoiseModel::constant_default();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..16 {
            assert_eq!(m.sample_dbm(&mut rng), -95.0);
        }
        assert_eq!(m.mean_dbm(), -95.0);
    }

    #[test]
    fn mixture_mean_is_minus_95() {
        assert!((NoiseModel::paper_hallway().mean_dbm() - -95.0).abs() < 1e-9);
    }

    #[test]
    fn mixture_sample_mean_matches_analytic_mean() {
        let m = NoiseModel::paper_hallway();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean = (0..n).map(|_| m.sample_dbm(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - m.mean_dbm()).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn mixture_has_a_high_noise_tail() {
        let m = NoiseModel::paper_hallway();
        let mut rng = StdRng::seed_from_u64(13);
        let n = 50_000;
        let above_minus_92 = (0..n)
            .map(|_| m.sample_dbm(&mut rng))
            .filter(|&x| x > -92.0)
            .count() as f64
            / n as f64;
        // ~10 % busy mode centred at −90.5 ⇒ a solid tail above −92 dBm,
        // which a constant model has none of.
        assert!(
            above_minus_92 > 0.05 && above_minus_92 < 0.2,
            "tail={above_minus_92}"
        );
    }
}
