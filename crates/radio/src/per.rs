//! Packet-error-rate backends.
//!
//! Two interchangeable models of per-transmission packet corruption:
//!
//! * [`EmpiricalPer`] — the paper's own fitted surface (Eq. 3):
//!   `PER = α · lD · exp(β · SNR)` with α = 0.0128, β = −0.15. Using the
//!   published fit as the channel ground truth makes every downstream
//!   dynamic (retransmissions, queueing, energy) reproduce the paper's
//!   measured shapes.
//! * [`DsssPer`] — a first-principles IEEE 802.15.4 O-QPSK DSSS model:
//!   the standard per-symbol union bound gives the bit error rate, and the
//!   packet error rate follows from the frame length. This backend shows
//!   the textbook "sharp cliff"; combined with per-packet shadowing it
//!   reproduces the paper's observation that the *aggregate* PER transition
//!   is smooth (Sec. III-B).

use std::cell::Cell;

use serde::{Deserialize, Serialize};

use wsn_params::frame::{FCS_BYTES, MAC_HEADER_BYTES};
use wsn_params::types::PayloadSize;

/// A model mapping `(SNR, payload)` to a per-transmission packet error rate.
///
/// Implementors must return probabilities in `[0, 1]`, non-decreasing in
/// payload size and non-increasing in SNR.
pub trait PerModel {
    /// Probability that a single transmission of a data frame with payload
    /// `payload` is lost at signal-to-noise ratio `snr_db`.
    fn per(&self, snr_db: f64, payload: PayloadSize) -> f64;

    /// Probability that an acknowledgement frame is lost at `snr_db`.
    ///
    /// The default treats the 11-byte ACK like a minimal data frame.
    fn ack_per(&self, snr_db: f64) -> f64 {
        self.per(
            snr_db,
            PayloadSize::new(2).expect("2 bytes is a valid payload"),
        )
    }
}

/// The paper's empirical PER surface (Eq. 3), clamped to `[0, 1]`.
///
/// ```
/// use wsn_params::types::PayloadSize;
/// use wsn_radio::per::{EmpiricalPer, PerModel};
///
/// let model = EmpiricalPer::paper();
/// let large = PayloadSize::new(110)?;
/// // The paper: PER for the max payload only falls to ~0.1 around 19 dB.
/// let per_19 = model.per(19.0, large);
/// assert!(per_19 > 0.05 && per_19 < 0.15);
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalPer {
    /// Payload-size coefficient α (per byte).
    pub alpha: f64,
    /// SNR decay coefficient β (per dB, negative).
    pub beta: f64,
}

impl EmpiricalPer {
    /// The constants the paper fits in Eq. 3: α = 0.0128, β = −0.15.
    pub fn paper() -> Self {
        EmpiricalPer {
            alpha: 0.0128,
            beta: -0.15,
        }
    }

    /// Creates a surface with custom constants.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or `beta` is positive (the surface
    /// would lose its monotonicities).
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha >= 0.0, "alpha must be non-negative, got {alpha}");
        assert!(beta <= 0.0, "beta must be non-positive, got {beta}");
        EmpiricalPer { alpha, beta }
    }
}

impl Default for EmpiricalPer {
    fn default() -> Self {
        EmpiricalPer::paper()
    }
}

impl PerModel for EmpiricalPer {
    fn per(&self, snr_db: f64, payload: PayloadSize) -> f64 {
        (self.alpha * payload.bytes() as f64 * (self.beta * snr_db).exp()).clamp(0.0, 1.0)
    }
}

/// First-principles IEEE 802.15.4 O-QPSK DSSS packet error model.
///
/// Bit error rate from the standard union bound over the 16-ary orthogonal
/// symbol set (IEEE 802.15.4-2006, Annex E):
///
/// ```text
/// BER = 8/15 · 1/16 · Σ_{k=2}^{16} (−1)^k · C(16,k) · exp(20·γ·(1/k − 1))
/// ```
///
/// with `γ` the linear SNR. A frame is lost if any of its MPDU bits is in
/// error: `PER = 1 − (1 − BER)^(8 · mpdu_bytes)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DsssPer;

impl DsssPer {
    /// Bit error rate at linear SNR `gamma`.
    pub fn bit_error_rate(snr_db: f64) -> f64 {
        let gamma = 10f64.powf(snr_db / 10.0);
        let mut sum = 0.0;
        let mut binom: f64 = 16.0 * 15.0 / 2.0; // C(16, 2)
        for k in 2..=16u32 {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            sum += sign * binom * (20.0 * gamma * (1.0 / k as f64 - 1.0)).exp();
            // C(16, k+1) = C(16, k) * (16-k)/(k+1)
            binom *= (16 - k) as f64 / (k + 1) as f64;
        }
        ((8.0 / 15.0) * (1.0 / 16.0) * sum).clamp(0.0, 0.5)
    }

    fn per_from_ber(ber: f64, mpdu_bytes: u32) -> f64 {
        1.0 - (1.0 - ber).powi((8 * mpdu_bytes) as i32)
    }

    fn frame_per(snr_db: f64, mpdu_bytes: u32) -> f64 {
        Self::per_from_ber(Self::bit_error_rate(snr_db), mpdu_bytes)
    }
}

impl PerModel for DsssPer {
    fn per(&self, snr_db: f64, payload: PayloadSize) -> f64 {
        let mpdu = (MAC_HEADER_BYTES + payload.bytes() + FCS_BYTES) as u32;
        Self::frame_per(snr_db, mpdu)
    }

    fn ack_per(&self, snr_db: f64) -> f64 {
        // ACK MPDU: FCF (2) + DSN (1) + FCS (2) = 5 bytes.
        Self::frame_per(snr_db, 5)
    }
}

/// Single-entry memo of a PER backend's SNR-dependent core factor.
///
/// Both backends factor as `PER(snr, frame) = f(core(snr), frame)` with the
/// core term carrying all the transcendental cost: `exp(β·snr)` for
/// [`EmpiricalPer`], the 15-term union-bound BER for [`DsssPer`]. Within one
/// transmission attempt the same SNR observation prices both the data frame
/// and its ACK, so memoizing the latest `(snr_db.to_bits(), core)` pair
/// halves the transcendental work — and because the key is the *exact* bit
/// pattern and the frame factor is recombined in the original operation
/// order, cached and uncached results are bit-for-bit identical.
///
/// Interior mutability (a `Cell`) lets the cache live behind the `&self`
/// methods of [`crate::channel::Channel`]; it is intentionally not `Sync`,
/// matching the one-channel-per-simulation ownership model.
#[derive(Debug, Clone, Default)]
pub struct PerCache {
    entry: Cell<Option<(u64, f64)>>,
}

impl PerCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PerCache::default()
    }

    /// Returns the memoized core factor for `snr_db`, computing (and
    /// remembering) it on a key mismatch.
    #[inline]
    fn core_for<F: FnOnce() -> f64>(&self, snr_db: f64, compute: F) -> f64 {
        let key = snr_db.to_bits();
        if let Some((cached_key, core)) = self.entry.get() {
            if cached_key == key {
                return core;
            }
        }
        let core = compute();
        self.entry.set(Some((key, core)));
        core
    }
}

/// Runtime-selectable PER backend (C-CUSTOM-TYPE instead of a boxed trait
/// object on the simulation hot path).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PerBackend {
    /// The paper's fitted surface.
    Empirical(EmpiricalPer),
    /// First-principles O-QPSK DSSS.
    Dsss(DsssPer),
}

impl PerBackend {
    /// The default backend: the paper's empirical surface.
    pub fn paper() -> Self {
        PerBackend::Empirical(EmpiricalPer::paper())
    }

    /// [`PerModel::per`] through `cache`: bit-identical result, with the
    /// SNR core term computed at most once per distinct SNR observation.
    #[inline]
    pub fn per_cached(&self, cache: &PerCache, snr_db: f64, payload: PayloadSize) -> f64 {
        match self {
            PerBackend::Empirical(m) => {
                let core = cache.core_for(snr_db, || (m.beta * snr_db).exp());
                (m.alpha * payload.bytes() as f64 * core).clamp(0.0, 1.0)
            }
            PerBackend::Dsss(_) => {
                let ber = cache.core_for(snr_db, || DsssPer::bit_error_rate(snr_db));
                let mpdu = (MAC_HEADER_BYTES + payload.bytes() + FCS_BYTES) as u32;
                DsssPer::per_from_ber(ber, mpdu)
            }
        }
    }

    /// [`PerModel::ack_per`] through `cache`: bit-identical result, sharing
    /// the memoized core with [`PerBackend::per_cached`].
    #[inline]
    pub fn ack_per_cached(&self, cache: &PerCache, snr_db: f64) -> f64 {
        match self {
            PerBackend::Empirical(_) => self.per_cached(
                cache,
                snr_db,
                PayloadSize::new(2).expect("2 bytes is a valid payload"),
            ),
            PerBackend::Dsss(_) => {
                let ber = cache.core_for(snr_db, || DsssPer::bit_error_rate(snr_db));
                // ACK MPDU: FCF (2) + DSN (1) + FCS (2) = 5 bytes.
                DsssPer::per_from_ber(ber, 5)
            }
        }
    }
}

impl Default for PerBackend {
    fn default() -> Self {
        PerBackend::paper()
    }
}

impl PerModel for PerBackend {
    fn per(&self, snr_db: f64, payload: PayloadSize) -> f64 {
        match self {
            PerBackend::Empirical(m) => m.per(snr_db, payload),
            PerBackend::Dsss(m) => m.per(snr_db, payload),
        }
    }

    fn ack_per(&self, snr_db: f64) -> f64 {
        match self {
            PerBackend::Empirical(m) => m.ack_per(snr_db),
            PerBackend::Dsss(m) => m.ack_per(snr_db),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(b: u16) -> PayloadSize {
        PayloadSize::new(b).unwrap()
    }

    #[test]
    fn empirical_matches_hand_computed_eq3() {
        let m = EmpiricalPer::paper();
        // PER(SNR=10, lD=50) = 0.0128 * 50 * e^{-1.5}
        let expected = 0.0128 * 50.0 * (-1.5f64).exp();
        assert!((m.per(10.0, pl(50)) - expected).abs() < 1e-12);
    }

    #[test]
    fn empirical_clamps_to_unit_interval() {
        let m = EmpiricalPer::paper();
        assert_eq!(m.per(-20.0, pl(114)), 1.0);
        assert!(m.per(60.0, pl(114)) >= 0.0);
        assert!(m.per(60.0, pl(114)) < 1e-3);
    }

    #[test]
    fn empirical_monotone_in_payload_and_snr() {
        let m = EmpiricalPer::paper();
        assert!(m.per(10.0, pl(110)) > m.per(10.0, pl(5)));
        assert!(m.per(5.0, pl(50)) > m.per(15.0, pl(50)));
    }

    #[test]
    fn paper_quote_per_falls_to_0_1_near_19db_for_max_payload() {
        let m = EmpiricalPer::paper();
        let per = m.per(19.0, PayloadSize::MAX);
        assert!(per > 0.05 && per < 0.15, "per={per}");
    }

    #[test]
    fn dsss_ber_is_tiny_at_high_snr_and_large_at_low() {
        assert!(DsssPer::bit_error_rate(10.0) < 1e-12);
        assert!(DsssPer::bit_error_rate(-5.0) > 1e-3);
        // Monotone decreasing.
        let mut prev = 1.0;
        for snr10 in -100..=150 {
            let ber = DsssPer::bit_error_rate(snr10 as f64 / 10.0);
            assert!(ber <= prev + 1e-15, "BER not monotone at {}", snr10);
            prev = ber;
        }
    }

    #[test]
    fn dsss_cliff_is_sharp() {
        let m = DsssPer;
        // The textbook model transitions from near-certain loss to
        // near-certain delivery within a few dB.
        assert!(m.per(-2.0, pl(110)) > 0.99);
        assert!(m.per(4.0, pl(110)) < 0.01);
    }

    #[test]
    fn dsss_larger_frames_lose_more() {
        let m = DsssPer;
        assert!(m.per(1.0, pl(110)) > m.per(1.0, pl(5)));
        assert!(m.ack_per(1.0) < m.per(1.0, pl(5)));
    }

    #[test]
    fn backend_dispatch_matches_inner_models() {
        let e = PerBackend::paper();
        assert_eq!(e.per(12.0, pl(65)), EmpiricalPer::paper().per(12.0, pl(65)));
        let d = PerBackend::Dsss(DsssPer);
        assert_eq!(d.per(2.0, pl(65)), DsssPer.per(2.0, pl(65)));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn negative_alpha_rejected() {
        let _ = EmpiricalPer::new(-0.1, -0.15);
    }

    #[test]
    fn ack_per_below_data_per() {
        let m = EmpiricalPer::paper();
        assert!(m.ack_per(8.0) < m.per(8.0, pl(50)));
    }

    #[test]
    fn cached_per_is_bit_identical_to_uncached() {
        for backend in [PerBackend::paper(), PerBackend::Dsss(DsssPer)] {
            let cache = PerCache::new();
            for snr10 in -60..=250 {
                let snr = snr10 as f64 / 10.0;
                for payload in [pl(2), pl(50), pl(110)] {
                    assert_eq!(
                        backend.per_cached(&cache, snr, payload).to_bits(),
                        backend.per(snr, payload).to_bits(),
                        "data PER diverged at snr={snr} payload={payload:?}"
                    );
                }
                assert_eq!(
                    backend.ack_per_cached(&cache, snr).to_bits(),
                    backend.ack_per(snr).to_bits(),
                    "ACK PER diverged at snr={snr}"
                );
            }
        }
    }

    #[test]
    fn cache_computes_core_once_per_distinct_snr() {
        let cache = PerCache::new();
        let mut computed = 0u32;
        for _ in 0..5 {
            let v = cache.core_for(7.25, || {
                computed += 1;
                42.0
            });
            assert_eq!(v, 42.0);
        }
        assert_eq!(computed, 1, "same SNR must hit the memo");
        // A new SNR evicts the single entry…
        cache.core_for(7.5, || 43.0);
        // …so returning to the old key recomputes.
        let recomputed = cache.core_for(7.25, || 44.0);
        assert_eq!(recomputed, 44.0);
    }

    #[test]
    fn cache_shares_core_across_payloads_and_ack() {
        // One attempt prices data + ACK from the same observation: the ACK
        // lookup must reuse the memoized core, not clobber correctness.
        let backend = PerBackend::paper();
        let cache = PerCache::new();
        let snr = 11.75;
        let data = backend.per_cached(&cache, snr, pl(110));
        let ack = backend.ack_per_cached(&cache, snr);
        assert_eq!(data.to_bits(), backend.per(snr, pl(110)).to_bits());
        assert_eq!(ack.to_bits(), backend.ack_per(snr).to_bits());
        assert!(ack < data);
    }
}
