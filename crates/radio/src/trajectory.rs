//! Node mobility (deprecated re-export).
//!
//! [`Trajectory`] moved to `wsn-params::motion` so topology descriptions
//! ([`wsn_params::scenario`]) can carry per-link motion without a
//! dependency cycle; this module keeps the historical `wsn-radio` path
//! compiling but is deprecated — import `wsn_params::motion::Trajectory`
//! (or use the facade/radio preludes, which already re-export the new
//! path). See CHANGELOG.md for the migration note.

pub use wsn_params::motion::Trajectory;
