//! Node mobility (re-export).
//!
//! [`Trajectory`] moved to `wsn-params::motion` so topology descriptions
//! ([`wsn_params::scenario`]) can carry per-link motion without a
//! dependency cycle; this module keeps the historical `wsn-radio` path
//! working.

pub use wsn_params::motion::Trajectory;
