//! # wsn-radio
//!
//! The PHY-layer substrate of the reproduction: a TI CC2420 radio model and
//! the synthetic hallway channel reconstructed from the paper's Sec. III
//! measurements.
//!
//! * [`cc2420`] — datasheet tables: PA level → output dBm / TX current,
//!   RX & idle drains, receiver sensitivity, energy per bit (`Etx` of Eq. 2),
//! * [`pathloss`] — log-distance path loss with the paper's Fig. 3 fit
//!   (n = 2.19, σ = 3.2 dB),
//! * [`shadowing`] — AR(1) correlated slow fading with the Fig. 4 deviation
//!   profile (elevated at 35 m),
//! * [`noise`] — noise-floor distribution around −95 dBm (Fig. 5),
//! * [`per`] — packet-error backends: the paper's empirical Eq. 3 surface
//!   and a first-principles O-QPSK DSSS model,
//! * [`channel`] — the composed per-attempt channel,
//! * [`budget`] — campaign-shared memoization of the deterministic
//!   per-`(power, distance)` link-budget terms,
//! * [`energy`] — radio-state energy metering.
//!
//! ```
//! use wsn_radio::prelude::*;
//! use wsn_params::prelude::*;
//!
//! let ch = Channel::new(
//!     ChannelConfig::paper_hallway(),
//!     PowerLevel::new(11)?,
//!     Distance::from_meters(35.0)?,
//! );
//! // The paper's headline operating point: Ptx=11 at 35 m ≈ 19 dB mean SNR.
//! assert!((ch.mean_snr_db() - 19.0).abs() < 0.5);
//! # Ok::<(), wsn_params::error::InvalidParam>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod cc2420;
pub mod channel;
pub mod energy;
pub mod interference;
pub mod noise;
pub mod pathloss;
pub mod per;
pub mod shadowing;

/// Convenient glob-import of the radio substrate.
pub mod prelude {
    // `budget::LinkBudget` (the memo entry) is deliberately not glob-exported:
    // it would collide with the analytical `wsn_models::predict::LinkBudget`
    // in the umbrella prelude. Reach it via `wsn_radio::budget::LinkBudget`.
    pub use crate::budget::LinkBudgetTable;
    pub use crate::channel::{Channel, ChannelConfig, Observation};
    pub use crate::energy::{EnergyBreakdown, EnergyMeter};
    pub use crate::interference::InterferenceModel;
    pub use crate::noise::NoiseModel;
    pub use crate::pathloss::PathLoss;
    pub use crate::per::{DsssPer, EmpiricalPer, PerBackend, PerModel};
    pub use crate::shadowing::{Shadowing, SigmaProfile};
    pub use wsn_params::motion::Trajectory;
}
