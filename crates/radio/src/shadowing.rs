//! Temporally-correlated shadowing (slow fading).
//!
//! Sec. III-A of the paper observes that indoor RSSI is unstable, that the
//! deviation shows **no consistent correlation with output power**, and that
//! the 35 m position suffers extra human-shadowing (a kitchen and a meeting
//! room nearby), *except* at PA level 3 where the signal sits at the
//! receiver sensitivity and the reported deviation collapses.
//!
//! We reproduce those statistics with a first-order autoregressive (AR(1))
//! Gauss–Markov process — the standard discrete-time model for shadowing
//! with exponential autocorrelation (Gudmundson's model):
//!
//! ```text
//! X_k = ρ · X_{k-1} + sqrt(1 − ρ²) · σ(d) · ε_k ,   ε_k ~ N(0, 1)
//! ```
//!
//! whose stationary distribution is `N(0, σ(d)²)` independent of `ρ`.

use serde::{Deserialize, Serialize};

use wsn_params::types::Distance;
use wsn_sim_engine::rng::NormalSampler;

/// Distance-dependent shadowing deviation profile, dB.
///
/// Matches Fig. 4: a baseline deviation everywhere, with an elevated value
/// at the 35 m position (human shadowing near the kitchen / meeting room).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SigmaProfile {
    /// Deviation at all "quiet" positions, dB.
    pub base_db: f64,
    /// Deviation at positions with heavy human shadowing, dB.
    pub shadowed_db: f64,
    /// Distance (meters) at and beyond which the shadowed deviation applies.
    pub shadowed_from_m: f64,
}

impl SigmaProfile {
    /// The hallway profile used throughout the reproduction:
    /// σ = 1.8 dB below 35 m, σ = 3.5 dB at 35 m.
    pub fn paper_hallway() -> Self {
        SigmaProfile {
            base_db: 1.8,
            shadowed_db: 3.5,
            shadowed_from_m: 35.0,
        }
    }

    /// No fading at all (ablation baseline).
    pub fn none() -> Self {
        SigmaProfile {
            base_db: 0.0,
            shadowed_db: 0.0,
            shadowed_from_m: f64::INFINITY,
        }
    }

    /// The deviation applicable at `distance`, dB.
    pub fn sigma_db(&self, distance: Distance) -> f64 {
        if distance.meters() >= self.shadowed_from_m {
            self.shadowed_db
        } else {
            self.base_db
        }
    }
}

impl Default for SigmaProfile {
    fn default() -> Self {
        SigmaProfile::paper_hallway()
    }
}

/// AR(1) shadowing process producing one correlated RSSI deviation per
/// channel observation.
///
/// ```
/// use rand::SeedableRng;
/// use wsn_params::types::Distance;
/// use wsn_radio::shadowing::{Shadowing, SigmaProfile};
///
/// let mut fading = Shadowing::new(
///     SigmaProfile::paper_hallway(),
///     0.9,
///     Distance::from_meters(20.0)?,
/// );
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let dev = fading.next_deviation_db(&mut rng);
/// assert!(dev.abs() < 20.0); // a few dB, not tens
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Shadowing {
    sigma_db: f64,
    correlation: f64,
    /// `sqrt(1 − ρ²) · σ`, hoisted out of the per-attempt draw. The
    /// product keeps the draw's original association, so cached and
    /// recomputed deviations are bit-identical.
    innovation_scale: f64,
    state_db: f64,
    initialised: bool,
}

impl Shadowing {
    /// Creates the process for one link.
    ///
    /// # Panics
    ///
    /// Panics if `correlation` is outside `[0, 1)`.
    pub fn new(profile: SigmaProfile, correlation: f64, distance: Distance) -> Self {
        assert!(
            (0.0..1.0).contains(&correlation),
            "AR(1) correlation must be in [0, 1), got {correlation}"
        );
        Shadowing::with_sigma_db(profile.sigma_db(distance), correlation)
    }

    /// Creates the process from an already-computed deviation (the
    /// memoized-budget path). Equivalent to [`Shadowing::new`] when
    /// `sigma_db == profile.sigma_db(distance)`.
    ///
    /// # Panics
    ///
    /// Panics if `correlation` is outside `[0, 1)`.
    pub fn with_sigma_db(sigma_db: f64, correlation: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&correlation),
            "AR(1) correlation must be in [0, 1), got {correlation}"
        );
        Shadowing {
            sigma_db,
            correlation,
            innovation_scale: (1.0 - correlation * correlation).sqrt() * sigma_db,
            state_db: 0.0,
            initialised: false,
        }
    }

    /// The stationary deviation of the process, dB.
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// Draws the next correlated deviation, dB.
    ///
    /// Generic over [`NormalSampler`], the engine-mode sampling seam: the
    /// golden engine's `StdRng` keeps the polar Box–Muller transform
    /// bit-for-bit, the fast engine's
    /// [`FastRng`](wsn_sim_engine::rng::FastRng) substitutes the Ziggurat
    /// sampler of the same `N(0, 1)` distribution.
    pub fn next_deviation_db<R: NormalSampler + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if self.sigma_db == 0.0 {
            return 0.0;
        }
        if !self.initialised {
            // Start in the stationary distribution.
            self.state_db = self.sigma_db * rng.sample_standard_normal();
            self.initialised = true;
        } else {
            let innovation = self.innovation_scale * rng.sample_standard_normal();
            self.state_db = self.correlation * self.state_db + innovation;
        }
        self.state_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn d(m: f64) -> Distance {
        Distance::from_meters(m).unwrap()
    }

    #[test]
    fn profile_is_elevated_at_35m() {
        let p = SigmaProfile::paper_hallway();
        assert_eq!(p.sigma_db(d(10.0)), 1.8);
        assert_eq!(p.sigma_db(d(34.9)), 1.8);
        assert_eq!(p.sigma_db(d(35.0)), 3.5);
    }

    #[test]
    fn stationary_variance_matches_sigma() {
        let mut fading = Shadowing::new(SigmaProfile::paper_hallway(), 0.9, d(35.0));
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| fading.next_deviation_db(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.15, "mean={mean}");
        assert!((var.sqrt() - 3.5).abs() < 0.2, "std={}", var.sqrt());
    }

    #[test]
    fn consecutive_samples_are_positively_correlated() {
        let mut fading = Shadowing::new(SigmaProfile::paper_hallway(), 0.9, d(20.0));
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..100_000)
            .map(|_| fading.next_deviation_db(&mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        let cov = samples
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (samples.len() - 1) as f64;
        let rho = cov / var;
        assert!((rho - 0.9).abs() < 0.02, "rho={rho}");
    }

    #[test]
    fn zero_sigma_yields_zero_deviation() {
        let mut fading = Shadowing::new(SigmaProfile::none(), 0.9, d(35.0));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(fading.next_deviation_db(&mut rng), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn correlation_of_one_is_rejected() {
        let _ = Shadowing::new(SigmaProfile::paper_hallway(), 1.0, d(10.0));
    }

    #[test]
    fn with_sigma_db_matches_profile_construction() {
        let profile = SigmaProfile::paper_hallway();
        let mut a = Shadowing::new(profile, 0.9, d(35.0));
        let mut b = Shadowing::with_sigma_db(profile.sigma_db(d(35.0)), 0.9);
        assert_eq!(a, b);
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        for _ in 0..128 {
            assert_eq!(
                a.next_deviation_db(&mut r1).to_bits(),
                b.next_deviation_db(&mut r2).to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn with_sigma_db_rejects_bad_correlation() {
        let _ = Shadowing::with_sigma_db(1.8, -0.1);
    }
}
