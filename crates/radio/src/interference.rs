//! Concurrent-transmission interference.
//!
//! The paper's discussion (Sec. VIII-D) names concurrent transmission —
//! "which can cause extra packet loss due to packet collisions" — as the
//! first factor its single-link study excludes. This module models a
//! bursty external interferer (another 802.15.4 link, or WiFi activity in
//! the same 2.4 GHz band):
//!
//! * with probability `duty_cycle` the interferer is active during a
//!   transmission attempt, raising the effective noise floor by its
//!   received power (energy-sum in linear space → SINR instead of SNR);
//! * if the interferer is CCA-detectable, the sender's clear-channel
//!   assessment reports *busy* while it is active, triggering congestion
//!   backoff instead of a collision.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An on/off external interferer at the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    /// Fraction of time the interferer is active, `0.0..=1.0`.
    pub duty_cycle: f64,
    /// Interference power received at the victim receiver, dBm.
    pub power_dbm: f64,
    /// Whether the victim *sender* can hear the interferer on CCA.
    /// Hidden-terminal interferers (`false`) collide instead of deferring.
    pub cca_detectable: bool,
    /// Mean length of one interferer burst, milliseconds (renewal model).
    pub mean_busy_ms: f64,
}

/// Worst-case victim frame time used by the post-CCA overlap
/// approximation: a maximum-length 802.15.4 frame (133 B at 250 kb/s).
const MAX_FRAME_S: f64 = 4.256e-3;

impl InterferenceModel {
    /// No interference — the paper's measured deployment.
    pub fn none() -> Self {
        InterferenceModel {
            duty_cycle: 0.0,
            power_dbm: -120.0,
            cca_detectable: false,
            mean_busy_ms: 10.0,
        }
    }

    /// Moderate co-channel WiFi: ~10 % airtime at −85 dBm, not visible to
    /// the 802.15.4 CCA (WiFi slots are shorter than the CCA window).
    pub fn wifi_moderate() -> Self {
        InterferenceModel {
            duty_cycle: 0.10,
            power_dbm: -85.0,
            cca_detectable: false,
            mean_busy_ms: 2.0,
        }
    }

    /// A co-located 802.15.4 link with the given airtime: CCA-detectable,
    /// received at −70 dBm (a neighbour a few meters away).
    ///
    /// # Panics
    ///
    /// Panics if `airtime` is outside `[0, 1]`.
    pub fn zigbee_neighbor(airtime: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&airtime),
            "airtime must be in [0, 1], got {airtime}"
        );
        InterferenceModel {
            duty_cycle: airtime,
            power_dbm: -70.0,
            cca_detectable: true,
            mean_busy_ms: 10.0,
        }
    }

    /// Probability that an attempt overlaps the interferer.
    ///
    /// For a hidden interferer this is simply the duty cycle. For a
    /// CCA-detectable one, the victim only transmits after a *clear* CCA,
    /// so a collision requires the interferer to **turn on during the
    /// frame**: under a renewal on/off model with mean busy period
    /// `mean_busy_ms`, the mean idle period is `busy·(1−d)/d` and the
    /// turn-on probability over a max-length frame is
    /// `1 − exp(−T_frame / mean_idle)`.
    pub fn collision_probability(&self) -> f64 {
        if self.duty_cycle <= 0.0 {
            return 0.0;
        }
        if !self.cca_detectable {
            return self.duty_cycle.clamp(0.0, 1.0);
        }
        let d = self.duty_cycle.clamp(0.0, 1.0);
        if d >= 1.0 {
            // Always-on detectable interferer: CCA never clears; the MAC
            // transmits after its retry budget straight into the jammer.
            return 1.0;
        }
        let mean_idle_s = self.mean_busy_ms * 1e-3 * (1.0 - d) / d;
        1.0 - (-MAX_FRAME_S / mean_idle_s).exp()
    }

    /// True if this model can never affect the link.
    pub fn is_none(&self) -> bool {
        self.duty_cycle <= 0.0
    }

    /// Draws whether the interferer corrupts one attempt (accounting for
    /// CCA deferral via [`collision_probability`]).
    ///
    /// [`collision_probability`]: Self::collision_probability
    pub fn sample_active<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        let p = self.collision_probability();
        p > 0.0 && rng.gen::<f64>() < p
    }

    /// The probability that the sender's CCA reports busy.
    pub fn cca_busy_probability(&self) -> f64 {
        if self.cca_detectable {
            self.duty_cycle.clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Combines the thermal noise floor with the interference power
    /// (linear energy sum), dBm.
    pub fn effective_noise_dbm(&self, noise_dbm: f64) -> f64 {
        combine_dbm(noise_dbm, self.power_dbm)
    }
}

impl Default for InterferenceModel {
    fn default() -> Self {
        InterferenceModel::none()
    }
}

/// Energy-sum of two powers given in dBm.
pub fn combine_dbm(a_dbm: f64, b_dbm: f64) -> f64 {
    let lin = 10f64.powf(a_dbm / 10.0) + 10f64.powf(b_dbm / 10.0);
    10.0 * lin.log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn combine_dbm_basics() {
        // Equal powers add 3 dB.
        assert!((combine_dbm(-90.0, -90.0) - -86.99).abs() < 0.02);
        // A negligible term changes nothing.
        assert!((combine_dbm(-90.0, -150.0) - -90.0).abs() < 1e-3);
        // Commutative.
        assert_eq!(combine_dbm(-85.0, -95.0), combine_dbm(-95.0, -85.0));
    }

    #[test]
    fn none_is_inert() {
        let m = InterferenceModel::none();
        assert!(m.is_none());
        assert_eq!(m.cca_busy_probability(), 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..64).any(|_| m.sample_active(&mut rng)));
        // −120 dBm on top of −95 dBm is invisible (< 0.02 dB shift).
        assert!((m.effective_noise_dbm(-95.0) - -95.0).abs() < 0.02);
    }

    #[test]
    fn hidden_interferer_collides_at_duty_cycle_rate() {
        let mut m = InterferenceModel::zigbee_neighbor(0.3);
        m.cca_detectable = false;
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let active = (0..n).filter(|_| m.sample_active(&mut rng)).count() as f64 / n as f64;
        assert!((active - 0.3).abs() < 0.01, "active={active}");
        assert_eq!(m.collision_probability(), 0.3);
    }

    #[test]
    fn cca_deferral_reduces_collision_probability() {
        let polite = InterferenceModel::zigbee_neighbor(0.5);
        let mut hidden = polite;
        hidden.cca_detectable = false;
        // Post-CCA turn-on probability over one frame is well below the
        // raw 50 % airtime: 1 − exp(−4.256/10) ≈ 0.347.
        assert!(polite.collision_probability() < hidden.collision_probability());
        assert!((polite.collision_probability() - 0.347).abs() < 0.01);
    }

    #[test]
    fn always_on_detectable_interferer_jams() {
        let mut m = InterferenceModel::zigbee_neighbor(1.0);
        assert_eq!(m.collision_probability(), 1.0);
        m.cca_detectable = false;
        assert_eq!(m.collision_probability(), 1.0);
    }

    #[test]
    fn strong_interferer_dominates_the_floor() {
        let m = InterferenceModel::zigbee_neighbor(0.5);
        // −70 dBm interference over −95 dBm noise: effective ≈ −70 dBm,
        // a 25 dB SINR penalty.
        let eff = m.effective_noise_dbm(-95.0);
        assert!((eff - -69.99).abs() < 0.1, "eff={eff}");
    }

    #[test]
    fn cca_detectability() {
        assert_eq!(
            InterferenceModel::zigbee_neighbor(0.25).cca_busy_probability(),
            0.25
        );
        assert_eq!(
            InterferenceModel::wifi_moderate().cca_busy_probability(),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "airtime")]
    fn invalid_airtime_rejected() {
        let _ = InterferenceModel::zigbee_neighbor(1.5);
    }
}
