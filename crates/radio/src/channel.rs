//! The composed link channel: path loss + correlated shadowing + sampled
//! noise floor + a PER backend, observed one transmission attempt at a time.

use rand::Rng;
use serde::{Deserialize, Serialize};

use wsn_params::types::{Distance, PayloadSize, PowerLevel};
use wsn_sim_engine::rng::NormalSampler;

use crate::budget::LinkBudget;
use crate::interference::InterferenceModel;
use crate::noise::NoiseModel;
use crate::pathloss::PathLoss;
use crate::per::{PerBackend, PerCache, PerModel};
use crate::shadowing::{Shadowing, SigmaProfile};

/// Static description of the propagation environment (shared across all
/// configurations of one experiment campaign).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Large-scale path loss model.
    pub pathloss: PathLoss,
    /// Distance-dependent shadowing deviations.
    pub sigma_profile: SigmaProfile,
    /// AR(1) correlation between consecutive shadowing samples.
    pub fading_correlation: f64,
    /// Noise-floor model.
    pub noise: NoiseModel,
    /// Packet-corruption backend.
    pub per_backend: PerBackend,
    /// Whether acknowledgement frames can also be lost.
    pub ack_loss: bool,
    /// External concurrent-transmission interference (Sec. VIII-D
    /// extension; [`InterferenceModel::none`] matches the paper's
    /// interference-free deployment).
    pub interference: InterferenceModel,
}

impl ChannelConfig {
    /// The hallway environment reconstructed from the paper's Sec. III
    /// measurements; the default for all experiments.
    pub fn paper_hallway() -> Self {
        ChannelConfig {
            pathloss: PathLoss::paper_hallway(),
            sigma_profile: SigmaProfile::paper_hallway(),
            fading_correlation: 0.9,
            noise: NoiseModel::paper_hallway(),
            per_backend: PerBackend::paper(),
            ack_loss: true,
            interference: InterferenceModel::none(),
        }
    }

    /// The channel of the paper's Sec. VIII case study: the hallway with
    /// ~23 dB of extra shadowing so that the 35 m link reaches only 6 dB
    /// SNR at maximum power (matching `LinkBudget::case_study`).
    pub fn case_study() -> Self {
        let mut channel = Self::paper_hallway();
        channel.pathloss.reference_loss_db = 55.2;
        channel
    }

    /// An idealised environment without fading or noise variation, with a
    /// constant −95 dBm floor. Used by ablations and calibration tests that
    /// need the mean SNR to be exact.
    pub fn ideal() -> Self {
        ChannelConfig {
            pathloss: PathLoss::paper_hallway(),
            sigma_profile: SigmaProfile::none(),
            fading_correlation: 0.9,
            noise: NoiseModel::constant_default(),
            per_backend: PerBackend::paper(),
            ack_loss: false,
            interference: InterferenceModel::none(),
        }
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig::paper_hallway()
    }
}

/// One per-attempt channel observation, mirroring the metadata columns of
/// the paper's public dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Received signal strength, dBm (CC2420 reports integers; we keep the
    /// unquantized value and expose quantization separately).
    pub rssi_dbm: f64,
    /// Noise floor at the receiver, dBm.
    pub noise_dbm: f64,
    /// Signal-to-noise(-plus-interference) ratio, dB.
    pub snr_db: f64,
    /// Synthesised CC2420 link-quality indicator (≈ 50…110).
    pub lqi: u8,
    /// Whether an external interferer was active during this attempt.
    pub interfered: bool,
}

impl Observation {
    /// The RSSI as the CC2420 would report it (integer dBm).
    pub fn rssi_reported(&self) -> i8 {
        self.rssi_dbm.round().clamp(-128.0, 127.0) as i8
    }
}

/// Synthesises a CC2420-style LQI value from SNR.
///
/// The CC2420 LQI correlates with chip correlation quality; empirically it
/// saturates near 110 on good links and falls towards ~50 at the
/// sensitivity threshold. A linear map of SNR onto that range reproduces
/// the qualitative behaviour.
pub fn lqi_from_snr(snr_db: f64) -> u8 {
    (50.0 + 3.0 * snr_db).clamp(40.0, 110.0).round() as u8
}

/// A live channel between one sender–receiver pair at a fixed distance and
/// power level.
///
/// The channel is observed once per *transmission attempt*; consecutive
/// observations are correlated through the AR(1) shadowing process.
///
/// ```
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
/// use wsn_params::types::{Distance, PayloadSize, PowerLevel};
/// use wsn_radio::channel::{Channel, ChannelConfig};
///
/// let mut ch = Channel::new(
///     ChannelConfig::paper_hallway(),
///     PowerLevel::new(23)?,
///     Distance::from_meters(20.0)?,
/// );
/// let mut fading = StdRng::seed_from_u64(1);
/// let mut noise = StdRng::seed_from_u64(2);
/// let mut delivery = StdRng::seed_from_u64(3);
///
/// let obs = ch.observe(&mut fading, &mut noise);
/// let ok = ch.data_success(&obs, PayloadSize::new(110)?, &mut delivery);
/// assert!(obs.snr_db > 0.0 || !ok); // no delivery guarantee below the floor
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    config: ChannelConfig,
    mean_rssi_dbm: f64,
    shadowing: Shadowing,
    per_cache: PerCache,
}

impl Channel {
    /// Creates the channel for one `(power, distance)` operating point.
    pub fn new(config: ChannelConfig, power: PowerLevel, distance: Distance) -> Self {
        let mean_rssi_dbm = config.pathloss.mean_rssi_dbm(power, distance);
        let shadowing = Shadowing::new(config.sigma_profile, config.fading_correlation, distance);
        Channel {
            config,
            mean_rssi_dbm,
            shadowing,
            per_cache: PerCache::new(),
        }
    }

    /// Creates the channel from a memoized [`LinkBudget`] (see
    /// [`crate::budget::LinkBudgetTable`]). Produces a channel bit-identical
    /// to [`Channel::new`] when the budget was computed for the same
    /// operating point under the same `config`.
    pub fn from_budget(config: ChannelConfig, budget: LinkBudget) -> Self {
        Channel {
            config,
            mean_rssi_dbm: budget.mean_rssi_dbm,
            shadowing: Shadowing::with_sigma_db(budget.sigma_db, config.fading_correlation),
            per_cache: PerCache::new(),
        }
    }

    /// The configured environment.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// Mean (un-faded) RSSI of this operating point, dBm.
    pub fn mean_rssi_dbm(&self) -> f64 {
        self.mean_rssi_dbm
    }

    /// Mean SNR against the average noise floor, dB.
    pub fn mean_snr_db(&self) -> f64 {
        self.mean_rssi_dbm - self.config.noise.mean_dbm()
    }

    /// Draws the channel state for the next transmission attempt.
    ///
    /// Generic over [`NormalSampler`] — the engine-mode sampling seam: the
    /// golden engine passes `StdRng` streams (polar Box–Muller, pinned by
    /// the golden fixtures), the fast engine passes
    /// [`FastRng`](wsn_sim_engine::rng::FastRng) streams (Ziggurat), and
    /// both sample exactly the same shadowing/noise process.
    pub fn observe<RF, RN>(&mut self, fading_rng: &mut RF, noise_rng: &mut RN) -> Observation
    where
        RF: NormalSampler + ?Sized,
        RN: NormalSampler + ?Sized,
    {
        let deviation = self.shadowing.next_deviation_db(fading_rng);
        let rssi_dbm = self.mean_rssi_dbm + deviation;
        let mut noise_dbm = self.config.noise.sample_dbm(noise_rng);
        let interfered = self.config.interference.sample_active(noise_rng);
        if interfered {
            noise_dbm = self.config.interference.effective_noise_dbm(noise_dbm);
        }
        let snr_db = rssi_dbm - noise_dbm;
        Observation {
            rssi_dbm,
            noise_dbm,
            snr_db,
            lqi: lqi_from_snr(snr_db),
            interfered,
        }
    }

    /// Probability that the sender's CCA reports a busy channel.
    pub fn cca_busy_probability(&self) -> f64 {
        self.config.interference.cca_busy_probability()
    }

    /// Retargets the channel to a new geometry (mobility support): the
    /// mean RSSI follows the new distance while the shadowing process
    /// keeps its state, so motion and fading compose naturally.
    pub fn retarget(&mut self, power: PowerLevel, distance: Distance) {
        self.mean_rssi_dbm = self.config.pathloss.mean_rssi_dbm(power, distance);
    }

    /// Whether a data frame with `payload` survives the attempt described
    /// by `obs`.
    pub fn data_success<R: Rng + ?Sized>(
        &self,
        obs: &Observation,
        payload: PayloadSize,
        delivery_rng: &mut R,
    ) -> bool {
        let per = self
            .config
            .per_backend
            .per_cached(&self.per_cache, obs.snr_db, payload);
        delivery_rng.gen::<f64>() >= per
    }

    /// Whether the acknowledgement for a delivered frame survives the
    /// reverse path.
    pub fn ack_success<R: Rng + ?Sized>(&self, obs: &Observation, delivery_rng: &mut R) -> bool {
        if !self.config.ack_loss {
            return true;
        }
        let per = self
            .config
            .per_backend
            .ack_per_cached(&self.per_cache, obs.snr_db);
        delivery_rng.gen::<f64>() >= per
    }

    /// Per-transmission data-frame error probability at `snr_db` under this
    /// channel's backend (exposed for model validation).
    pub fn per_at(&self, snr_db: f64, payload: PayloadSize) -> f64 {
        self.config.per_backend.per(snr_db, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mk(power: u8, dist: f64, cfg: ChannelConfig) -> Channel {
        Channel::new(
            cfg,
            PowerLevel::new(power).unwrap(),
            Distance::from_meters(dist).unwrap(),
        )
    }

    #[test]
    fn ideal_channel_observation_is_deterministic_mean() {
        let mut ch = mk(23, 20.0, ChannelConfig::ideal());
        let mut f = StdRng::seed_from_u64(1);
        let mut n = StdRng::seed_from_u64(2);
        let obs = ch.observe(&mut f, &mut n);
        assert!((obs.rssi_dbm - ch.mean_rssi_dbm()).abs() < 1e-12);
        assert_eq!(obs.noise_dbm, -95.0);
        assert!((obs.snr_db - ch.mean_snr_db()).abs() < 1e-12);
    }

    #[test]
    fn hallway_observations_fluctuate_around_mean() {
        let mut ch = mk(23, 20.0, ChannelConfig::paper_hallway());
        let mut f = StdRng::seed_from_u64(1);
        let mut n = StdRng::seed_from_u64(2);
        let n_samples = 50_000;
        let mean_snr: f64 = (0..n_samples)
            .map(|_| ch.observe(&mut f, &mut n).snr_db)
            .sum::<f64>()
            / n_samples as f64;
        assert!((mean_snr - ch.mean_snr_db()).abs() < 0.2, "mean={mean_snr}");
    }

    #[test]
    fn delivery_rate_tracks_per_backend() {
        let mut ch = mk(31, 35.0, ChannelConfig::ideal());
        let payload = PayloadSize::new(110).unwrap();
        let mut f = StdRng::seed_from_u64(1);
        let mut n = StdRng::seed_from_u64(2);
        let mut d = StdRng::seed_from_u64(3);
        let trials = 40_000;
        let mut ok = 0;
        let mut expected = 0.0;
        for _ in 0..trials {
            let obs = ch.observe(&mut f, &mut n);
            expected += 1.0 - ch.per_at(obs.snr_db, payload);
            if ch.data_success(&obs, payload, &mut d) {
                ok += 1;
            }
        }
        let measured = ok as f64 / trials as f64;
        let expected = expected / trials as f64;
        assert!(
            (measured - expected).abs() < 0.01,
            "{measured} vs {expected}"
        );
    }

    #[test]
    fn ack_never_lost_when_ack_loss_disabled() {
        let mut cfg = ChannelConfig::paper_hallway();
        cfg.ack_loss = false;
        let mut ch = mk(3, 35.0, cfg);
        let mut f = StdRng::seed_from_u64(1);
        let mut n = StdRng::seed_from_u64(2);
        let mut d = StdRng::seed_from_u64(3);
        for _ in 0..64 {
            let obs = ch.observe(&mut f, &mut n);
            assert!(ch.ack_success(&obs, &mut d));
        }
    }

    #[test]
    fn lqi_saturates_at_both_ends() {
        assert_eq!(lqi_from_snr(40.0), 110);
        assert_eq!(lqi_from_snr(-10.0), 40);
        assert_eq!(lqi_from_snr(10.0), 80);
    }

    #[test]
    fn reported_rssi_is_integer_dbm() {
        let obs = Observation {
            rssi_dbm: -76.4,
            noise_dbm: -95.0,
            snr_db: 18.6,
            lqi: 100,
            interfered: false,
        };
        assert_eq!(obs.rssi_reported(), -76);
    }

    #[test]
    fn interference_degrades_snr_when_active() {
        use crate::interference::InterferenceModel;
        let mut cfg = ChannelConfig::ideal();
        cfg.interference = InterferenceModel::zigbee_neighbor(0.5);
        let mut ch = mk(31, 10.0, cfg);
        let mut f = StdRng::seed_from_u64(1);
        let mut n = StdRng::seed_from_u64(2);
        let mut clean = Vec::new();
        let mut hit = Vec::new();
        for _ in 0..2000 {
            let obs = ch.observe(&mut f, &mut n);
            if obs.interfered {
                hit.push(obs.snr_db);
            } else {
                clean.push(obs.snr_db);
            }
        }
        assert!(!hit.is_empty() && !clean.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // −70 dBm interference over the −95 dBm floor costs ~25 dB of SINR.
        assert!(mean(&clean) - mean(&hit) > 15.0);
        assert!((ch.cca_busy_probability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn higher_power_gives_higher_mean_snr() {
        let lo = mk(3, 35.0, ChannelConfig::paper_hallway());
        let hi = mk(31, 35.0, ChannelConfig::paper_hallway());
        assert!(hi.mean_snr_db() > lo.mean_snr_db());
    }
}
