//! Large-scale path loss: the log-distance model with log-normal shadowing.
//!
//! The paper (Fig. 3) fits its hallway measurements with a log-normal
//! shadowing model with path-loss exponent `n = 2.19` and shadowing
//! deviation `σ = 3.2 dB`. We reuse those fitted constants. The reference
//! loss `PL(d0)` is not reported; we calibrate it to **32.2 dB at 1 m** so
//! that the paper's headline operating points are reproduced:
//!
//! * at 35 m, PA level 11 (−10 dBm) yields a mean SNR ≈ 19 dB — the level
//!   the paper finds optimal for 110-byte payloads (Fig. 7),
//! * at 35 m, PA level 3 (−25 dBm) sits at RSSI ≈ −91 dBm, "approaching the
//!   sensitivity of CC2420" (−95 dBm) exactly as Sec. III-A describes.
//!
//! A reference loss below the 40.2 dB free-space value is physically
//! plausible for a long corridor, which acts as a partial waveguide.

use serde::{Deserialize, Serialize};

use wsn_params::types::{Distance, PowerLevel};

use crate::cc2420;

/// Log-distance path-loss model `PL(d) = PL(d0) + 10·n·log10(d/d0)`.
///
/// ```
/// use wsn_params::types::{Distance, PowerLevel};
/// use wsn_radio::pathloss::PathLoss;
///
/// let pl = PathLoss::paper_hallway();
/// let d = Distance::from_meters(35.0)?;
/// let rssi = pl.mean_rssi_dbm(PowerLevel::new(11)?, d);
/// assert!((rssi - -76.0).abs() < 0.2); // ≈ 19 dB above the −95 dBm noise floor
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLoss {
    /// Reference loss at `d0 = 1 m`, dB.
    pub reference_loss_db: f64,
    /// Path-loss exponent `n`.
    pub exponent: f64,
    /// Shadowing standard deviation `σ`, dB (exposed for the fading model).
    pub shadowing_sigma_db: f64,
}

impl PathLoss {
    /// The paper's hallway fit: `n = 2.19`, `σ = 3.2 dB`, calibrated
    /// reference loss 32.2 dB @ 1 m.
    pub fn paper_hallway() -> Self {
        PathLoss {
            reference_loss_db: 32.2,
            exponent: 2.19,
            shadowing_sigma_db: 3.2,
        }
    }

    /// Free-space reference at 2.4 GHz (`PL(1 m) = 40.2 dB`, `n = 2.0`),
    /// useful as an ablation baseline.
    pub fn free_space_2_4ghz() -> Self {
        PathLoss {
            reference_loss_db: 40.2,
            exponent: 2.0,
            shadowing_sigma_db: 0.0,
        }
    }

    /// Mean path loss at distance `d`, dB.
    pub fn loss_db(&self, distance: Distance) -> f64 {
        self.reference_loss_db + 10.0 * self.exponent * distance.meters().log10()
    }

    /// Mean received signal strength for a transmit power level at `d`, dBm
    /// (before shadowing).
    pub fn mean_rssi_dbm(&self, power: PowerLevel, distance: Distance) -> f64 {
        cc2420::output_power_dbm(power) - self.loss_db(distance)
    }

    /// Mean SNR against a flat noise floor, dB.
    pub fn mean_snr_db(&self, power: PowerLevel, distance: Distance, noise_dbm: f64) -> f64 {
        self.mean_rssi_dbm(power, distance) - noise_dbm
    }

    /// The distance at which the mean RSSI for `power` drops to
    /// `target_rssi_dbm`, meters. Inverse of [`mean_rssi_dbm`]
    /// (C-INTERMEDIATE: exposed for range-planning in the examples).
    ///
    /// [`mean_rssi_dbm`]: Self::mean_rssi_dbm
    pub fn range_for_rssi_m(&self, power: PowerLevel, target_rssi_dbm: f64) -> f64 {
        let budget_db = cc2420::output_power_dbm(power) - target_rssi_dbm - self.reference_loss_db;
        10f64.powf(budget_db / (10.0 * self.exponent))
    }
}

impl Default for PathLoss {
    fn default() -> Self {
        PathLoss::paper_hallway()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(m: f64) -> Distance {
        Distance::from_meters(m).unwrap()
    }
    fn p(l: u8) -> PowerLevel {
        PowerLevel::new(l).unwrap()
    }

    #[test]
    fn loss_grows_with_distance() {
        let pl = PathLoss::paper_hallway();
        let mut prev = 0.0;
        for meters in [1.0, 5.0, 10.0, 20.0, 35.0] {
            let loss = pl.loss_db(d(meters));
            assert!(loss > prev);
            prev = loss;
        }
    }

    #[test]
    fn reference_distance_loss() {
        let pl = PathLoss::paper_hallway();
        assert!((pl.loss_db(d(1.0)) - 32.2).abs() < 1e-12);
    }

    #[test]
    fn paper_fit_slope_is_21_9_db_per_decade() {
        let pl = PathLoss::paper_hallway();
        let per_decade = pl.loss_db(d(10.0)) - pl.loss_db(d(1.0));
        assert!((per_decade - 21.9).abs() < 1e-9);
    }

    #[test]
    fn calibration_point_35m_level3_near_sensitivity() {
        let pl = PathLoss::paper_hallway();
        let rssi = pl.mean_rssi_dbm(p(3), d(35.0));
        // Paper: "RSSI values have approached the sensitivity of CC2420".
        assert!(
            rssi > cc2420::SENSITIVITY_DBM && rssi < -88.0,
            "rssi={rssi}"
        );
    }

    #[test]
    fn calibration_point_35m_level11_low_impact_zone() {
        let pl = PathLoss::paper_hallway();
        let snr = pl.mean_snr_db(p(11), d(35.0), -95.0);
        assert!((snr - 19.0).abs() < 0.5, "snr={snr}");
    }

    #[test]
    fn rssi_monotone_in_power() {
        let pl = PathLoss::paper_hallway();
        let low = pl.mean_rssi_dbm(p(3), d(20.0));
        let high = pl.mean_rssi_dbm(p(31), d(20.0));
        assert!(high > low);
        assert!((high - low - 25.0).abs() < 1e-9); // 0 − (−25) dBm
    }

    #[test]
    fn range_inverts_rssi() {
        let pl = PathLoss::paper_hallway();
        let range = pl.range_for_rssi_m(p(31), pl.mean_rssi_dbm(p(31), d(25.0)));
        assert!((range - 25.0).abs() < 1e-6);
    }

    #[test]
    fn free_space_is_lossier_than_hallway_at_range() {
        let hall = PathLoss::paper_hallway();
        let free = PathLoss::free_space_2_4ghz();
        assert!(free.loss_db(d(1.0)) > hall.loss_db(d(1.0)));
    }
}
