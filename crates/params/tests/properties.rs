//! Property tests for the parameter vocabulary and the configuration grid.

use proptest::prelude::*;

use wsn_params::config::StackConfig;
use wsn_params::frame::{FrameGeometry, STACK_OVERHEAD_BYTES};
use wsn_params::grid::ParamGrid;
use wsn_params::types::*;

proptest! {
    #[test]
    fn builder_accepts_exactly_the_valid_domain(
        power in 0u8..=40,
        tries in 0u8..=20,
        qmax in 0u16..=100,
        tpkt in 0u32..=1000,
        payload in 0u16..=200,
        dist_m in -5.0f64..100.0,
    ) {
        let result = StackConfig::builder()
            .power_level(power)
            .max_tries(tries)
            .queue_cap(qmax)
            .packet_interval_ms(tpkt)
            .payload_bytes(payload)
            .distance_m(dist_m)
            .build();
        let valid = (1..=31).contains(&power)
            && tries >= 1
            && qmax >= 1
            && tpkt >= 1
            && (1..=114).contains(&payload)
            && dist_m > 0.0;
        prop_assert_eq!(result.is_ok(), valid);
    }

    #[test]
    fn frame_geometry_invariants(payload in 1u16..=114) {
        let g = FrameGeometry::for_payload(PayloadSize::new(payload).unwrap());
        prop_assert_eq!(g.air_bytes(), payload + STACK_OVERHEAD_BYTES);
        prop_assert!(g.mpdu_bytes() <= 127);
        prop_assert_eq!(g.air_time_us(), g.air_bytes() as u32 * 32);
        prop_assert!(g.efficiency() > 0.0 && g.efficiency() < 1.0);
        // Efficiency strictly improves with payload.
        if payload < 114 {
            let bigger = FrameGeometry::for_payload(PayloadSize::new(payload + 1).unwrap());
            prop_assert!(bigger.efficiency() > g.efficiency());
        }
    }

    #[test]
    fn grid_config_at_matches_iterator(
        n_powers in 1usize..4,
        n_tries in 1usize..3,
        n_payloads in 1usize..4,
        n_intervals in 1usize..3,
    ) {
        let grid = ParamGrid {
            distances_m: vec![10.0, 35.0],
            power_levels: (0..n_powers).map(|i| (3 + 4 * i) as u8).collect(),
            max_tries: (0..n_tries).map(|i| (1 + 2 * i) as u8).collect(),
            retry_delays_ms: vec![0, 30],
            queue_caps: vec![1, 30],
            packet_intervals_ms: (0..n_intervals).map(|i| 10 * (i as u32 + 1)).collect(),
            payloads: (0..n_payloads).map(|i| (5 + 30 * i) as u16).collect(),
        };
        prop_assert!(grid.validate().is_ok());
        let collected: Vec<StackConfig> = grid.iter().collect();
        prop_assert_eq!(collected.len(), grid.len());
        for (i, cfg) in collected.iter().enumerate() {
            prop_assert_eq!(&grid.config_at(i), cfg);
        }
    }

    #[test]
    fn offered_load_scales_linearly_with_payload(
        payload in 1u16..=57,
        tpkt in 1u32..=500,
    ) {
        let one = StackConfig::builder()
            .payload_bytes(payload)
            .packet_interval_ms(tpkt)
            .build()
            .unwrap();
        let double = StackConfig::builder()
            .payload_bytes(payload * 2)
            .packet_interval_ms(tpkt)
            .build()
            .unwrap();
        let ratio = double.offered_load_bps() / one.offered_load_bps();
        prop_assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_round_trips_key_values(
        power in 1u8..=31,
        payload in 1u16..=114,
    ) {
        let cfg = StackConfig::builder()
            .power_level(power)
            .payload_bytes(payload)
            .build()
            .unwrap();
        let s = cfg.to_string();
        let has_power = s.contains(&format!("Ptx={}", power));
        let has_payload = s.contains(&format!("lD={}B", payload));
        prop_assert!(has_power, "missing power in '{}'", s);
        prop_assert!(has_payload, "missing payload in '{}'", s);
    }
}

proptest! {
    #[test]
    fn configs_round_trip_through_json(
        power in 1u8..=31,
        tries in 1u8..=8,
        qmax in 1u16..=30,
        tpkt in 1u32..=500,
        payload in 1u16..=114,
    ) {
        let cfg = StackConfig::builder()
            .power_level(power)
            .max_tries(tries)
            .queue_cap(qmax)
            .packet_interval_ms(tpkt)
            .payload_bytes(payload)
            .build()
            .unwrap();
        let json = serde_json::to_string(&cfg).expect("serializes");
        let back: StackConfig = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(back, cfg);
    }

    #[test]
    fn grids_round_trip_through_json(n_payloads in 1usize..4) {
        let grid = ParamGrid {
            payloads: (0..n_payloads).map(|i| (10 + 20 * i) as u16).collect(),
            ..ParamGrid::paper()
        };
        let json = serde_json::to_string(&grid).expect("serializes");
        let back: ParamGrid = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(back, grid);
    }
}

// ---------------------------------------------------------------------------
// ScenarioTimeline: lossless JSON round-trip and order-stable replay.
// ---------------------------------------------------------------------------

use wsn_params::scenario::Position;
use wsn_params::timeline::{ScenarioTimeline, TopologyAction, TopologyEvent};

fn arb_action() -> impl Strategy<Value = TopologyAction> {
    // (kind, four coordinates, power) — the tag picks the variant and the
    // rest parameterizes it, sidestepping the need for a union combinator.
    (
        0u8..4,
        0.0f64..200.0,
        0.0f64..200.0,
        0.0f64..200.0,
        0.0f64..200.0,
        1u8..=31,
    )
        .prop_map(|(kind, sx, sy, rx, ry, power_level)| match kind {
            0 => TopologyAction::Join,
            1 => TopologyAction::Leave,
            2 => TopologyAction::Move {
                sender: Position::new(sx, sy),
                receiver: Position::new(rx, ry),
            },
            _ => TopologyAction::PowerChange { power_level },
        })
}

fn arb_timeline_events() -> impl Strategy<Value = Vec<TopologyEvent>> {
    // Narrow timestamp/id domains on purpose: collisions are the case the
    // (t_s, id) tiebreak exists for, so make ties common.
    prop::collection::vec(
        (0.0f64..4.0, 0u32..8, 0u64..6, arb_action()).prop_map(|(t_s, link, id, action)| {
            TopologyEvent {
                t_s,
                link,
                id,
                action,
            }
        }),
        0..24,
    )
}

proptest! {
    #[test]
    fn timeline_json_round_trip_is_lossless(events in arb_timeline_events()) {
        let timeline = ScenarioTimeline::new(events);
        let json = serde_json::to_string(&timeline).expect("serializes");
        let back: ScenarioTimeline = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(&back, &timeline);
        prop_assert_eq!(back.digest(), timeline.digest());
    }

    #[test]
    fn timeline_replay_order_is_stable_under_ties(events in arb_timeline_events()) {
        let timeline = ScenarioTimeline::new(events.clone());

        // Normalized order is (t_s, id)-sorted regardless of input order.
        for pair in timeline.events().windows(2) {
            let key = |e: &TopologyEvent| (e.t_s, e.id);
            prop_assert!(
                key(&pair[0]) <= key(&pair[1]),
                "stream not sorted: {:?} before {:?}", pair[0], pair[1]
            );
        }

        // Reversing the input only permutes full (t_s, id) ties, and ties
        // replay by deterministic id order — so where (t_s, id) keys are
        // unique the normalized streams must agree event-for-event, and
        // digests agree whenever the tied events are themselves equal.
        let reversed = ScenarioTimeline::new(events.iter().rev().copied().collect());
        for (a, b) in timeline.events().iter().zip(reversed.events()) {
            prop_assert_eq!((a.t_s, a.id), (b.t_s, b.id));
        }

        // Re-normalizing an already-normalized stream is the identity, and
        // push-one-at-a-time construction agrees with batch construction.
        prop_assert_eq!(
            &ScenarioTimeline::new(timeline.events().to_vec()),
            &timeline
        );
        let mut pushed = ScenarioTimeline::empty();
        for e in timeline.events() {
            pushed.push(*e);
        }
        prop_assert_eq!(&pushed, &timeline);
    }
}
