//! Multi-link topology description: node positions, per-link stack
//! configurations, motion, and join/leave churn.
//!
//! The paper's Sec. VIII-D names concurrent transmission as the first
//! factor its single-link study excludes; a [`Scenario`] is the vocabulary
//! for the shared-channel generalization that lifts that limit. Each
//! [`LinkSpec`] places one sender→receiver pair on a 2-D plane with its own
//! seven-parameter [`StackConfig`]; the multi-link simulator
//! (`wsn-link-sim::network`) derives every cross-link gain from the
//! geometry, so CCA deferral, collisions and capture emerge rather than
//! being parameterized.
//!
//! Two conventions keep the N = 1 case trivially equivalent to the
//! single-link simulator:
//!
//! * a link's **own** budget uses `config.distance` (authoritative), not
//!   the sender–receiver geometry — positions only drive *cross-link*
//!   gains, and the placement helpers keep both consistent;
//! * a scenario without churn seeds every link's traffic at t = 0, exactly
//!   like the single-link run.

use serde::{Deserialize, Serialize};

use crate::config::StackConfig;
use crate::error::InvalidParam;
use crate::motion::Trajectory;

/// A node position on the scenario plane, meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// Easting, meters.
    pub x_m: f64,
    /// Northing, meters.
    pub y_m: f64,
}

impl Position {
    /// Creates a position.
    pub const fn new(x_m: f64, y_m: f64) -> Self {
        Position { x_m, y_m }
    }

    /// Euclidean distance to `other`, meters.
    pub fn distance_m(&self, other: &Position) -> f64 {
        (self.x_m - other.x_m).hypot(self.y_m - other.y_m)
    }
}

/// One sender→receiver link of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Sender (transmitter) position.
    pub sender: Position,
    /// Receiver position.
    pub receiver: Position,
    /// The link's seven-parameter stack configuration. `config.distance`
    /// is the authoritative sender–receiver distance for the link's own
    /// budget; the placement helpers keep it consistent with the geometry.
    pub config: StackConfig,
    /// Sender motion profile (changes the link's own budget mid-run;
    /// cross-link gains stay at the initial geometry).
    pub trajectory: Trajectory,
    /// Seconds after scenario start at which the link begins generating
    /// traffic (`None` = from t = 0).
    pub join_s: Option<f64>,
    /// Seconds after scenario start at which the link stops generating
    /// traffic; an in-flight MAC transaction still finishes.
    pub leave_s: Option<f64>,
}

impl LinkSpec {
    /// A link laid along the x-axis at `y_m`: sender at `(0, y)`, receiver
    /// at `(d, y)` with `d = config.distance`.
    pub fn along_x(config: StackConfig, y_m: f64) -> Self {
        LinkSpec {
            sender: Position::new(0.0, y_m),
            receiver: Position::new(config.distance.meters(), y_m),
            config,
            trajectory: Trajectory::Stationary,
            join_s: None,
            leave_s: None,
        }
    }

    /// A link with explicit endpoint positions. The caller is responsible
    /// for keeping `config.distance` consistent with the geometry if the
    /// link's own budget should match it.
    pub fn at(sender: Position, receiver: Position, config: StackConfig) -> Self {
        LinkSpec {
            sender,
            receiver,
            config,
            trajectory: Trajectory::Stationary,
            join_s: None,
            leave_s: None,
        }
    }

    /// Returns the spec with a motion profile (builder-style).
    pub fn with_trajectory(mut self, trajectory: Trajectory) -> Self {
        self.trajectory = trajectory;
        self
    }

    /// Returns the spec joining at `t_s` seconds (builder-style).
    pub fn joining_at(mut self, t_s: f64) -> Self {
        self.join_s = Some(t_s);
        self
    }

    /// Returns the spec leaving at `t_s` seconds (builder-style).
    pub fn leaving_at(mut self, t_s: f64) -> Self {
        self.leave_s = Some(t_s);
        self
    }
}

/// A multi-link topology sharing one radio channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The contending links.
    pub links: Vec<LinkSpec>,
    /// Capture threshold, dB: an overlapped frame whose SINR falls below
    /// this margin is lost outright (CC2420 co-channel rejection ≈ 3 dB).
    pub capture_db: f64,
    /// Carrier-sense threshold, dBm: a foreign transmitter received above
    /// this level makes the CCA report busy (CC2420 default ≈ −77 dBm).
    pub cca_threshold_dbm: f64,
}

impl Scenario {
    /// CC2420 co-channel rejection margin, dB.
    pub const DEFAULT_CAPTURE_DB: f64 = 3.0;
    /// CC2420 CCA energy-detect threshold, dBm.
    pub const DEFAULT_CCA_THRESHOLD_DBM: f64 = -77.0;

    /// Starts building a scenario, mirroring [`StackConfig::builder`] so
    /// the single-link and network entry points read the same.
    ///
    /// ```
    /// use wsn_params::config::StackConfig;
    /// use wsn_params::scenario::{LinkSpec, Scenario};
    ///
    /// let cfg = StackConfig::default();
    /// let scenario = Scenario::builder()
    ///     .link(LinkSpec::along_x(cfg, 0.0))
    ///     .link(LinkSpec::along_x(cfg, 2.0))
    ///     .capture_db(4.0)
    ///     .build()?;
    /// assert_eq!(scenario.len(), 2);
    /// # Ok::<(), wsn_params::error::InvalidParam>(())
    /// ```
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// A scenario from explicit link specs with the default capture and
    /// carrier-sense thresholds.
    pub fn new(links: Vec<LinkSpec>) -> Self {
        Scenario {
            links,
            capture_db: Self::DEFAULT_CAPTURE_DB,
            cca_threshold_dbm: Self::DEFAULT_CCA_THRESHOLD_DBM,
        }
    }

    /// The single-link scenario for `config` — the N = 1 equivalence case
    /// that must reproduce the direct `LinkSimulation` bit-for-bit.
    pub fn single(config: StackConfig) -> Self {
        Scenario::new(vec![LinkSpec::along_x(config, 0.0)])
    }

    /// `configs.len()` parallel links stacked `spacing_m` apart on the
    /// y-axis, each along the x-axis at its configured distance. With
    /// small spacing every sender hears every other (CCA-coupled
    /// contention); collisions only slip through the vulnerability window.
    pub fn parallel(configs: &[StackConfig], spacing_m: f64) -> Self {
        Scenario::new(
            configs
                .iter()
                .enumerate()
                .map(|(i, &config)| LinkSpec::along_x(config, i as f64 * spacing_m))
                .collect(),
        )
    }

    /// The classic hidden-terminal pair: two senders facing each other at
    /// `2d` separation with both receivers in the middle (`d` from each),
    /// where `d = config.distance`. The senders cannot carrier-sense each
    /// other, while each foreign frame lands on the victim receiver at
    /// full link strength — overlaps become capture failures.
    pub fn hidden_pair(config: StackConfig) -> Self {
        let d = config.distance.meters();
        Scenario::new(vec![
            LinkSpec::at(Position::new(0.0, 0.0), Position::new(d, 0.0), config),
            LinkSpec::at(Position::new(2.0 * d, 0.0), Position::new(d, 0.0), config),
        ])
    }

    /// The CCA-detectable control for [`hidden_pair`](Self::hidden_pair):
    /// the same two links side by side (senders 1 m apart), so each sender
    /// hears the other and defers instead of colliding.
    pub fn exposed_pair(config: StackConfig) -> Self {
        let d = config.distance.meters();
        Scenario::new(vec![
            LinkSpec::at(Position::new(0.0, 0.0), Position::new(d, 0.0), config),
            LinkSpec::at(Position::new(0.0, 1.0), Position::new(d, 1.0), config),
        ])
    }

    /// `n` identical links on a square grid with `cell_m` meter cells —
    /// the constant-density placement of the ext13 scale sweep. Link `i`
    /// sits in cell `(i % cols, i / cols)` with `cols = ceil(sqrt(n))`;
    /// its sender at the cell origin and its receiver `config.distance`
    /// along x. Density (links per m²) is constant as `n` grows, so every
    /// link's interference neighborhood stays bounded while the scenario
    /// footprint — not the contention — scales.
    pub fn grid(config: StackConfig, n: usize, cell_m: f64) -> Self {
        let cols = (n as f64).sqrt().ceil().max(1.0) as usize;
        Scenario::new(
            (0..n)
                .map(|i| {
                    let x = (i % cols) as f64 * cell_m;
                    let y = (i / cols) as f64 * cell_m;
                    LinkSpec::at(
                        Position::new(x, y),
                        Position::new(x + config.distance.meters(), y),
                        config,
                    )
                })
                .collect(),
        )
    }

    /// Returns the scenario with a different capture threshold.
    pub fn with_capture_db(mut self, capture_db: f64) -> Self {
        self.capture_db = capture_db;
        self
    }

    /// Returns the scenario with a different carrier-sense threshold.
    pub fn with_cca_threshold_dbm(mut self, dbm: f64) -> Self {
        self.cca_threshold_dbm = dbm;
        self
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when the scenario has no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// True when any link joins late or leaves early.
    pub fn has_churn(&self) -> bool {
        self.links
            .iter()
            .any(|l| l.join_s.is_some() || l.leave_s.is_some())
    }
}

/// Builder for [`Scenario`] (C-BUILDER), the network-level mirror of
/// [`StackConfigBuilder`](crate::config::StackConfigBuilder): setters take
/// raw values and validation happens once at [`build`](ScenarioBuilder::build).
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    links: Vec<LinkSpec>,
    capture_db: f64,
    cca_threshold_dbm: f64,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            links: Vec::new(),
            capture_db: Scenario::DEFAULT_CAPTURE_DB,
            cca_threshold_dbm: Scenario::DEFAULT_CCA_THRESHOLD_DBM,
        }
    }
}

impl ScenarioBuilder {
    /// Appends one link.
    pub fn link(&mut self, spec: LinkSpec) -> &mut Self {
        self.links.push(spec);
        self
    }

    /// Appends every link of `specs`.
    pub fn links<I: IntoIterator<Item = LinkSpec>>(&mut self, specs: I) -> &mut Self {
        self.links.extend(specs);
        self
    }

    /// Sets the SINR capture threshold, dB.
    pub fn capture_db(&mut self, db: f64) -> &mut Self {
        self.capture_db = db;
        self
    }

    /// Sets the carrier-sense threshold, dBm.
    pub fn cca_threshold_dbm(&mut self, dbm: f64) -> &mut Self {
        self.cca_threshold_dbm = dbm;
        self
    }

    /// Validates and produces the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParam::EmptyScenario`] when no link was added.
    pub fn build(&self) -> Result<Scenario, InvalidParam> {
        if self.links.is_empty() {
            return Err(InvalidParam::EmptyScenario);
        }
        Ok(Scenario {
            links: self.links.clone(),
            capture_db: self.capture_db,
            cca_threshold_dbm: self.cca_threshold_dbm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StackConfig {
        StackConfig::builder()
            .distance_m(35.0)
            .power_level(11)
            .payload_bytes(110)
            .build()
            .unwrap()
    }

    #[test]
    fn position_distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert_eq!(a.distance_m(&b), 5.0);
        assert_eq!(b.distance_m(&a), 5.0);
    }

    #[test]
    fn single_scenario_geometry_matches_config_distance() {
        let s = Scenario::single(cfg());
        assert_eq!(s.len(), 1);
        assert!(!s.has_churn());
        let l = &s.links[0];
        assert!((l.sender.distance_m(&l.receiver) - 35.0).abs() < 1e-12);
    }

    #[test]
    fn hidden_pair_senders_cannot_reach_each_other_cheaply() {
        let s = Scenario::hidden_pair(cfg());
        assert_eq!(s.len(), 2);
        let sep = s.links[0].sender.distance_m(&s.links[1].sender);
        assert!((sep - 70.0).abs() < 1e-12);
        // Both receivers sit in the middle, one link-distance from the
        // foreign sender.
        for (i, j) in [(0usize, 1usize), (1, 0)] {
            let d = s.links[j].sender.distance_m(&s.links[i].receiver);
            assert!((d - 35.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exposed_pair_senders_are_adjacent() {
        let s = Scenario::exposed_pair(cfg());
        let sep = s.links[0].sender.distance_m(&s.links[1].sender);
        assert!((sep - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_stacks_links_on_y() {
        let s = Scenario::parallel(&[cfg(), cfg(), cfg()], 2.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.links[2].sender.y_m, 4.0);
        assert_eq!(s.links[2].receiver.y_m, 4.0);
    }

    #[test]
    fn grid_places_constant_density_cells() {
        let s = Scenario::grid(cfg(), 10, 25.0);
        assert_eq!(s.len(), 10);
        // cols = ceil(sqrt(10)) = 4: link 5 sits in cell (1, 1).
        assert_eq!(s.links[5].sender.x_m, 25.0);
        assert_eq!(s.links[5].sender.y_m, 25.0);
        // Own geometry still matches the configured distance.
        let l = &s.links[5];
        assert!((l.sender.distance_m(&l.receiver) - 35.0).abs() < 1e-12);
        assert!(!s.has_churn());
    }

    #[test]
    fn churn_builders_are_detected() {
        let mut s = Scenario::single(cfg());
        assert!(!s.has_churn());
        s.links[0] = s.links[0].joining_at(5.0).leaving_at(30.0);
        assert!(s.has_churn());
        assert_eq!(s.links[0].join_s, Some(5.0));
        assert_eq!(s.links[0].leave_s, Some(30.0));
    }

    #[test]
    fn builder_mirrors_direct_construction() {
        let built = Scenario::builder()
            .links([LinkSpec::along_x(cfg(), 0.0), LinkSpec::along_x(cfg(), 2.0)])
            .build()
            .unwrap();
        let direct = Scenario::new(vec![
            LinkSpec::along_x(cfg(), 0.0),
            LinkSpec::along_x(cfg(), 2.0),
        ]);
        assert_eq!(built, direct);
    }

    #[test]
    fn builder_sets_thresholds_and_rejects_empty() {
        let s = Scenario::builder()
            .link(LinkSpec::along_x(cfg(), 0.0))
            .capture_db(5.0)
            .cca_threshold_dbm(-80.0)
            .build()
            .unwrap();
        assert_eq!(s.capture_db, 5.0);
        assert_eq!(s.cca_threshold_dbm, -80.0);
        assert_eq!(
            Scenario::builder().build().unwrap_err(),
            InvalidParam::EmptyScenario
        );
    }

    #[test]
    fn scenario_serde_round_trips() {
        let s = Scenario::hidden_pair(cfg())
            .with_capture_db(4.0)
            .with_cca_threshold_dbm(-80.0);
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.capture_db, 4.0);
        assert_eq!(back.cca_threshold_dbm, -80.0);
    }
}
