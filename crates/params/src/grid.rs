//! The experiment parameter grid (Table I) and its configuration iterator.
//!
//! The paper iterated, for each of 6 distances, **all combinations** of the
//! remaining 6 parameters — 8064 settings per distance, 48,384 in total
//! ("close to 50 thousand"). [`ParamGrid::paper`] reconstructs that grid;
//! [`ParamGrid`] also serves as a general axis-restriction mechanism for the
//! per-figure experiment sweeps.

use serde::{Deserialize, Serialize};

use crate::config::StackConfig;
use crate::error::InvalidParam;

/// Value axes of the exploration grid, one `Vec` per stack parameter.
///
/// The Cartesian product of the axes is the set of experimented
/// configurations; [`ParamGrid::iter`] yields them in a fixed lexicographic
/// order (distance slowest, payload fastest), mirroring the paper's protocol
/// of finishing all combinations at one distance before moving the motes.
///
/// ```
/// use wsn_params::grid::ParamGrid;
///
/// let grid = ParamGrid::paper();
/// assert_eq!(grid.per_distance_count(), 8064);
/// assert_eq!(grid.len(), 48_384); // "close to 50 thousand"
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamGrid {
    /// Distances in meters.
    pub distances_m: Vec<f64>,
    /// CC2420 PA levels.
    pub power_levels: Vec<u8>,
    /// Maximum transmission counts.
    pub max_tries: Vec<u8>,
    /// Retry delays in milliseconds.
    pub retry_delays_ms: Vec<u32>,
    /// Queue capacities in packets.
    pub queue_caps: Vec<u16>,
    /// Packet inter-arrival times in milliseconds.
    pub packet_intervals_ms: Vec<u32>,
    /// Payload sizes in bytes.
    pub payloads: Vec<u16>,
}

impl ParamGrid {
    /// The reconstructed Table I grid: 8 × 3 × 3 × 2 × 7 × 8 = 8064
    /// configurations per distance, at 6 distances.
    pub fn paper() -> Self {
        ParamGrid {
            distances_m: vec![10.0, 15.0, 20.0, 25.0, 30.0, 35.0],
            power_levels: vec![3, 7, 11, 15, 19, 23, 27, 31],
            max_tries: vec![1, 3, 8],
            retry_delays_ms: vec![0, 30, 100],
            queue_caps: vec![1, 30],
            packet_intervals_ms: vec![10, 20, 30, 50, 100, 200, 500],
            payloads: vec![5, 20, 35, 50, 65, 80, 95, 110],
        }
    }

    /// A single-configuration grid around `cfg` (useful as a sweep seed).
    pub fn singleton(cfg: &StackConfig) -> Self {
        ParamGrid {
            distances_m: vec![cfg.distance.meters()],
            power_levels: vec![cfg.power.level()],
            max_tries: vec![cfg.max_tries.get()],
            retry_delays_ms: vec![cfg.retry_delay.millis()],
            queue_caps: vec![cfg.queue_cap.get()],
            packet_intervals_ms: vec![cfg.packet_interval.millis()],
            payloads: vec![cfg.payload.bytes()],
        }
    }

    /// Number of configurations per distance.
    pub fn per_distance_count(&self) -> usize {
        self.power_levels.len()
            * self.max_tries.len()
            * self.retry_delays_ms.len()
            * self.queue_caps.len()
            * self.packet_intervals_ms.len()
            * self.payloads.len()
    }

    /// Total number of configurations in the grid.
    pub fn len(&self) -> usize {
        self.distances_m.len() * self.per_distance_count()
    }

    /// True if any axis is empty (the grid generates nothing).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates every axis value by building the first configuration that
    /// uses it.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvalidParam`] found on any axis.
    pub fn validate(&self) -> Result<(), InvalidParam> {
        for &d in &self.distances_m {
            crate::types::Distance::from_meters(d)?;
        }
        for &p in &self.power_levels {
            crate::types::PowerLevel::new(p)?;
        }
        for &n in &self.max_tries {
            crate::types::MaxTries::new(n)?;
        }
        for &q in &self.queue_caps {
            crate::types::QueueCap::new(q)?;
        }
        for &t in &self.packet_intervals_ms {
            crate::types::PacketInterval::from_millis(t)?;
        }
        for &l in &self.payloads {
            crate::types::PayloadSize::new(l)?;
        }
        Ok(())
    }

    /// Iterates all configurations in lexicographic order
    /// (distance, power, tries, retry delay, queue, interval, payload).
    ///
    /// # Panics
    ///
    /// The iterator panics on the first invalid axis value; call
    /// [`validate`](Self::validate) first for a `Result`-based check.
    pub fn iter(&self) -> GridIter<'_> {
        GridIter {
            grid: self,
            next_index: 0,
            total: self.len(),
        }
    }

    /// The configuration at lexicographic position `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()` or an axis value is invalid.
    pub fn config_at(&self, index: usize) -> StackConfig {
        assert!(index < self.len(), "grid index {index} out of bounds");
        let mut rest = index;
        let pick = |rest: &mut usize, len: usize| {
            let i = *rest % len;
            *rest /= len;
            i
        };
        // Fastest-varying axis last in the tuple order: payload.
        let l = pick(&mut rest, self.payloads.len());
        let t = pick(&mut rest, self.packet_intervals_ms.len());
        let q = pick(&mut rest, self.queue_caps.len());
        let r = pick(&mut rest, self.retry_delays_ms.len());
        let n = pick(&mut rest, self.max_tries.len());
        let p = pick(&mut rest, self.power_levels.len());
        let d = pick(&mut rest, self.distances_m.len());
        StackConfig::builder()
            .distance_m(self.distances_m[d])
            .power_level(self.power_levels[p])
            .max_tries(self.max_tries[n])
            .retry_delay_ms(self.retry_delays_ms[r])
            .queue_cap(self.queue_caps[q])
            .packet_interval_ms(self.packet_intervals_ms[t])
            .payload_bytes(self.payloads[l])
            .build()
            .expect("grid axis values must be valid")
    }
}

/// Iterator over every [`StackConfig`] in a [`ParamGrid`].
#[derive(Debug, Clone)]
pub struct GridIter<'a> {
    grid: &'a ParamGrid,
    next_index: usize,
    total: usize,
}

impl Iterator for GridIter<'_> {
    type Item = StackConfig;

    fn next(&mut self) -> Option<StackConfig> {
        if self.next_index >= self.total {
            return None;
        }
        let cfg = self.grid.config_at(self.next_index);
        self.next_index += 1;
        Some(cfg)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.total - self.next_index;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for GridIter<'_> {}

impl<'a> IntoIterator for &'a ParamGrid {
    type Item = StackConfig;
    type IntoIter = GridIter<'a>;
    fn into_iter(self) -> GridIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_grid_matches_the_papers_counts() {
        let g = ParamGrid::paper();
        assert_eq!(g.per_distance_count(), 8064);
        assert_eq!(g.len(), 48_384);
        assert!(!g.is_empty());
        g.validate().unwrap();
    }

    #[test]
    fn iterator_yields_exactly_len_unique_configs() {
        // Use a smaller grid to keep the uniqueness check cheap.
        let g = ParamGrid {
            distances_m: vec![10.0, 35.0],
            power_levels: vec![3, 31],
            max_tries: vec![1, 8],
            retry_delays_ms: vec![0, 30],
            queue_caps: vec![1, 30],
            packet_intervals_ms: vec![10, 500],
            payloads: vec![5, 110],
        };
        let configs: Vec<_> = g.iter().collect();
        assert_eq!(configs.len(), g.len());
        assert_eq!(g.iter().len(), g.len());
        let unique: HashSet<String> = configs.iter().map(|c| c.to_string()).collect();
        assert_eq!(unique.len(), g.len());
    }

    #[test]
    fn order_is_lexicographic_distance_slowest_payload_fastest() {
        let g = ParamGrid {
            distances_m: vec![10.0, 20.0],
            power_levels: vec![3],
            max_tries: vec![1],
            retry_delays_ms: vec![0],
            queue_caps: vec![1],
            packet_intervals_ms: vec![10],
            payloads: vec![5, 110],
        };
        let configs: Vec<_> = g.iter().collect();
        assert_eq!(configs[0].distance.meters(), 10.0);
        assert_eq!(configs[0].payload.bytes(), 5);
        assert_eq!(configs[1].distance.meters(), 10.0);
        assert_eq!(configs[1].payload.bytes(), 110);
        assert_eq!(configs[2].distance.meters(), 20.0);
        assert_eq!(configs[2].payload.bytes(), 5);
    }

    #[test]
    fn config_at_agrees_with_iterator() {
        let g = ParamGrid {
            distances_m: vec![10.0, 20.0],
            power_levels: vec![3, 7, 11],
            max_tries: vec![1, 3],
            retry_delays_ms: vec![0],
            queue_caps: vec![1, 30],
            packet_intervals_ms: vec![10, 30],
            payloads: vec![5, 50, 110],
        };
        for (i, cfg) in g.iter().enumerate() {
            assert_eq!(g.config_at(i), cfg);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn config_at_out_of_bounds_panics() {
        let g = ParamGrid::singleton(&StackConfig::default());
        let _ = g.config_at(1);
    }

    #[test]
    fn singleton_round_trips() {
        let cfg = StackConfig::default();
        let g = ParamGrid::singleton(&cfg);
        assert_eq!(g.len(), 1);
        assert_eq!(g.iter().next().unwrap(), cfg);
    }

    #[test]
    fn validate_catches_bad_axis_values() {
        let mut g = ParamGrid::paper();
        g.power_levels.push(0);
        assert!(g.validate().is_err());
    }

    #[test]
    fn empty_axis_empties_the_grid() {
        let mut g = ParamGrid::paper();
        g.payloads.clear();
        assert!(g.is_empty());
        assert_eq!(g.iter().count(), 0);
    }
}
