//! Validation errors for stack-parameter values.

use core::fmt;

/// Error returned when a stack-parameter value is outside its valid domain.
///
/// Each variant carries the offending value so callers can report exactly
/// what was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum InvalidParam {
    /// CC2420 PA level must be in `1..=31`.
    PowerLevel(u8),
    /// Payload must be `1..=114` bytes (TinyOS 2.1 CC2420 stack limit).
    PayloadSize(u16),
    /// At least one transmission attempt is required.
    MaxTries(u8),
    /// Queue must hold at least the packet in service.
    QueueCap(u16),
    /// Packet inter-arrival time must be positive.
    PacketInterval(u32),
    /// Distance must be positive and finite (meters).
    Distance(f64),
    /// A scenario needs at least one link.
    EmptyScenario,
}

impl fmt::Display for InvalidParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidParam::PowerLevel(v) => {
                write!(f, "power level {v} outside CC2420 PA range 1..=31")
            }
            InvalidParam::PayloadSize(v) => {
                write!(f, "payload size {v} outside 1..=114 bytes")
            }
            InvalidParam::MaxTries(v) => {
                write!(f, "max transmissions {v} must be at least 1")
            }
            InvalidParam::QueueCap(v) => {
                write!(f, "queue capacity {v} must be at least 1")
            }
            InvalidParam::PacketInterval(v) => {
                write!(f, "packet inter-arrival time {v} ms must be positive")
            }
            InvalidParam::Distance(v) => {
                write!(f, "distance {v} m must be positive and finite")
            }
            InvalidParam::EmptyScenario => {
                write!(f, "scenario needs at least one link")
            }
        }
    }
}

impl std::error::Error for InvalidParam {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        assert!(InvalidParam::PowerLevel(0).to_string().contains("CC2420"));
        assert!(InvalidParam::PayloadSize(200).to_string().contains("114"));
        assert!(InvalidParam::Distance(-1.0)
            .to_string()
            .contains("positive"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error<E: std::error::Error>(_e: E) {}
        takes_error(InvalidParam::MaxTries(0));
    }
}
