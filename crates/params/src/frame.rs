//! IEEE 802.15.4 / TinyOS 2.1 frame geometry.
//!
//! The per-frame byte layout determines both the on-air transmission time
//! (at 250 kb/s a byte lasts 32 µs) and the stack-overhead term `l0` in the
//! paper's energy model (Eq. 2).
//!
//! Layout of one data frame as transmitted by the CC2420:
//!
//! ```text
//! | preamble 4 | SFD 1 | LEN 1 |  MAC header 11  | payload lD | FCS 2 |
//! |<------ PHY: 6 ----->|<------------- MPDU: <= 127 ---------------->|
//! ```
//!
//! MAC header: frame control (2), sequence number (1), destination PAN (2),
//! destination address (2), source PAN (2), source address (2) = 11 bytes.
//! With the 2-byte FCS, 13 bytes of the MPDU are overhead, leaving
//! 127 − 13 = **114 bytes** of maximum payload — the paper's `lD` limit.

use serde::{Deserialize, Serialize};

use crate::types::PayloadSize;

/// PHY-layer synchronisation header: 4 B preamble + 1 B SFD + 1 B length.
pub const PHY_OVERHEAD_BYTES: u16 = 6;

/// MAC header bytes (FCF, DSN, dest PAN, dest, src PAN, src).
pub const MAC_HEADER_BYTES: u16 = 11;

/// Frame check sequence (CRC-16) bytes.
pub const FCS_BYTES: u16 = 2;

/// Total per-frame stack overhead `l0` on the air, in bytes.
pub const STACK_OVERHEAD_BYTES: u16 = PHY_OVERHEAD_BYTES + MAC_HEADER_BYTES + FCS_BYTES;

/// Maximum MPDU size allowed by IEEE 802.15.4 (bytes).
pub const MAX_MPDU_BYTES: u16 = 127;

/// Length of an acknowledgement frame on the air: PHY (6) + FCF (2) +
/// DSN (1) + FCS (2) = 11 bytes.
pub const ACK_FRAME_BYTES: u16 = 11;

/// PHY data rate of the CC2420 in the 2.4 GHz band, bits per second.
pub const PHY_RATE_BPS: u32 = 250_000;

/// Time to serialise one byte onto the air at 250 kb/s, in microseconds.
pub const BYTE_TIME_US: u32 = 32;

/// On-air geometry of one data frame for a given application payload.
///
/// ```
/// use wsn_params::frame::FrameGeometry;
/// use wsn_params::types::PayloadSize;
///
/// let g = FrameGeometry::for_payload(PayloadSize::MAX);
/// assert_eq!(g.mpdu_bytes(), 127);        // fills the 802.15.4 MPDU
/// assert_eq!(g.air_bytes(), 133);         // + 6 bytes PHY header
/// assert_eq!(g.air_time_us(), 133 * 32);  // 4.256 ms at 250 kb/s
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameGeometry {
    payload: PayloadSize,
}

impl FrameGeometry {
    /// Geometry of the frame carrying `payload`.
    pub fn for_payload(payload: PayloadSize) -> Self {
        FrameGeometry { payload }
    }

    /// The application payload carried.
    pub fn payload(self) -> PayloadSize {
        self.payload
    }

    /// MPDU length (MAC header + payload + FCS), bytes.
    pub fn mpdu_bytes(self) -> u16 {
        MAC_HEADER_BYTES + self.payload.bytes() + FCS_BYTES
    }

    /// Total bytes serialised on the air including the PHY header.
    pub fn air_bytes(self) -> u16 {
        PHY_OVERHEAD_BYTES + self.mpdu_bytes()
    }

    /// Total bits on the air.
    pub fn air_bits(self) -> u32 {
        self.air_bytes() as u32 * 8
    }

    /// Stack overhead `l0` accompanying the payload, in bytes (Eq. 2 term).
    pub fn overhead_bytes(self) -> u16 {
        STACK_OVERHEAD_BYTES
    }

    /// Frame transmission time `T_frame` on the air, microseconds.
    pub fn air_time_us(self) -> u32 {
        self.air_bytes() as u32 * BYTE_TIME_US
    }

    /// Frame transmission time in seconds.
    pub fn air_time_secs(self) -> f64 {
        self.air_time_us() as f64 / 1e6
    }

    /// Fraction of on-air bits that are useful payload (protocol efficiency).
    pub fn efficiency(self) -> f64 {
        self.payload.bytes() as f64 / self.air_bytes() as f64
    }
}

/// ACK frame transmission time on the air, microseconds.
pub fn ack_air_time_us() -> u32 {
    ACK_FRAME_BYTES as u32 * BYTE_TIME_US
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PayloadSize;

    #[test]
    fn max_payload_fills_mpdu_exactly() {
        let g = FrameGeometry::for_payload(PayloadSize::MAX);
        assert_eq!(g.mpdu_bytes(), MAX_MPDU_BYTES);
    }

    #[test]
    fn overhead_is_nineteen_bytes() {
        assert_eq!(STACK_OVERHEAD_BYTES, 19);
        let g = FrameGeometry::for_payload(PayloadSize::new(50).unwrap());
        assert_eq!(g.overhead_bytes(), 19);
        assert_eq!(g.air_bytes(), 69);
    }

    #[test]
    fn air_time_matches_250kbps() {
        // 114 B payload -> 133 B on air -> 1064 bits -> 4.256 ms.
        let g = FrameGeometry::for_payload(PayloadSize::MAX);
        assert_eq!(g.air_time_us(), 4_256);
        assert!((g.air_time_secs() - 0.004256).abs() < 1e-12);
        assert_eq!(g.air_bits(), 1_064);
    }

    #[test]
    fn ack_takes_352_us() {
        assert_eq!(ack_air_time_us(), 352);
    }

    #[test]
    fn efficiency_grows_with_payload() {
        let small = FrameGeometry::for_payload(PayloadSize::new(5).unwrap());
        let large = FrameGeometry::for_payload(PayloadSize::MAX);
        assert!(small.efficiency() < large.efficiency());
        assert!((small.efficiency() - 5.0 / 24.0).abs() < 1e-12);
        assert!((large.efficiency() - 114.0 / 133.0).abs() < 1e-12);
    }

    #[test]
    fn byte_time_consistent_with_rate() {
        assert_eq!(8 * 1_000_000 / PHY_RATE_BPS, BYTE_TIME_US);
    }
}
