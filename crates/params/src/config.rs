//! The full multi-layer stack configuration: one point in the 7-parameter
//! space explored by the paper.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::error::InvalidParam;
use crate::frame::FrameGeometry;
use crate::types::{
    Distance, MaxTries, PacketInterval, PayloadSize, PowerLevel, QueueCap, RetryDelay,
};

/// One complete configuration of the seven stack parameters (Table I).
///
/// Construct with [`StackConfig::builder`]; unspecified parameters default
/// to the paper's case-study link (35 m) with mid-range settings.
///
/// ```
/// use wsn_params::config::StackConfig;
///
/// let cfg = StackConfig::builder()
///     .distance_m(35.0)
///     .power_level(23)
///     .payload_bytes(110)
///     .max_tries(3)
///     .retry_delay_ms(30)
///     .queue_cap(30)
///     .packet_interval_ms(30)
///     .build()?;
/// assert_eq!(cfg.payload.bytes(), 110);
/// # Ok::<(), wsn_params::error::InvalidParam>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StackConfig {
    /// PHY: sender–receiver distance.
    pub distance: Distance,
    /// PHY: CC2420 output power level.
    pub power: PowerLevel,
    /// MAC: maximum number of transmissions per packet.
    pub max_tries: MaxTries,
    /// MAC: delay before each retransmission.
    pub retry_delay: RetryDelay,
    /// Queue: transmit queue capacity.
    pub queue_cap: QueueCap,
    /// Application: packet inter-arrival time.
    pub packet_interval: PacketInterval,
    /// Application: packet payload size.
    pub payload: PayloadSize,
}

impl StackConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> StackConfigBuilder {
        StackConfigBuilder::default()
    }

    /// The on-air frame geometry implied by this configuration's payload.
    pub fn frame(&self) -> FrameGeometry {
        FrameGeometry::for_payload(self.payload)
    }

    /// Offered application load in bits per second
    /// (`payload bits / Tpkt`).
    pub fn offered_load_bps(&self) -> f64 {
        self.payload.bits() as f64 / self.packet_interval.as_secs_f64()
    }
}

impl Default for StackConfig {
    /// The paper's running-example configuration: the 35 m link with
    /// `Ptx = 23`, `lD = 110`, `NmaxTries = 3`, `Dretry = 30 ms`,
    /// `Qmax = 30`, `Tpkt = 30 ms`.
    fn default() -> Self {
        StackConfig::builder()
            .build()
            .expect("default configuration is valid")
    }
}

impl fmt::Display for StackConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {} {} {}",
            self.distance,
            self.power,
            self.max_tries,
            self.retry_delay,
            self.queue_cap,
            self.packet_interval,
            self.payload
        )
    }
}

/// Builder for [`StackConfig`] (C-BUILDER). All setters take raw values and
/// validation happens once at [`build`](StackConfigBuilder::build).
#[derive(Debug, Clone)]
pub struct StackConfigBuilder {
    distance_m: f64,
    power_level: u8,
    max_tries: u8,
    retry_delay_ms: u32,
    queue_cap: u16,
    packet_interval_ms: u32,
    payload_bytes: u16,
}

impl Default for StackConfigBuilder {
    fn default() -> Self {
        StackConfigBuilder {
            distance_m: 35.0,
            power_level: 23,
            max_tries: 3,
            retry_delay_ms: 30,
            queue_cap: 30,
            packet_interval_ms: 30,
            payload_bytes: 110,
        }
    }
}

impl StackConfigBuilder {
    /// Sets the link distance in meters.
    pub fn distance_m(&mut self, meters: f64) -> &mut Self {
        self.distance_m = meters;
        self
    }

    /// Sets the CC2420 PA level (1..=31).
    pub fn power_level(&mut self, level: u8) -> &mut Self {
        self.power_level = level;
        self
    }

    /// Sets the maximum number of transmissions (≥ 1).
    pub fn max_tries(&mut self, tries: u8) -> &mut Self {
        self.max_tries = tries;
        self
    }

    /// Sets the retransmission delay in milliseconds.
    pub fn retry_delay_ms(&mut self, millis: u32) -> &mut Self {
        self.retry_delay_ms = millis;
        self
    }

    /// Sets the transmit queue capacity in packets (≥ 1).
    pub fn queue_cap(&mut self, cap: u16) -> &mut Self {
        self.queue_cap = cap;
        self
    }

    /// Sets the packet inter-arrival time in milliseconds (> 0).
    pub fn packet_interval_ms(&mut self, millis: u32) -> &mut Self {
        self.packet_interval_ms = millis;
        self
    }

    /// Sets the payload size in bytes (1..=114).
    pub fn payload_bytes(&mut self, bytes: u16) -> &mut Self {
        self.payload_bytes = bytes;
        self
    }

    /// Validates every parameter and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvalidParam`] encountered, in declaration order.
    pub fn build(&self) -> Result<StackConfig, InvalidParam> {
        Ok(StackConfig {
            distance: Distance::from_meters(self.distance_m)?,
            power: PowerLevel::new(self.power_level)?,
            max_tries: MaxTries::new(self.max_tries)?,
            retry_delay: RetryDelay::from_millis(self.retry_delay_ms),
            queue_cap: QueueCap::new(self.queue_cap)?,
            packet_interval: PacketInterval::from_millis(self.packet_interval_ms)?,
            payload: PayloadSize::new(self.payload_bytes)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_the_case_study_link() {
        let cfg = StackConfig::default();
        assert_eq!(cfg.distance.meters(), 35.0);
        assert_eq!(cfg.power.level(), 23);
        assert_eq!(cfg.max_tries.get(), 3);
        assert_eq!(cfg.retry_delay.millis(), 30);
        assert_eq!(cfg.queue_cap.get(), 30);
        assert_eq!(cfg.packet_interval.millis(), 30);
        assert_eq!(cfg.payload.bytes(), 110);
    }

    #[test]
    fn builder_sets_every_field() {
        let cfg = StackConfig::builder()
            .distance_m(10.0)
            .power_level(31)
            .max_tries(8)
            .retry_delay_ms(100)
            .queue_cap(1)
            .packet_interval_ms(500)
            .payload_bytes(5)
            .build()
            .unwrap();
        assert_eq!(cfg.distance.meters(), 10.0);
        assert_eq!(cfg.power.level(), 31);
        assert_eq!(cfg.max_tries.get(), 8);
        assert_eq!(cfg.retry_delay.millis(), 100);
        assert_eq!(cfg.queue_cap.get(), 1);
        assert_eq!(cfg.packet_interval.millis(), 500);
        assert_eq!(cfg.payload.bytes(), 5);
    }

    #[test]
    fn builder_rejects_invalid_values() {
        assert!(StackConfig::builder().power_level(0).build().is_err());
        assert!(StackConfig::builder().payload_bytes(200).build().is_err());
        assert!(StackConfig::builder().max_tries(0).build().is_err());
        assert!(StackConfig::builder().queue_cap(0).build().is_err());
        assert!(StackConfig::builder()
            .packet_interval_ms(0)
            .build()
            .is_err());
        assert!(StackConfig::builder().distance_m(-5.0).build().is_err());
    }

    #[test]
    fn offered_load_matches_hand_computation() {
        let cfg = StackConfig::builder()
            .payload_bytes(110)
            .packet_interval_ms(30)
            .build()
            .unwrap();
        // 880 bits every 30 ms = 29,333 b/s.
        assert!((cfg.offered_load_bps() - 880.0 / 0.03).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_all_seven_parameters() {
        let s = StackConfig::default().to_string();
        for needle in [
            "35m",
            "Ptx=23",
            "NmaxTries=3",
            "Dretry=30ms",
            "Qmax=30",
            "Tpkt=30ms",
            "lD=110B",
        ] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }

    #[test]
    fn frame_geometry_follows_payload() {
        let cfg = StackConfig::builder().payload_bytes(114).build().unwrap();
        assert_eq!(cfg.frame().mpdu_bytes(), 127);
    }
}
