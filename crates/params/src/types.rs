//! Validated newtypes for the seven stack parameters of Table I.
//!
//! Each parameter gets its own type so a `Ptx` can never be passed where an
//! `NmaxTries` is expected (C-NEWTYPE). Constructors validate the domain and
//! return [`InvalidParam`] on bad input.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::error::InvalidParam;

/// PHY: distance between sender and receiver, in meters.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Distance(f64);

impl Distance {
    /// Creates a distance of `meters` (must be positive and finite).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParam::Distance`] for non-positive or non-finite input.
    pub fn from_meters(meters: f64) -> Result<Self, InvalidParam> {
        if meters.is_finite() && meters > 0.0 {
            Ok(Distance(meters))
        } else {
            Err(InvalidParam::Distance(meters))
        }
    }

    /// Distance in meters.
    pub fn meters(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}m", self.0)
    }
}

/// PHY: CC2420 programmable output power level (register `PA_LEVEL`).
///
/// Valid levels are 1..=31; the paper's grid uses {3, 7, 11, 15, 19, 23, 27,
/// 31}. The dBm / current mapping lives in `wsn-radio`, which owns the
/// CC2420 datasheet tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PowerLevel(u8);

impl PowerLevel {
    /// Minimum PA level.
    pub const MIN: PowerLevel = PowerLevel(1);
    /// Maximum PA level (0 dBm on CC2420).
    pub const MAX: PowerLevel = PowerLevel(31);

    /// Creates a power level, validating `1..=31`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParam::PowerLevel`] if outside the PA range.
    pub fn new(level: u8) -> Result<Self, InvalidParam> {
        if (1..=31).contains(&level) {
            Ok(PowerLevel(level))
        } else {
            Err(InvalidParam::PowerLevel(level))
        }
    }

    /// The raw PA level.
    pub fn level(self) -> u8 {
        self.0
    }
}

impl fmt::Display for PowerLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ptx={}", self.0)
    }
}

/// MAC: maximum number of transmissions of one packet (1 = no retransmission).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MaxTries(u8);

impl MaxTries {
    /// No retransmissions: a single attempt.
    pub const ONE: MaxTries = MaxTries(1);

    /// Creates a transmission budget (must be ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParam::MaxTries`] if `tries` is zero.
    pub fn new(tries: u8) -> Result<Self, InvalidParam> {
        if tries >= 1 {
            Ok(MaxTries(tries))
        } else {
            Err(InvalidParam::MaxTries(tries))
        }
    }

    /// The transmission budget.
    pub fn get(self) -> u8 {
        self.0
    }

    /// True if retransmissions are enabled (budget > 1).
    pub fn retransmits(self) -> bool {
        self.0 > 1
    }
}

impl fmt::Display for MaxTries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NmaxTries={}", self.0)
    }
}

/// MAC: delay inserted before each retransmission, in milliseconds.
///
/// Zero is valid (immediate retry after the ACK timeout).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RetryDelay(u32);

impl RetryDelay {
    /// Immediate retransmission.
    pub const ZERO: RetryDelay = RetryDelay(0);

    /// Creates a retry delay of `millis` milliseconds.
    pub const fn from_millis(millis: u32) -> Self {
        RetryDelay(millis)
    }

    /// Delay in milliseconds.
    pub const fn millis(self) -> u32 {
        self.0
    }

    /// Delay in seconds (float).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
}

impl fmt::Display for RetryDelay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dretry={}ms", self.0)
    }
}

/// Queue: capacity of the transmit FIFO above the MAC, in packets.
///
/// The packet currently in MAC service occupies one slot; `QueueCap::new(1)`
/// therefore means "no buffering beyond the packet in service", matching the
/// paper's `Qmax = 1` configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueueCap(u16);

impl QueueCap {
    /// Queue that only holds the packet in service.
    pub const ONE: QueueCap = QueueCap(1);

    /// Creates a queue capacity (must be ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParam::QueueCap`] if `cap` is zero.
    pub fn new(cap: u16) -> Result<Self, InvalidParam> {
        if cap >= 1 {
            Ok(QueueCap(cap))
        } else {
            Err(InvalidParam::QueueCap(cap))
        }
    }

    /// The capacity in packets.
    pub fn get(self) -> u16 {
        self.0
    }

    /// True if the queue can buffer packets beyond the one in service.
    pub fn buffers(self) -> bool {
        self.0 > 1
    }
}

impl fmt::Display for QueueCap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Qmax={}", self.0)
    }
}

/// Application: packet inter-arrival time `Tpkt`, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketInterval(u32);

impl PacketInterval {
    /// Creates an inter-arrival time of `millis` milliseconds (must be > 0).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParam::PacketInterval`] if `millis` is zero.
    pub fn from_millis(millis: u32) -> Result<Self, InvalidParam> {
        if millis > 0 {
            Ok(PacketInterval(millis))
        } else {
            Err(InvalidParam::PacketInterval(millis))
        }
    }

    /// Interval in milliseconds.
    pub const fn millis(self) -> u32 {
        self.0
    }

    /// Interval in seconds (float).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Offered packet rate, in packets per second.
    pub fn rate_pps(self) -> f64 {
        1e3 / self.0 as f64
    }
}

impl fmt::Display for PacketInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tpkt={}ms", self.0)
    }
}

/// Application: packet payload size `lD`, in bytes.
///
/// Limited to 114 bytes by the TinyOS 2.1 CC2420 stack: the 802.15.4 MPDU is
/// at most 127 bytes, of which 13 are MAC header + FCS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PayloadSize(u16);

impl PayloadSize {
    /// Largest payload the reproduced stack can carry (114 bytes).
    pub const MAX: PayloadSize = PayloadSize(114);
    /// Smallest payload in the paper's grid (5 bytes).
    pub const MIN_GRID: PayloadSize = PayloadSize(5);

    /// Creates a payload size, validating `1..=114`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParam::PayloadSize`] if outside the stack limit.
    pub fn new(bytes: u16) -> Result<Self, InvalidParam> {
        if (1..=114).contains(&bytes) {
            Ok(PayloadSize(bytes))
        } else {
            Err(InvalidParam::PayloadSize(bytes))
        }
    }

    /// Payload length in bytes.
    pub fn bytes(self) -> u16 {
        self.0
    }

    /// Payload length in bits.
    pub fn bits(self) -> u32 {
        self.0 as u32 * 8
    }
}

impl fmt::Display for PayloadSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lD={}B", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_validation() {
        assert!(Distance::from_meters(35.0).is_ok());
        assert!(Distance::from_meters(0.0).is_err());
        assert!(Distance::from_meters(-3.0).is_err());
        assert!(Distance::from_meters(f64::NAN).is_err());
        assert!(Distance::from_meters(f64::INFINITY).is_err());
        assert_eq!(Distance::from_meters(20.0).unwrap().meters(), 20.0);
    }

    #[test]
    fn power_level_validation() {
        assert!(PowerLevel::new(0).is_err());
        assert!(PowerLevel::new(32).is_err());
        for lvl in [3u8, 7, 11, 15, 19, 23, 27, 31] {
            assert_eq!(PowerLevel::new(lvl).unwrap().level(), lvl);
        }
        assert_eq!(PowerLevel::MIN.level(), 1);
        assert_eq!(PowerLevel::MAX.level(), 31);
    }

    #[test]
    fn max_tries_validation() {
        assert!(MaxTries::new(0).is_err());
        assert!(!MaxTries::ONE.retransmits());
        assert!(MaxTries::new(3).unwrap().retransmits());
        assert_eq!(MaxTries::new(8).unwrap().get(), 8);
    }

    #[test]
    fn retry_delay_conversions() {
        assert_eq!(RetryDelay::ZERO.millis(), 0);
        assert_eq!(RetryDelay::from_millis(30).millis(), 30);
        assert!((RetryDelay::from_millis(100).as_secs_f64() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn queue_cap_validation() {
        assert!(QueueCap::new(0).is_err());
        assert!(!QueueCap::ONE.buffers());
        assert!(QueueCap::new(30).unwrap().buffers());
    }

    #[test]
    fn packet_interval_rates() {
        assert!(PacketInterval::from_millis(0).is_err());
        let t = PacketInterval::from_millis(30).unwrap();
        assert_eq!(t.millis(), 30);
        assert!((t.rate_pps() - 33.333).abs() < 0.01);
        assert!((t.as_secs_f64() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn payload_validation_and_bits() {
        assert!(PayloadSize::new(0).is_err());
        assert!(PayloadSize::new(115).is_err());
        assert_eq!(PayloadSize::MAX.bytes(), 114);
        assert_eq!(PayloadSize::new(110).unwrap().bits(), 880);
    }

    #[test]
    fn displays_use_paper_notation() {
        assert_eq!(PowerLevel::new(7).unwrap().to_string(), "Ptx=7");
        assert_eq!(PayloadSize::new(110).unwrap().to_string(), "lD=110B");
        assert_eq!(MaxTries::new(3).unwrap().to_string(), "NmaxTries=3");
        assert_eq!(RetryDelay::from_millis(30).to_string(), "Dretry=30ms");
        assert_eq!(QueueCap::new(30).unwrap().to_string(), "Qmax=30");
        assert_eq!(
            PacketInterval::from_millis(30).unwrap().to_string(),
            "Tpkt=30ms"
        );
        assert_eq!(Distance::from_meters(35.0).unwrap().to_string(), "35m");
    }
}
