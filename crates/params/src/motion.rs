//! Node mobility — the last factor the paper's discussion defers ("the
//! mobility of a node also [has] a possibly large impact on the
//! performance").
//!
//! A [`Trajectory`] maps simulation time to sender–receiver distance; the
//! link simulator retargets the channel before every transmission attempt,
//! so the mean RSSI follows the motion while shadowing and noise keep
//! their own dynamics. The type lives here (rather than in `wsn-radio`,
//! which re-exports it) so [`scenario`](crate::scenario) link descriptions
//! can carry a motion profile without a dependency cycle.

use serde::{Deserialize, Serialize};

use crate::types::Distance;

/// A deterministic distance-over-time profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum Trajectory {
    /// Stationary at the configuration's distance (the paper's setup).
    #[default]
    Stationary,
    /// Linear motion from `start_m` to `end_m` over `duration_s`, then
    /// holding at `end_m`.
    Linear {
        /// Distance at t = 0, meters.
        start_m: f64,
        /// Distance at `duration_s` and after, meters.
        end_m: f64,
        /// Time to cover the segment, seconds.
        duration_s: f64,
    },
    /// Back-and-forth patrol between `near_m` and `far_m` with the given
    /// one-way leg time (triangle wave).
    Patrol {
        /// Closest approach, meters.
        near_m: f64,
        /// Farthest point, meters.
        far_m: f64,
        /// One-way leg duration, seconds.
        leg_s: f64,
    },
}

impl Trajectory {
    /// A pedestrian (1.4 m/s) walking from `start_m` to `end_m`.
    ///
    /// # Panics
    ///
    /// Panics if either distance is non-positive.
    pub fn walk(start_m: f64, end_m: f64) -> Self {
        assert!(start_m > 0.0 && end_m > 0.0, "distances must be positive");
        Trajectory::Linear {
            start_m,
            end_m,
            duration_s: (end_m - start_m).abs() / 1.4,
        }
    }

    /// The distance at time `t_s` seconds, given the configured fallback
    /// distance for [`Trajectory::Stationary`].
    ///
    /// The result is clamped to at least 0.1 m so the path-loss model
    /// never sees a degenerate geometry.
    pub fn distance_at(&self, t_s: f64, configured: Distance) -> Distance {
        let meters = match *self {
            Trajectory::Stationary => configured.meters(),
            Trajectory::Linear {
                start_m,
                end_m,
                duration_s,
            } => {
                if duration_s <= 0.0 || t_s >= duration_s {
                    end_m
                } else {
                    start_m + (end_m - start_m) * (t_s / duration_s).max(0.0)
                }
            }
            Trajectory::Patrol {
                near_m,
                far_m,
                leg_s,
            } => {
                if leg_s <= 0.0 {
                    near_m
                } else {
                    let phase = (t_s / leg_s).rem_euclid(2.0);
                    let frac = if phase < 1.0 { phase } else { 2.0 - phase };
                    near_m + (far_m - near_m) * frac
                }
            }
        };
        Distance::from_meters(meters.max(0.1)).expect("clamped positive")
    }

    /// True for the paper's stationary setup (lets the simulator skip the
    /// per-attempt retarget).
    pub fn is_stationary(&self) -> bool {
        matches!(self, Trajectory::Stationary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(m: f64) -> Distance {
        Distance::from_meters(m).unwrap()
    }

    #[test]
    fn stationary_returns_configured_distance() {
        let t = Trajectory::Stationary;
        assert!(t.is_stationary());
        assert_eq!(t.distance_at(123.0, d(35.0)).meters(), 35.0);
    }

    #[test]
    fn linear_interpolates_and_holds() {
        let t = Trajectory::Linear {
            start_m: 5.0,
            end_m: 35.0,
            duration_s: 30.0,
        };
        assert_eq!(t.distance_at(0.0, d(1.0)).meters(), 5.0);
        assert_eq!(t.distance_at(15.0, d(1.0)).meters(), 20.0);
        assert_eq!(t.distance_at(30.0, d(1.0)).meters(), 35.0);
        assert_eq!(t.distance_at(100.0, d(1.0)).meters(), 35.0);
    }

    #[test]
    fn walk_uses_pedestrian_speed() {
        let t = Trajectory::walk(5.0, 33.0);
        match t {
            Trajectory::Linear { duration_s, .. } => {
                assert!((duration_s - 20.0).abs() < 1e-9);
            }
            _ => panic!("walk must be linear"),
        }
    }

    #[test]
    fn patrol_triangle_wave() {
        let t = Trajectory::Patrol {
            near_m: 10.0,
            far_m: 30.0,
            leg_s: 10.0,
        };
        assert_eq!(t.distance_at(0.0, d(1.0)).meters(), 10.0);
        assert_eq!(t.distance_at(5.0, d(1.0)).meters(), 20.0);
        assert_eq!(t.distance_at(10.0, d(1.0)).meters(), 30.0);
        assert_eq!(t.distance_at(15.0, d(1.0)).meters(), 20.0);
        assert_eq!(t.distance_at(20.0, d(1.0)).meters(), 10.0);
        // Periodic.
        assert_eq!(
            t.distance_at(25.0, d(1.0)).meters(),
            t.distance_at(5.0, d(1.0)).meters()
        );
    }

    #[test]
    fn distances_are_clamped_positive() {
        let t = Trajectory::Linear {
            start_m: 1.0,
            end_m: 0.0001,
            duration_s: 1.0,
        };
        assert!(t.distance_at(1.0, d(1.0)).meters() >= 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn walk_rejects_non_positive() {
        let _ = Trajectory::walk(0.0, 10.0);
    }
}
