//! # wsn-params
//!
//! The shared vocabulary of the reproduction of *"Experimental Study for
//! Multi-layer Parameter Configuration of WSN Links"* (Fu et al., ICDCS
//! 2015): validated newtypes for the paper's **seven stack parameters**
//! (Table I), the IEEE 802.15.4 / TinyOS 2.1 frame geometry they imply, a
//! [`StackConfig`](config::StackConfig) bundling one point of the parameter
//! space, and the [`ParamGrid`](grid::ParamGrid) that reconstructs the
//! paper's ~48k-configuration exploration grid.
//!
//! | Layer | Parameter | Type |
//! |-------|-----------|------|
//! | PHY   | distance `d` | [`types::Distance`] |
//! | PHY   | output power `Ptx` | [`types::PowerLevel`] |
//! | MAC   | max transmissions `NmaxTries` | [`types::MaxTries`] |
//! | MAC   | retry delay `Dretry` | [`types::RetryDelay`] |
//! | Queue | capacity `Qmax` | [`types::QueueCap`] |
//! | App   | inter-arrival `Tpkt` | [`types::PacketInterval`] |
//! | App   | payload `lD` | [`types::PayloadSize`] |
//!
//! ```
//! use wsn_params::prelude::*;
//!
//! let cfg = StackConfig::builder()
//!     .distance_m(35.0)
//!     .power_level(23)
//!     .payload_bytes(110)
//!     .build()?;
//! assert_eq!(cfg.frame().air_bytes(), 129);
//!
//! let grid = ParamGrid::paper();
//! assert_eq!(grid.len(), 48_384);
//! # Ok::<(), wsn_params::error::InvalidParam>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod frame;
pub mod grid;
pub mod motion;
pub mod scenario;
pub mod timeline;
pub mod types;

/// Convenient glob-import of the parameter vocabulary.
pub mod prelude {
    pub use crate::config::{StackConfig, StackConfigBuilder};
    pub use crate::error::InvalidParam;
    pub use crate::frame::FrameGeometry;
    pub use crate::grid::ParamGrid;
    pub use crate::motion::Trajectory;
    pub use crate::scenario::{LinkSpec, Position, Scenario, ScenarioBuilder};
    pub use crate::timeline::{ScenarioTimeline, TopologyAction, TopologyEvent};
    pub use crate::types::{
        Distance, MaxTries, PacketInterval, PayloadSize, PowerLevel, QueueCap, RetryDelay,
    };
}
