//! Scheduled topology dynamics: the [`ScenarioTimeline`] event stream that
//! turns a static [`Scenario`] into a dynamic network.
//!
//! The paper's study (and the first seven PRs of this reproduction) hold
//! the topology fixed while sweeping the seven stack parameters. Real
//! deployments see churn: nodes join, fail, recover, move, and change
//! transmit power. A timeline is the declarative form of that dynamism —
//! an ordered stream of [`TopologyEvent`]s the network simulator replays
//! against the scenario, applying each event between MAC transactions (an
//! in-flight frame always finishes under the neighborhood it started
//! with).
//!
//! ## Ordering contract
//!
//! Events are totally ordered by `(t_s, id)`: the timestamp first, then
//! the event id as a deterministic tiebreak. Construction
//! ([`ScenarioTimeline::new`], [`push`](ScenarioTimeline::push),
//! [`merge`](ScenarioTimeline::merge)) always normalizes to that order
//! with a *stable* sort, so events that tie on both fields keep their
//! insertion order (and merged streams keep the base stream first). Any
//! permutation of the same events therefore replays identically — the
//! property the timeline proptests pin.
//!
//! ## The compiled special case
//!
//! The pre-timeline churn fields ([`LinkSpec::join_s`] /
//! [`LinkSpec::leave_s`](crate::scenario::LinkSpec::leave_s)) are absorbed
//! by [`ScenarioTimeline::compile`]: every link contributes a `Join` at
//! its join instant (t = 0 when unset) and a `Leave` when it has one, with
//! ids assigned in the exact per-link order the pre-timeline simulator
//! seeded its events. Replaying the compiled timeline through the event
//! queue therefore reproduces the legacy event order bit-for-bit — old
//! `Scenario` construction stays source-compatible *and* byte-compatible.
//!
//! [`LinkSpec::join_s`]: crate::scenario::LinkSpec::join_s

use serde::{Deserialize, Serialize};

use crate::scenario::{Position, Scenario};
use crate::types::PowerLevel;

/// What happens to one link at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopologyAction {
    /// The link (re)starts generating traffic. A `Join` on a link that
    /// previously left clears the departed state — failure/recovery storms
    /// are `Leave` + `Join` pairs.
    Join,
    /// The link stops generating traffic; an in-flight MAC transaction
    /// still completes and the queue drains.
    Leave,
    /// The link's endpoints move: cross-link gains are recomputed
    /// incrementally (sparse neighborhoods only), and the link's own
    /// budget retargets to the new sender–receiver distance.
    Move {
        /// New sender position.
        sender: Position,
        /// New receiver position.
        receiver: Position,
    },
    /// The link's transmit power changes; its outgoing interference and
    /// carrier-sense footprints are recomputed.
    PowerChange {
        /// New CC2420 power level (1–31).
        power_level: u8,
    },
}

/// One scheduled topology event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyEvent {
    /// Seconds after scenario start.
    pub t_s: f64,
    /// Index of the affected link in the scenario.
    pub link: u32,
    /// Deterministic tiebreak for events sharing a timestamp. Ids need not
    /// be unique across merged streams; full `(t_s, id)` ties keep
    /// insertion (base-before-merged) order.
    pub id: u64,
    /// The action applied at `t_s`.
    pub action: TopologyAction,
}

/// An ordered stream of scheduled topology events over a [`Scenario`].
///
/// ```
/// use wsn_params::scenario::Position;
/// use wsn_params::timeline::{ScenarioTimeline, TopologyAction, TopologyEvent};
///
/// let timeline = ScenarioTimeline::new(vec![
///     TopologyEvent { t_s: 10.0, link: 1, id: 1, action: TopologyAction::Leave },
///     TopologyEvent { t_s: 10.0, link: 0, id: 0, action: TopologyAction::Leave },
///     TopologyEvent {
///         t_s: 20.0,
///         link: 1,
///         id: 2,
///         action: TopologyAction::Join,
///     },
/// ]);
/// // Normalized to (t_s, id) order regardless of construction order.
/// assert_eq!(timeline.events()[0].link, 0);
/// assert_eq!(timeline.end_s(), 20.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScenarioTimeline {
    events: Vec<TopologyEvent>,
}

impl ScenarioTimeline {
    /// A timeline from arbitrary events, normalized to `(t_s, id)` order.
    pub fn new(mut events: Vec<TopologyEvent>) -> Self {
        sort_events(&mut events);
        ScenarioTimeline { events }
    }

    /// An empty timeline.
    pub fn empty() -> Self {
        ScenarioTimeline::default()
    }

    /// Appends one event, keeping the stream ordered.
    pub fn push(&mut self, event: TopologyEvent) {
        self.events.push(event);
        sort_events(&mut self.events);
    }

    /// The events in replay order.
    pub fn events(&self) -> &[TopologyEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the timeline has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Timestamp of the last event, seconds (0 for an empty timeline).
    pub fn end_s(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.t_s)
    }

    /// Compiles a scenario's legacy churn fields (`join_s` / `leave_s`)
    /// into an explicit timeline.
    ///
    /// Ids are assigned in the per-link interleaved order the pre-timeline
    /// simulator seeded its churn events (link 0's join, link 0's leave,
    /// link 1's join, …), which is exactly what makes the replay of a
    /// compiled timeline bit-identical to the legacy path: sorting by
    /// `(t_s, id)` reproduces the legacy event-queue pop order, ties
    /// included.
    pub fn compile(scenario: &Scenario) -> Self {
        let mut events = Vec::with_capacity(scenario.len());
        let mut id = 0u64;
        for (i, spec) in scenario.links.iter().enumerate() {
            events.push(TopologyEvent {
                t_s: spec.join_s.unwrap_or(0.0),
                link: i as u32,
                id,
                action: TopologyAction::Join,
            });
            id += 1;
            if let Some(leave_s) = spec.leave_s {
                events.push(TopologyEvent {
                    t_s: leave_s,
                    link: i as u32,
                    id,
                    action: TopologyAction::Leave,
                });
                id += 1;
            }
        }
        ScenarioTimeline::new(events)
    }

    /// Merges two timelines into one ordered stream. On full `(t_s, id)`
    /// ties, `self`'s events replay before `other`'s (stable sort over the
    /// concatenation).
    pub fn merge(&self, other: &ScenarioTimeline) -> ScenarioTimeline {
        let mut events = Vec::with_capacity(self.events.len() + other.events.len());
        events.extend_from_slice(&self.events);
        events.extend_from_slice(&other.events);
        ScenarioTimeline::new(events)
    }

    /// Checks the timeline against a scenario of `n_links` links: every
    /// event must target an existing link, carry a finite non-negative
    /// timestamp, and (for `PowerChange`) a valid power level.
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending event.
    pub fn validate(&self, n_links: usize) -> Result<(), String> {
        for e in &self.events {
            if !(e.t_s.is_finite() && e.t_s >= 0.0) {
                return Err(format!("event id {} has invalid timestamp {}", e.id, e.t_s));
            }
            if e.link as usize >= n_links {
                return Err(format!(
                    "event id {} targets link {} but the scenario has {} links",
                    e.id, e.link, n_links
                ));
            }
            if let TopologyAction::PowerChange { power_level } = e.action {
                if PowerLevel::new(power_level).is_err() {
                    return Err(format!(
                        "event id {} has invalid power level {power_level}",
                        e.id
                    ));
                }
            }
        }
        Ok(())
    }

    /// A canonical 64-bit digest over the normalized event stream.
    ///
    /// Two timelines digest equal iff their normalized streams are
    /// identical (timestamps compared by bit pattern), which is what lets
    /// a response cache partition scenario keys by dynamics: the empty /
    /// absent timeline never collides with a non-empty one, and inline
    /// events equal to a catalog timeline share its partition.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-64 offset basis
        let mut mix = |v: u64| {
            h ^= v;
            h = splitmix64(h);
        };
        mix(self.events.len() as u64);
        for e in &self.events {
            mix(e.t_s.to_bits());
            mix(e.link as u64);
            mix(e.id);
            match e.action {
                TopologyAction::Join => mix(1),
                TopologyAction::Leave => mix(2),
                TopologyAction::Move { sender, receiver } => {
                    mix(3);
                    mix(sender.x_m.to_bits());
                    mix(sender.y_m.to_bits());
                    mix(receiver.x_m.to_bits());
                    mix(receiver.y_m.to_bits());
                }
                TopologyAction::PowerChange { power_level } => {
                    mix(4);
                    mix(power_level as u64);
                }
            }
        }
        h
    }
}

/// Stable `(t_s, id)` normalization; `total_cmp` keeps the order total
/// even for pathological float inputs.
fn sort_events(events: &mut [TopologyEvent]) {
    events.sort_by(|a, b| a.t_s.total_cmp(&b.t_s).then_with(|| a.id.cmp(&b.id)));
}

/// SplitMix64 finalizer chain, duplicated here (three multiply-xor lines)
/// rather than taking a dependency on `wsn-sim-engine` from the bottom of
/// the crate graph.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny deterministic generator for the synthetic-timeline builders —
/// SplitMix64 iterated over a counter, which is all the quality a topology
/// generator needs and keeps `wsn-params` free of the `rand` dependency.
struct GenRng {
    state: u64,
}

impl GenRng {
    fn new(seed: u64) -> Self {
        GenRng {
            state: splitmix64(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    fn next_index(&mut self, n: usize) -> usize {
        (self.next_f64() * n as f64) as usize % n.max(1)
    }
}

/// A seeded failure/recovery storm: a random `fraction` of the links
/// leaves at `t_fail_s` and rejoins at `t_recover_s` (à la the add/remove
/// 20 %-of-nodes experiments of the dynamic-network literature — turn a
/// subset off, then turn it back on).
///
/// At least one link fails whenever `fraction > 0` and `n_links > 0`. The
/// failing subset is a seeded Fisher–Yates prefix, so the same
/// `(n_links, fraction, seed)` triple always storms the same links.
pub fn failure_storm(
    n_links: usize,
    fraction: f64,
    t_fail_s: f64,
    t_recover_s: f64,
    seed: u64,
) -> ScenarioTimeline {
    let fraction = fraction.clamp(0.0, 1.0);
    let k = ((n_links as f64 * fraction).round() as usize)
        .clamp(usize::from(fraction > 0.0 && n_links > 0), n_links);
    let mut order: Vec<u32> = (0..n_links as u32).collect();
    let mut rng = GenRng::new(seed);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.next_index(i + 1));
    }
    let mut events = Vec::with_capacity(2 * k);
    let mut id = 0u64;
    for &link in order.iter().take(k) {
        events.push(TopologyEvent {
            t_s: t_fail_s,
            link,
            id,
            action: TopologyAction::Leave,
        });
        id += 1;
        events.push(TopologyEvent {
            t_s: t_recover_s,
            link,
            id,
            action: TopologyAction::Join,
        });
        id += 1;
    }
    ScenarioTimeline::new(events)
}

/// A random-waypoint fleet over the scenario's links: each sender–receiver
/// pair translates rigidly (a vehicle carrying both nodes) towards
/// uniformly random waypoints in the `area_m × area_m` square at
/// `speed_mps`, and every `epoch_s` a `Move` event publishes the pair's
/// new position.
///
/// Rigid translation keeps each link's *own* distance — and therefore its
/// own link budget — constant; what changes is every cross-link gain.
/// Per-link own-budget motion stays the province of
/// [`Trajectory`](crate::motion::Trajectory) (see [`from_trajectories`]),
/// and the two compose: the simulator retargets the own budget from the
/// trajectory and the cross gains from the `Move` stream.
pub fn random_waypoint(
    scenario: &Scenario,
    area_m: f64,
    speed_mps: f64,
    epoch_s: f64,
    duration_s: f64,
    seed: u64,
) -> ScenarioTimeline {
    assert!(epoch_s > 0.0, "epoch must be positive");
    assert!(speed_mps >= 0.0, "speed must be non-negative");
    let mut rng = GenRng::new(seed);
    let n = scenario.len();
    let mut pos: Vec<Position> = scenario.links.iter().map(|l| l.sender).collect();
    let offsets: Vec<(f64, f64)> = scenario
        .links
        .iter()
        .map(|l| (l.receiver.x_m - l.sender.x_m, l.receiver.y_m - l.sender.y_m))
        .collect();
    let mut target: Vec<Position> = (0..n)
        .map(|_| Position::new(rng.next_f64() * area_m, rng.next_f64() * area_m))
        .collect();

    let epochs = (duration_s / epoch_s).floor() as usize;
    let mut events = Vec::with_capacity(epochs * n);
    let mut id = 0u64;
    for step in 1..=epochs {
        let t_s = step as f64 * epoch_s;
        for link in 0..n {
            // Walk the remaining leg budget of this epoch, re-picking
            // waypoints as they are reached.
            let mut remaining = speed_mps * epoch_s;
            while remaining > 0.0 {
                let dx = target[link].x_m - pos[link].x_m;
                let dy = target[link].y_m - pos[link].y_m;
                let dist = dx.hypot(dy);
                if dist <= remaining {
                    pos[link] = target[link];
                    remaining -= dist;
                    target[link] = Position::new(rng.next_f64() * area_m, rng.next_f64() * area_m);
                    if dist == 0.0 {
                        break;
                    }
                } else {
                    let f = remaining / dist;
                    pos[link] = Position::new(pos[link].x_m + dx * f, pos[link].y_m + dy * f);
                    remaining = 0.0;
                }
            }
            let (ox, oy) = offsets[link];
            events.push(TopologyEvent {
                t_s,
                link: link as u32,
                id,
                action: TopologyAction::Move {
                    sender: pos[link],
                    receiver: Position::new(pos[link].x_m + ox, pos[link].y_m + oy),
                },
            });
            id += 1;
        }
    }
    ScenarioTimeline::new(events)
}

/// Samples every link's [`Trajectory`](crate::motion::Trajectory) at epoch
/// boundaries and emits `Move` events that slide the receiver along the
/// link axis to the sampled distance — the bridge from the legacy
/// own-budget motion model to timeline-driven cross-link gains.
///
/// Stationary links emit nothing, so a trajectory-free scenario compiles
/// to an empty timeline and the static path stays untouched.
pub fn from_trajectories(scenario: &Scenario, epoch_s: f64, duration_s: f64) -> ScenarioTimeline {
    assert!(epoch_s > 0.0, "epoch must be positive");
    let epochs = (duration_s / epoch_s).floor() as usize;
    let mut events = Vec::new();
    let mut id = 0u64;
    for step in 1..=epochs {
        let t_s = step as f64 * epoch_s;
        for (link, spec) in scenario.links.iter().enumerate() {
            if spec.trajectory.is_stationary() {
                continue;
            }
            let d = spec
                .trajectory
                .distance_at(t_s, spec.config.distance)
                .meters();
            // Unit vector of the link axis (x̂ for coincident endpoints).
            let dx = spec.receiver.x_m - spec.sender.x_m;
            let dy = spec.receiver.y_m - spec.sender.y_m;
            let len = dx.hypot(dy);
            let (ux, uy) = if len > 0.0 {
                (dx / len, dy / len)
            } else {
                (1.0, 0.0)
            };
            events.push(TopologyEvent {
                t_s,
                link: link as u32,
                id,
                action: TopologyAction::Move {
                    sender: spec.sender,
                    receiver: Position::new(spec.sender.x_m + ux * d, spec.sender.y_m + uy * d),
                },
            });
            id += 1;
        }
    }
    ScenarioTimeline::new(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StackConfig;
    use crate::motion::Trajectory;
    use crate::scenario::Scenario;

    fn cfg() -> StackConfig {
        StackConfig::builder()
            .distance_m(20.0)
            .power_level(31)
            .payload_bytes(50)
            .build()
            .unwrap()
    }

    #[test]
    fn events_normalize_to_time_then_id_order() {
        let t = ScenarioTimeline::new(vec![
            TopologyEvent {
                t_s: 5.0,
                link: 0,
                id: 7,
                action: TopologyAction::Leave,
            },
            TopologyEvent {
                t_s: 5.0,
                link: 1,
                id: 2,
                action: TopologyAction::Join,
            },
            TopologyEvent {
                t_s: 1.0,
                link: 2,
                id: 9,
                action: TopologyAction::Join,
            },
        ]);
        let ids: Vec<u64> = t.events().iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![9, 2, 7]);
        assert_eq!(t.end_s(), 5.0);
    }

    #[test]
    fn compile_absorbs_join_and_leave_in_seed_order() {
        let mut s = Scenario::parallel(&[cfg(), cfg(), cfg()], 2.0);
        s.links[1] = s.links[1].joining_at(5.0).leaving_at(10.0);
        let t = ScenarioTimeline::compile(&s);
        // Joins for links 0 and 2 at t = 0 (ids 0 and 3), link 1's join at
        // 5 s (id 1) and leave at 10 s (id 2).
        let shape: Vec<(f64, u32, u64)> =
            t.events().iter().map(|e| (e.t_s, e.link, e.id)).collect();
        assert_eq!(
            shape,
            vec![(0.0, 0, 0), (0.0, 2, 3), (5.0, 1, 1), (10.0, 1, 2)]
        );
        assert!(matches!(t.events()[3].action, TopologyAction::Leave));
    }

    #[test]
    fn churn_free_scenario_compiles_to_pure_joins_at_zero() {
        let s = Scenario::parallel(&[cfg(), cfg()], 2.0);
        let t = ScenarioTimeline::compile(&s);
        assert_eq!(t.len(), 2);
        assert!(t
            .events()
            .iter()
            .all(|e| e.t_s == 0.0 && matches!(e.action, TopologyAction::Join)));
    }

    #[test]
    fn merge_is_ordered_and_stable() {
        let base = ScenarioTimeline::new(vec![TopologyEvent {
            t_s: 1.0,
            link: 0,
            id: 0,
            action: TopologyAction::Join,
        }]);
        let extra = ScenarioTimeline::new(vec![TopologyEvent {
            t_s: 1.0,
            link: 1,
            id: 0,
            action: TopologyAction::Leave,
        }]);
        let merged = base.merge(&extra);
        assert_eq!(merged.len(), 2);
        // Full tie on (t_s, id): the base stream replays first.
        assert_eq!(merged.events()[0].link, 0);
        assert_eq!(merged.events()[1].link, 1);
    }

    #[test]
    fn validate_rejects_bad_links_times_and_power() {
        let ok = ScenarioTimeline::new(vec![TopologyEvent {
            t_s: 1.0,
            link: 1,
            id: 0,
            action: TopologyAction::PowerChange { power_level: 7 },
        }]);
        assert!(ok.validate(2).is_ok());
        assert!(ok.validate(1).is_err());

        let bad_t = ScenarioTimeline::new(vec![TopologyEvent {
            t_s: -1.0,
            link: 0,
            id: 0,
            action: TopologyAction::Join,
        }]);
        assert!(bad_t.validate(1).is_err());

        let bad_p = ScenarioTimeline::new(vec![TopologyEvent {
            t_s: 0.0,
            link: 0,
            id: 0,
            action: TopologyAction::PowerChange { power_level: 99 },
        }]);
        assert!(bad_p.validate(1).is_err());
    }

    #[test]
    fn digest_separates_timelines_and_ignores_input_order() {
        let a = TopologyEvent {
            t_s: 1.0,
            link: 0,
            id: 0,
            action: TopologyAction::Join,
        };
        let b = TopologyEvent {
            t_s: 2.0,
            link: 1,
            id: 1,
            action: TopologyAction::Leave,
        };
        let fwd = ScenarioTimeline::new(vec![a, b]);
        let rev = ScenarioTimeline::new(vec![b, a]);
        assert_eq!(fwd.digest(), rev.digest());
        assert_ne!(fwd.digest(), ScenarioTimeline::empty().digest());
        let mut moved = fwd.clone();
        moved.push(TopologyEvent {
            t_s: 3.0,
            link: 0,
            id: 2,
            action: TopologyAction::Move {
                sender: Position::new(1.0, 2.0),
                receiver: Position::new(3.0, 4.0),
            },
        });
        assert_ne!(moved.digest(), fwd.digest());
    }

    #[test]
    fn failure_storm_pairs_leaves_with_rejoins() {
        let t = failure_storm(20, 0.2, 8.0, 16.0, 42);
        let leaves: Vec<u32> = t
            .events()
            .iter()
            .filter(|e| matches!(e.action, TopologyAction::Leave))
            .map(|e| e.link)
            .collect();
        let joins: Vec<u32> = t
            .events()
            .iter()
            .filter(|e| matches!(e.action, TopologyAction::Join))
            .map(|e| e.link)
            .collect();
        assert_eq!(leaves.len(), 4, "20% of 20 links");
        assert_eq!(
            {
                let mut l = leaves.clone();
                l.sort_unstable();
                l
            },
            {
                let mut j = joins;
                j.sort_unstable();
                j
            },
            "every failed link recovers"
        );
        assert!(t.events().iter().all(|e| e.t_s == 8.0 || e.t_s == 16.0));
        // Seeded: same inputs, same storm; different seed, different subset.
        assert_eq!(t, failure_storm(20, 0.2, 8.0, 16.0, 42));
        assert_ne!(t, failure_storm(20, 0.2, 8.0, 16.0, 43));
        // A tiny fraction still fails at least one link.
        assert!(!failure_storm(3, 0.05, 1.0, 2.0, 1).is_empty());
    }

    #[test]
    fn random_waypoint_moves_pairs_rigidly_inside_the_area() {
        let s = Scenario::grid(cfg(), 9, 25.0);
        let t = random_waypoint(&s, 60.0, 1.4, 1.0, 10.0, 7);
        assert_eq!(t.len(), 9 * 10, "one Move per link per epoch");
        for e in t.events() {
            let TopologyAction::Move { sender, receiver } = e.action else {
                panic!("waypoint timelines contain only moves");
            };
            assert!((0.0..=60.0).contains(&sender.x_m) && (0.0..=60.0).contains(&sender.y_m));
            let own = sender.distance_m(&receiver);
            let configured = s.links[e.link as usize]
                .sender
                .distance_m(&s.links[e.link as usize].receiver);
            assert!(
                (own - configured).abs() < 1e-9,
                "rigid translation preserves the own distance"
            );
        }
        assert_eq!(t, random_waypoint(&s, 60.0, 1.4, 1.0, 10.0, 7));
    }

    #[test]
    fn from_trajectories_tracks_the_motion_profile() {
        let mut s = Scenario::parallel(&[cfg(), cfg()], 2.0);
        s.links[1].trajectory = Trajectory::Linear {
            start_m: 10.0,
            end_m: 30.0,
            duration_s: 10.0,
        };
        let t = from_trajectories(&s, 1.0, 10.0);
        // Only the moving link emits events.
        assert!(t.events().iter().all(|e| e.link == 1));
        assert_eq!(t.len(), 10);
        let TopologyAction::Move { sender, receiver } = t.events()[4].action else {
            panic!("move expected");
        };
        // At t = 5 s the linear profile is halfway: 20 m.
        assert!((sender.distance_m(&receiver) - 20.0).abs() < 1e-9);
        assert!(from_trajectories(&s, 1.0, 0.5).is_empty());
    }

    #[test]
    fn timeline_serde_round_trips() {
        let s = Scenario::grid(cfg(), 4, 25.0);
        let t =
            failure_storm(4, 0.5, 2.0, 4.0, 9).merge(&random_waypoint(&s, 50.0, 1.0, 1.0, 3.0, 9));
        let json = serde_json::to_string(&t).unwrap();
        let back: ScenarioTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.digest(), t.digest());
    }
}
