//! The execution engine: turns a parsed request body into a serialized
//! `result` JSON string, consulting the sharded result cache first.
//!
//! The engine owns exactly the shared state every worker needs — one
//! [`LinkBudgetTable`] (so concurrent simulations share the memoized
//! link-budget arithmetic from the campaign runner), one [`Optimizer`],
//! one [`ShardedCache`], one [`ServeStats`] — and no per-connection
//! state, so a single `Arc<Engine>` fans out to the whole pool.
//!
//! Caching contract: the cache stores the *serialized result string*, and
//! the envelope splices it in verbatim, so a repeat request returns a
//! byte-identical `result` by construction — there is no re-serialization
//! step that could reorder fields or reformat floats. Error results and
//! live ops (`stats`, `shutdown`) are never cached.

use std::sync::Arc;
use std::time::Instant;

use wsn_analytic::table::AnalyticTable;
use wsn_analytic::{AnalyticLinkSimulation, AnalyticOutcome, AnalyticReport};
use wsn_link_sim::catalog::{all_scenarios, build_scenario};
use wsn_link_sim::fast::FastLinkSimulation;
use wsn_link_sim::metrics::LinkMetrics;
use wsn_link_sim::network::{AirStats, NetOptions, NetworkSimulation, TopoStats};
use wsn_link_sim::simulation::{LinkSimulation, SimOptions};
use wsn_link_sim::traffic::TrafficModel;
use wsn_models::explore::explore_grid;
use wsn_models::optimize::{knee_of_front, pareto_front_indices, Metric, Optimizer};
use wsn_models::predict::{LinkBudget, Predicted};
use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;
use wsn_params::types::Distance;
use wsn_radio::budget::LinkBudgetTable;
use wsn_radio::channel::ChannelConfig;
use wsn_sim_engine::mode::EngineMode;

use serde::Serialize;

use crate::cache::ShardedCache;
use crate::protocol::{cache_key, metric_name, ErrCode, Profile, RequestBody, TimelineSpec};
use crate::stats::ServeStats;
use crate::store::Store;

/// A failed execution: the stable machine-readable code for the error
/// envelope plus the human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// The envelope's `"code"`.
    pub code: ErrCode,
    /// The envelope's `"error"`.
    pub message: String,
}

impl ExecError {
    /// The request was semantically wrong (unknown scenario, infeasible
    /// constraints, out-of-domain parameter).
    fn bad_request(message: String) -> Self {
        ExecError {
            code: ErrCode::BadRequest,
            message,
        }
    }

    /// The request's deadline expired mid-scan.
    fn deadline(scanned: u64) -> Self {
        ExecError {
            code: ErrCode::Deadline,
            message: format!("deadline expired after {scanned} candidate evaluations"),
        }
    }

    /// The server failed on its own (serialization) — never the
    /// client's fault.
    fn internal(message: String) -> Self {
        ExecError {
            code: ErrCode::Internal,
            message,
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The shared request executor.
#[derive(Debug)]
pub struct Engine {
    /// Memoized link budgets shared by every worker's simulations.
    budgets: Arc<LinkBudgetTable>,
    /// Memoized closed-form evaluations for the analytic engine mode,
    /// pinned to the same channel as `budgets`.
    analytic: Arc<AnalyticTable>,
    /// The golden closed-form optimizer/predictor (paper constants).
    optimizer: Optimizer,
    /// Case-study counterparts (Sec. VIII-C: the shadowed channel),
    /// powering `"profile":"case-study"` requests. Separate tables are
    /// required because each memo is pinned to one channel.
    budgets_cs: Arc<LinkBudgetTable>,
    /// Closed-form memo on the case-study channel.
    analytic_cs: Arc<AnalyticTable>,
    /// The golden optimizer on the case-study link budget.
    optimizer_cs: Optimizer,
    /// The in-memory result cache (tier 1).
    pub cache: ShardedCache,
    /// The optional persistent result store (tier 2).
    store: Option<Arc<Store>>,
    /// Service counters.
    pub stats: ServeStats,
}

/// How many candidate evaluations a grid scan runs between deadline
/// checks. Analytic memo hits cost ~100 ns and golden predictions ~1 µs,
/// so this stride bounds the overshoot past an expired deadline to well
/// under a millisecond while keeping `Instant::now` off the hot path.
const DEADLINE_STRIDE: u64 = 64;

/// A cooperative deadline for long grid scans: counts candidate
/// evaluations and fails with [`ErrCode::Deadline`] once the wall clock
/// passes the request's deadline. `None` never fires, so undeadlined
/// requests pay only the counter increment.
struct ScanDeadline {
    deadline: Option<Instant>,
    scanned: u64,
}

impl ScanDeadline {
    fn new(deadline: Option<Instant>) -> Self {
        ScanDeadline {
            deadline,
            scanned: 0,
        }
    }

    /// Counts one candidate evaluation; errs when the deadline has
    /// passed (checked every [`DEADLINE_STRIDE`] evaluations).
    fn tick(&mut self) -> Result<(), ExecError> {
        self.scanned += 1;
        if self.scanned.is_multiple_of(DEADLINE_STRIDE) {
            if let Some(deadline) = self.deadline {
                if Instant::now() > deadline {
                    return Err(ExecError::deadline(self.scanned));
                }
            }
        }
        Ok(())
    }
}

/// How a request was answered: the serialized `result` body, and whether
/// it came from the cache.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The serialized result JSON, shared with the cache.
    pub body: Arc<String>,
    /// True when served from the cache.
    pub cached: bool,
}

#[derive(Serialize)]
struct SimulateResult {
    config: StackConfig,
    packets: u64,
    seed: u64,
    engine: String,
    metrics: LinkMetrics,
}

#[derive(Serialize)]
struct PredictResult {
    config: StackConfig,
    predicted: Predicted,
}

/// The `predict` result under `"engine":"analytic"`: the full simulated
/// metric set from the M/G/1 closed-form engine plus its diagnostic
/// report, at the default query scale (golden predict keeps its own
/// historical [`PredictResult`] shape, byte-identical to before).
#[derive(Serialize)]
struct AnalyticPredictResult {
    config: StackConfig,
    engine: String,
    packets: u64,
    metrics: LinkMetrics,
    report: AnalyticReport,
}

/// The analytic pre-scan block of a `tune` result: winner metrics and
/// diagnostics plus how many candidates the scan ranked. Only the
/// analytic result shape carries it, so golden/fast tune bodies stay
/// byte-identical to the pre-analytic format.
#[derive(Serialize)]
struct AnalyticTuneDetail {
    candidates_ranked: u64,
    metrics: LinkMetrics,
    report: AnalyticReport,
}

#[derive(Serialize)]
struct ConstraintEcho {
    metric: String,
    max: f64,
}

#[derive(Serialize)]
struct TuneResult {
    objective: String,
    constraints: Vec<ConstraintEcho>,
    grid_configs: u64,
    engine: String,
    config: StackConfig,
    predicted: Predicted,
    /// Fast-engine check of the predicted winner: present when the
    /// request asked for `"engine":"fast"`, `null` on the (default)
    /// predictor-only golden answer.
    simulated: Option<LinkMetrics>,
}

/// The `tune` result under `"engine":"analytic"`: the [`TuneResult`]
/// fields plus the pre-scan detail (the vendored serde_derive has no
/// `skip_serializing_if`, so a distinct shape — rather than an optional
/// field — is what keeps golden/fast bodies byte-identical).
#[derive(Serialize)]
struct AnalyticTuneResult {
    objective: String,
    constraints: Vec<ConstraintEcho>,
    grid_configs: u64,
    engine: String,
    config: StackConfig,
    predicted: Predicted,
    /// The fast-engine cross-check of the pre-scan winner (the only
    /// candidate that is re-simulated).
    simulated: Option<LinkMetrics>,
    analytic: AnalyticTuneDetail,
}

/// One non-dominated configuration of a `pareto` result. `values` line up
/// with the request's metric order, in display sense (goodput positive).
#[derive(Serialize, Clone)]
struct FrontMember {
    config: StackConfig,
    values: Vec<f64>,
}

/// The Pareto front of one grid distance, sorted by the first metric
/// (minimization sense), plus the chord-rule knee when the front is
/// two-dimensional with at least 3 points.
#[derive(Serialize)]
struct DistanceFront {
    distance_m: f64,
    front: Vec<FrontMember>,
    knee: Option<FrontMember>,
}

#[derive(Serialize)]
struct ParetoResult {
    metrics: Vec<String>,
    engine: String,
    profile: String,
    grid_configs: u64,
    distances: Vec<DistanceFront>,
}

/// How an `explore` budget was spent across the three search phases.
#[derive(Serialize)]
struct ExploreStrategy {
    swept: u64,
    refined: u64,
    local: u64,
}

/// The `explore` result under the golden predictor: the winner and its
/// closed-form prediction.
#[derive(Serialize)]
struct ExploreResult {
    objective: String,
    constraints: Vec<ConstraintEcho>,
    budget: u64,
    evaluations: u64,
    grid_configs: u64,
    engine: String,
    profile: String,
    strategy: ExploreStrategy,
    config: StackConfig,
    /// The winner's objective in display sense (goodput positive).
    objective_value: f64,
    predicted: Predicted,
}

/// The `explore` result under the analytic/fast backends: the winner and
/// the full metric set from the engine that scored it (a distinct shape —
/// the vendored serde_derive has no `skip_serializing_if`).
#[derive(Serialize)]
struct ExploreSimResult {
    objective: String,
    constraints: Vec<ConstraintEcho>,
    budget: u64,
    evaluations: u64,
    grid_configs: u64,
    engine: String,
    profile: String,
    strategy: ExploreStrategy,
    config: StackConfig,
    /// The winner's objective in display sense (goodput positive).
    objective_value: f64,
    metrics: LinkMetrics,
}

#[derive(Serialize)]
struct ScenarioLinkResult {
    config: StackConfig,
    metrics: LinkMetrics,
    frames_interfered: u64,
    frames_capture_lost: u64,
}

#[derive(Serialize)]
struct ScenarioResult {
    scenario: String,
    description: String,
    packets: u64,
    seed: u64,
    links: Vec<ScenarioLinkResult>,
    air: AirStats,
    plr_radio: f64,
    goodput_bps: f64,
}

/// The `scenario` result when a `timeline` rode along: the
/// [`ScenarioResult`] fields plus the timeline's canonical digest (the
/// same value that partitions the cache key) and the replayed topology
/// counters. A distinct shape — not optional fields — keeps static
/// scenario bodies byte-identical to the pre-timeline format (the
/// vendored serde_derive has no `skip_serializing_if`).
#[derive(Serialize)]
struct TimelineScenarioResult {
    scenario: String,
    description: String,
    packets: u64,
    seed: u64,
    timeline_digest: String,
    topo: TopoStats,
    links: Vec<ScenarioLinkResult>,
    air: AirStats,
    plr_radio: f64,
    goodput_bps: f64,
}

/// The memory tier of a `cache` op result.
#[derive(Serialize)]
struct CacheTierMem {
    entries: u64,
    hits: u64,
    misses: u64,
    hit_rate: f64,
    evictions: u64,
}

/// The disk tier of a `cache` op result. All-zero with `enabled:false`
/// when the server runs without `--store`.
#[derive(Serialize)]
struct CacheTierDisk {
    enabled: bool,
    records: u64,
    segments: u64,
    bytes: u64,
    hits: u64,
    misses: u64,
    appends: u64,
}

/// What the `cache` op returns.
#[derive(Serialize)]
struct CacheOpResult {
    mem: CacheTierMem,
    disk: CacheTierDisk,
    flushed: bool,
    flushed_entries: u64,
}

/// Serializes the result body a `simulate` request for this exact
/// (`config`, `packets`, `seed`, `engine`) tuple would produce from
/// `metrics` — the warm-from-campaign path. Byte-identity with a live
/// answer is by construction: same struct, same serializer.
///
/// # Errors
///
/// Returns the serializer's message (practically unreachable).
pub fn simulate_result_body(
    config: &StackConfig,
    packets: u64,
    seed: u64,
    engine: EngineMode,
    metrics: &LinkMetrics,
) -> Result<String, String> {
    serde_json::to_string(&SimulateResult {
        config: *config,
        packets,
        seed,
        engine: engine.name().to_string(),
        metrics: metrics.clone(),
    })
    .map_err(|e| e.to_string())
}

/// A [`Metric`]'s value read from simulated/analytic [`LinkMetrics`], in
/// the same minimization sense as [`Metric::value`] on a prediction
/// (goodput negated so smaller is always better). Infeasible operating
/// points surface as `INFINITY` (energy with zero delivery) and are
/// filtered by the caller's finiteness check.
fn link_metric_value(metric: Metric, m: &LinkMetrics) -> f64 {
    match metric {
        Metric::Energy => m.u_eng_uj_per_bit,
        Metric::Goodput => -m.goodput_bps,
        Metric::Delay => m.delay_mean_ms,
        Metric::Loss => m.plr_total(),
    }
}

/// Converts a minimization-sense value back to display sense (goodput is
/// internally negated so smaller-is-better holds uniformly).
fn display_value(metric: Metric, value: f64) -> f64 {
    match metric {
        Metric::Goodput => -value,
        _ => value,
    }
}

/// The constraint echo block shared by `tune`/`explore` result bodies,
/// in request order.
fn constraint_echo(constraints: &[(Metric, f64)]) -> Vec<ConstraintEcho> {
    constraints
        .iter()
        .map(|(m, max)| ConstraintEcho {
            metric: metric_name(*m).to_string(),
            max: *max,
        })
        .collect()
}

impl Engine {
    /// An engine on the paper's hallway channel with a `shards`-way result
    /// cache.
    pub fn new(shards: usize) -> Self {
        let channel = ChannelConfig::paper_hallway();
        let channel_cs = ChannelConfig::case_study();
        let mut optimizer_cs = Optimizer::paper();
        optimizer_cs.predictor.budget = LinkBudget::case_study();
        Engine {
            budgets: Arc::new(LinkBudgetTable::new(channel)),
            analytic: Arc::new(AnalyticTable::new(channel)),
            optimizer: Optimizer::paper(),
            budgets_cs: Arc::new(LinkBudgetTable::new(channel_cs)),
            analytic_cs: Arc::new(AnalyticTable::new(channel_cs)),
            optimizer_cs,
            cache: ShardedCache::new(shards),
            store: None,
            stats: ServeStats::new(),
        }
    }

    /// Attaches a persistent store as the cache's second tier: memory
    /// misses fall through to disk (promoting hits back to memory), and
    /// freshly computed results are appended for the next restart.
    #[must_use]
    pub fn with_store(mut self, store: Store) -> Self {
        self.store = Some(Arc::new(store));
        self
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_deref()
    }

    /// Installs `body` as the answer for `key` in both tiers — the
    /// warm-from-campaign path. The memory tier always learns the entry;
    /// the disk tier is only appended when it does not already hold the
    /// key, so re-warming from the same campaign is idempotent on disk.
    ///
    /// # Errors
    ///
    /// Propagates store append failures.
    pub fn warm_insert(&self, key: &str, body: &str) -> std::io::Result<()> {
        if let Some(store) = &self.store {
            if store.get(key).is_none() {
                store.append(key, body)?;
            }
        }
        self.cache
            .insert(key.to_string(), Arc::new(body.to_string()));
        Ok(())
    }

    /// Executes `body`, serving from the cache when the canonical key has
    /// been answered before.
    ///
    /// # Errors
    ///
    /// Returns the error message for the client (`unknown scenario`,
    /// `no feasible configuration`, …). Errors are never cached, so a
    /// query that fails for transient semantic reasons (e.g. a tune that
    /// becomes feasible after loosening a constraint) is recomputed.
    pub fn execute(&self, body: &RequestBody) -> Result<Answer, ExecError> {
        self.execute_with_deadline(body, None)
    }

    /// [`Engine::execute`] under a cooperative deadline: long grid scans
    /// (`tune`, `pareto`, `explore`) check the clock between candidate
    /// evaluations and abort with [`ErrCode::Deadline`] instead of
    /// burning a worker past the client's patience. Cache hits ignore the
    /// deadline — a stored answer is free.
    ///
    /// # Errors
    ///
    /// As [`Engine::execute`], plus the `deadline` code on expiry.
    pub fn execute_with_deadline(
        &self,
        body: &RequestBody,
        deadline: Option<Instant>,
    ) -> Result<Answer, ExecError> {
        let key = cache_key(body);
        if let Some(key) = &key {
            if let Some(hit) = self.cache.get(key) {
                return Ok(Answer {
                    body: hit,
                    cached: true,
                });
            }
            // Memory miss: consult the disk tier, promoting a hit back
            // into memory so the next lookup is one hash probe again.
            if let Some(store) = &self.store {
                if let Some(hit) = store.get(key) {
                    let hit = Arc::new(hit);
                    self.cache.insert(key.clone(), Arc::clone(&hit));
                    return Ok(Answer {
                        body: hit,
                        cached: true,
                    });
                }
            }
        }
        let body = Arc::new(self.compute(body, deadline)?);
        if let Some(key) = key {
            if let Some(store) = &self.store {
                // A store write failure must not fail the request — the
                // answer is correct, it just will not survive a restart.
                let _ = store.append(&key, &body);
            }
            self.cache.insert(key, Arc::clone(&body));
        }
        Ok(Answer {
            body,
            cached: false,
        })
    }

    fn compute(&self, body: &RequestBody, deadline: Option<Instant>) -> Result<String, ExecError> {
        match body {
            RequestBody::Simulate {
                config,
                packets,
                seed,
                engine,
            } => {
                let metrics = self.simulate(*config, *packets, *seed, *engine);
                serde_json::to_string(&SimulateResult {
                    config: *config,
                    packets: *packets,
                    seed: *seed,
                    engine: engine.name().to_string(),
                    metrics,
                })
                .map_err(|e| ExecError::internal(e.to_string()))
            }
            RequestBody::Predict { config, engine } => match engine {
                EngineMode::Analytic => {
                    let outcome = self.analytic_run(*config, crate::protocol::DEFAULT_PACKETS);
                    serde_json::to_string(&AnalyticPredictResult {
                        config: *config,
                        engine: engine.name().to_string(),
                        packets: crate::protocol::DEFAULT_PACKETS,
                        report: outcome.report,
                        metrics: outcome.into_metrics(),
                    })
                    .map_err(|e| ExecError::internal(e.to_string()))
                }
                // Golden keeps the historical body, byte-identical.
                _ => serde_json::to_string(&PredictResult {
                    config: *config,
                    predicted: self.optimizer.predictor.evaluate(config),
                })
                .map_err(|e| ExecError::internal(e.to_string())),
            },
            RequestBody::Tune {
                objective,
                constraints,
                distance_m,
                engine,
            } => self.tune(*objective, constraints, *distance_m, *engine, deadline),
            RequestBody::Pareto {
                metrics,
                distance_m,
                engine,
                profile,
            } => self.pareto(metrics, *distance_m, *engine, *profile, deadline),
            RequestBody::Explore {
                objective,
                constraints,
                budget,
                distance_m,
                engine,
                profile,
            } => self.explore(
                *objective,
                constraints,
                *budget,
                *distance_m,
                *engine,
                *profile,
                deadline,
            ),
            RequestBody::Scenario {
                scenario,
                packets,
                seed,
                timeline,
            } => self.scenario(scenario, *packets, *seed, timeline.as_ref()),
            RequestBody::Cache { flush } => {
                // Flush first so the reported memory tier reflects the
                // state the client asked for.
                let flushed_entries = if *flush { self.cache.flush() as u64 } else { 0 };
                let hits = self.cache.hits();
                let misses = self.cache.misses();
                let lookups = hits + misses;
                let disk = match &self.store {
                    Some(store) => {
                        let s = store.stats();
                        CacheTierDisk {
                            enabled: true,
                            records: s.records,
                            segments: s.segments,
                            bytes: s.bytes,
                            hits: s.hits,
                            misses: s.misses,
                            appends: s.appends,
                        }
                    }
                    None => CacheTierDisk {
                        enabled: false,
                        records: 0,
                        segments: 0,
                        bytes: 0,
                        hits: 0,
                        misses: 0,
                        appends: 0,
                    },
                };
                serde_json::to_string(&CacheOpResult {
                    mem: CacheTierMem {
                        entries: self.cache.len() as u64,
                        hits,
                        misses,
                        hit_rate: if lookups == 0 {
                            0.0
                        } else {
                            hits as f64 / lookups as f64
                        },
                        evictions: self.cache.evictions(),
                    },
                    disk,
                    flushed: *flush,
                    flushed_entries,
                })
                .map_err(|e| ExecError::internal(e.to_string()))
            }
            RequestBody::Stats => serde_json::to_string(&self.stats.snapshot(
                self.cache.hits(),
                self.cache.misses(),
                self.cache.len(),
                self.cache.evictions(),
            ))
            .map_err(|e| ExecError::internal(e.to_string())),
            // The server answers shutdown itself; reaching here means a
            // worker was handed one anyway — answer it honestly.
            RequestBody::Shutdown => Ok("{\"shutting_down\":true}".to_string()),
        }
    }

    /// Runs one configuration under the requested engine mode. Golden is
    /// the event-driven replay (and feeds the executor-load counters);
    /// fast is the coalesced per-packet sampler, which has no event loop
    /// to observe; analytic is the seed-free M/G/1 closed form.
    fn simulate(
        &self,
        config: StackConfig,
        packets: u64,
        seed: u64,
        engine: EngineMode,
    ) -> LinkMetrics {
        let options = SimOptions {
            packets,
            record_packets: false,
            traffic: TrafficModel::Periodic,
            ..SimOptions::paper(seed)
        };
        match engine {
            EngineMode::Golden => {
                let outcome = LinkSimulation::new(config, options)
                    .with_budget_table(Arc::clone(&self.budgets))
                    .run();
                self.stats.observe_exec(&outcome.exec);
                outcome.metrics().clone()
            }
            EngineMode::Fast => FastLinkSimulation::new(config, options)
                .with_budget_table(Arc::clone(&self.budgets))
                .run()
                .into_metrics(),
            EngineMode::Analytic => self.analytic_run(config, packets).into_metrics(),
        }
    }

    /// One closed-form evaluation through the shared memo table (seed-free
    /// by construction, so no seed parameter exists to forget).
    fn analytic_run(&self, config: StackConfig, packets: u64) -> AnalyticOutcome {
        let options = SimOptions {
            packets,
            record_packets: false,
            traffic: TrafficModel::Periodic,
            ..SimOptions::paper(crate::protocol::DEFAULT_SEED)
        };
        AnalyticLinkSimulation::new(config, options)
            .with_budget_table(Arc::clone(&self.budgets))
            .with_cache(Arc::clone(&self.analytic))
            .run()
    }

    /// The golden optimizer/predictor backing a profile.
    fn profile_optimizer(&self, profile: Profile) -> &Optimizer {
        match profile {
            Profile::Paper => &self.optimizer,
            Profile::CaseStudy => &self.optimizer_cs,
        }
    }

    /// One closed-form evaluation under a profile. The paper profile is
    /// the hallway channel at the configuration's periodic operating
    /// point; the case study is the shadowed channel under saturating
    /// (bulk-transfer) load — the Sec. VIII-C regime where the published
    /// winner (`Ptx=31`, interior payload, `N=3`) emerges.
    fn analytic_run_profile(
        &self,
        config: StackConfig,
        packets: u64,
        profile: Profile,
    ) -> AnalyticOutcome {
        match profile {
            Profile::Paper => self.analytic_run(config, packets),
            Profile::CaseStudy => {
                // The evaluator is a function of `options.channel` (the
                // memo tables only engage when their channel matches), so
                // the shadowed channel must be set on the options too.
                let options = SimOptions {
                    packets,
                    record_packets: false,
                    channel: ChannelConfig::case_study(),
                    traffic: TrafficModel::Saturating,
                    ..SimOptions::paper(crate::protocol::DEFAULT_SEED)
                };
                AnalyticLinkSimulation::new(config, options)
                    .with_budget_table(Arc::clone(&self.budgets_cs))
                    .with_cache(Arc::clone(&self.analytic_cs))
                    .run()
            }
        }
    }

    /// One fast-sampler run under a profile (same channel/traffic pairing
    /// as [`Engine::analytic_run_profile`]).
    fn fast_run_profile(
        &self,
        config: StackConfig,
        packets: u64,
        seed: u64,
        profile: Profile,
    ) -> LinkMetrics {
        let (budgets, channel, traffic) = match profile {
            Profile::Paper => (
                &self.budgets,
                ChannelConfig::paper_hallway(),
                TrafficModel::Periodic,
            ),
            Profile::CaseStudy => (
                &self.budgets_cs,
                ChannelConfig::case_study(),
                TrafficModel::Saturating,
            ),
        };
        let options = SimOptions {
            packets,
            record_packets: false,
            channel,
            traffic,
            ..SimOptions::paper(seed)
        };
        FastLinkSimulation::new(config, options)
            .with_budget_table(Arc::clone(budgets))
            .run()
            .into_metrics()
    }

    fn tune(
        &self,
        objective: Metric,
        constraints: &[(Metric, f64)],
        distance_m: Option<f64>,
        engine: EngineMode,
        deadline: Option<Instant>,
    ) -> Result<String, ExecError> {
        let mut grid = ParamGrid::paper();
        if let Some(d) = distance_m {
            Distance::from_meters(d).map_err(|e| ExecError::bad_request(e.to_string()))?;
            grid.distances_m = vec![d];
        }
        if engine == EngineMode::Analytic {
            return self.tune_analytic(objective, constraints, &grid, deadline);
        }
        // Inlined `Optimizer::epsilon_constraint` so the scan can honor
        // the request deadline between candidates. Strict `<` keeps the
        // *first* minimum, matching `min_by`'s tie-breaking exactly — a
        // cached pre-inline answer and a fresh one must agree
        // byte-for-byte.
        let mut scan = ScanDeadline::new(deadline);
        let mut best: Option<(wsn_models::optimize::Evaluation, f64)> = None;
        for config in grid.iter() {
            scan.tick()?;
            let predicted = self.optimizer.predictor.evaluate(&config);
            if !constraints
                .iter()
                .all(|(m, eps)| m.value(&predicted) <= *eps)
            {
                continue;
            }
            let value = objective.value(&predicted);
            if !value.is_finite() {
                continue;
            }
            if best.as_ref().is_none_or(|(_, b)| value < *b) {
                best = Some((
                    wsn_models::optimize::Evaluation { config, predicted },
                    value,
                ));
            }
        }
        let (best, _) = best.ok_or_else(|| {
            ExecError::bad_request("no feasible configuration on the grid".to_string())
        })?;
        // `"engine":"fast"` buys an empirical cross-check: the predicted
        // winner is re-run through the fast sampler so the client sees
        // simulated metrics next to the closed-form prediction.
        let simulated = match engine {
            EngineMode::Fast => Some(self.simulate(
                best.config,
                crate::protocol::DEFAULT_PACKETS,
                crate::protocol::DEFAULT_SEED,
                EngineMode::Fast,
            )),
            _ => None,
        };
        serde_json::to_string(&TuneResult {
            objective: metric_name(objective).to_string(),
            constraints: constraint_echo(constraints),
            grid_configs: grid.len() as u64,
            engine: engine.name().to_string(),
            config: best.config,
            predicted: best.predicted,
            simulated,
        })
        .map_err(|e| ExecError::internal(e.to_string()))
    }

    /// The analytic tune path: every grid candidate is evaluated with the
    /// closed-form M/G/1 engine (microseconds each through the memo table)
    /// and ranked on the full metric set at its own periodic operating
    /// point; only the winner is then re-simulated through the fast
    /// sampler as an empirical cross-check. Note the goodput objective
    /// therefore ranks *achieved* goodput under the configuration's
    /// periodic load, where the golden predictor ranks the saturated
    /// maximum (Eq. 4).
    fn tune_analytic(
        &self,
        objective: Metric,
        constraints: &[(Metric, f64)],
        grid: &ParamGrid,
        deadline: Option<Instant>,
    ) -> Result<String, ExecError> {
        let mut scan = ScanDeadline::new(deadline);
        let mut best: Option<(StackConfig, LinkMetrics, AnalyticReport, f64)> = None;
        for config in grid.iter() {
            scan.tick()?;
            let outcome = self.analytic_run(config, crate::protocol::DEFAULT_PACKETS);
            let report = outcome.report;
            let metrics = outcome.into_metrics();
            let feasible = constraints
                .iter()
                .all(|(m, eps)| link_metric_value(*m, &metrics) <= *eps);
            if !feasible {
                continue;
            }
            let value = link_metric_value(objective, &metrics);
            if !value.is_finite() {
                continue;
            }
            // Strict `<` keeps the first minimum, like the golden path's
            // `min_by`, so ties break deterministically in grid order.
            if best.as_ref().is_none_or(|(_, _, _, b)| value < *b) {
                best = Some((config, metrics, report, value));
            }
        }
        let (config, metrics, report, _) = best.ok_or_else(|| {
            ExecError::bad_request("no feasible configuration on the grid".to_string())
        })?;
        let simulated = self.simulate(
            config,
            crate::protocol::DEFAULT_PACKETS,
            crate::protocol::DEFAULT_SEED,
            EngineMode::Fast,
        );
        serde_json::to_string(&AnalyticTuneResult {
            objective: metric_name(objective).to_string(),
            constraints: constraint_echo(constraints),
            grid_configs: grid.len() as u64,
            engine: EngineMode::Analytic.name().to_string(),
            config,
            predicted: self.optimizer.predictor.evaluate(&config),
            simulated: Some(simulated),
            analytic: AnalyticTuneDetail {
                candidates_ranked: grid.len() as u64,
                metrics,
                report,
            },
        })
        .map_err(|e| ExecError::internal(e.to_string()))
    }

    /// The `pareto` op: the exact non-dominated set of every requested
    /// distance, each front sorted by the first metric, the chord-rule
    /// knee attached when the front is two-dimensional. The golden
    /// backend ranks closed-form predictions; the analytic backend ranks
    /// memoized M/G/1 evaluations at each candidate's own operating
    /// point.
    fn pareto(
        &self,
        metrics: &[Metric],
        distance_m: Option<f64>,
        engine: EngineMode,
        profile: Profile,
        deadline: Option<Instant>,
    ) -> Result<String, ExecError> {
        let mut grid = ParamGrid::paper();
        if let Some(d) = distance_m {
            Distance::from_meters(d).map_err(|e| ExecError::bad_request(e.to_string()))?;
            grid.distances_m = vec![d];
        }
        let mut scan = ScanDeadline::new(deadline);
        let mut distances = Vec::with_capacity(grid.distances_m.len());
        for &d in &grid.distances_m {
            let slice = ParamGrid {
                distances_m: vec![d],
                ..grid.clone()
            };
            let mut configs = Vec::with_capacity(slice.len());
            let mut values: Vec<Vec<f64>> = Vec::with_capacity(slice.len());
            for config in slice.iter() {
                scan.tick()?;
                let row: Vec<f64> = match engine {
                    EngineMode::Analytic => {
                        let m = self
                            .analytic_run_profile(config, crate::protocol::DEFAULT_PACKETS, profile)
                            .into_metrics();
                        metrics
                            .iter()
                            .map(|metric| link_metric_value(*metric, &m))
                            .collect()
                    }
                    _ => {
                        let p = self.profile_optimizer(profile).predictor.evaluate(&config);
                        metrics.iter().map(|metric| metric.value(&p)).collect()
                    }
                };
                configs.push(config);
                values.push(row);
            }
            let mut front = pareto_front_indices(&values);
            front.sort_by(|&a, &b| {
                values[a][0]
                    .partial_cmp(&values[b][0])
                    .expect("front values are finite")
            });
            let members: Vec<FrontMember> = front
                .iter()
                .map(|&i| FrontMember {
                    config: configs[i],
                    values: metrics
                        .iter()
                        .zip(&values[i])
                        .map(|(m, v)| display_value(*m, *v))
                        .collect(),
                })
                .collect();
            let knee = if metrics.len() == 2 {
                let xy: Vec<(f64, f64)> = front
                    .iter()
                    .map(|&i| (values[i][0], values[i][1]))
                    .collect();
                knee_of_front(&xy).map(|k| members[k].clone())
            } else {
                None
            };
            distances.push(DistanceFront {
                distance_m: d,
                front: members,
                knee,
            });
        }
        serde_json::to_string(&ParetoResult {
            metrics: metrics
                .iter()
                .map(|m| metric_name(*m).to_string())
                .collect(),
            engine: engine.name().to_string(),
            profile: profile.name().to_string(),
            grid_configs: grid.len() as u64,
            distances,
        })
        .map_err(|e| ExecError::internal(e.to_string()))
    }

    /// The `explore` op: budgeted search through
    /// [`wsn_models::explore::explore_grid`] (coprime-stride sweep →
    /// successive halving → hill climb), never spending more candidate
    /// evaluations than `budget`. The evaluator enforces the constraints
    /// and the deadline; the winner is re-rendered from the same backend
    /// that scored it.
    #[allow(clippy::too_many_arguments)]
    fn explore(
        &self,
        objective: Metric,
        constraints: &[(Metric, f64)],
        budget: u64,
        distance_m: Option<f64>,
        engine: EngineMode,
        profile: Profile,
        deadline: Option<Instant>,
    ) -> Result<String, ExecError> {
        let mut grid = ParamGrid::paper();
        if let Some(d) = distance_m {
            Distance::from_meters(d).map_err(|e| ExecError::bad_request(e.to_string()))?;
            grid.distances_m = vec![d];
        }
        let mut scan = ScanDeadline::new(deadline);
        let feasible_value = |metrics_of: &dyn Fn(Metric) -> f64| -> Option<f64> {
            if !constraints.iter().all(|(m, eps)| metrics_of(*m) <= *eps) {
                return None;
            }
            Some(metrics_of(objective))
        };
        let outcome = explore_grid(&grid, budget, |_, config| {
            scan.tick()?;
            let value = match engine {
                EngineMode::Golden => {
                    let p = self.profile_optimizer(profile).predictor.evaluate(config);
                    feasible_value(&|m| m.value(&p))
                }
                EngineMode::Analytic => {
                    let lm = self
                        .analytic_run_profile(*config, crate::protocol::DEFAULT_PACKETS, profile)
                        .into_metrics();
                    feasible_value(&|m| link_metric_value(m, &lm))
                }
                EngineMode::Fast => {
                    let lm = self.fast_run_profile(
                        *config,
                        crate::protocol::DEFAULT_PACKETS,
                        crate::protocol::DEFAULT_SEED,
                        profile,
                    );
                    feasible_value(&|m| link_metric_value(m, &lm))
                }
            };
            Ok(value)
        })?
        .ok_or_else(|| {
            ExecError::bad_request("no feasible configuration found within the budget".to_string())
        })?;
        let config = grid.config_at(outcome.best_index);
        let strategy = ExploreStrategy {
            swept: outcome.swept,
            refined: outcome.refined,
            local: outcome.local,
        };
        let objective_value = display_value(objective, outcome.best_value);
        match engine {
            EngineMode::Golden => serde_json::to_string(&ExploreResult {
                objective: metric_name(objective).to_string(),
                constraints: constraint_echo(constraints),
                budget,
                evaluations: outcome.evaluations,
                grid_configs: grid.len() as u64,
                engine: engine.name().to_string(),
                profile: profile.name().to_string(),
                strategy,
                config,
                objective_value,
                predicted: self.profile_optimizer(profile).predictor.evaluate(&config),
            })
            .map_err(|e| ExecError::internal(e.to_string())),
            _ => {
                // Re-deriving the winner's metrics is free (analytic memo
                // hit) or deterministic (fast sampler, fixed seed).
                let metrics = match engine {
                    EngineMode::Analytic => self
                        .analytic_run_profile(config, crate::protocol::DEFAULT_PACKETS, profile)
                        .into_metrics(),
                    _ => self.fast_run_profile(
                        config,
                        crate::protocol::DEFAULT_PACKETS,
                        crate::protocol::DEFAULT_SEED,
                        profile,
                    ),
                };
                serde_json::to_string(&ExploreSimResult {
                    objective: metric_name(objective).to_string(),
                    constraints: constraint_echo(constraints),
                    budget,
                    evaluations: outcome.evaluations,
                    grid_configs: grid.len() as u64,
                    engine: engine.name().to_string(),
                    profile: profile.name().to_string(),
                    strategy,
                    config,
                    objective_value,
                    metrics,
                })
                .map_err(|e| ExecError::internal(e.to_string()))
            }
        }
    }

    fn scenario(
        &self,
        id: &str,
        packets: u64,
        seed: u64,
        timeline: Option<&TimelineSpec>,
    ) -> Result<String, ExecError> {
        let scenario = build_scenario(id).ok_or_else(|| {
            let known: Vec<&str> = all_scenarios().iter().map(|(n, _)| *n).collect();
            ExecError::bad_request(format!(
                "unknown scenario '{id}'; known: {}",
                known.join(", ")
            ))
        })?;
        let description = all_scenarios()
            .iter()
            .find(|(n, _)| *n == id)
            .map(|(_, d)| *d)
            .unwrap_or_default();
        let options = NetOptions {
            seed,
            record_packets: false,
            ..NetOptions::quick(packets)
        };
        let timeline = match timeline {
            Some(spec) => Some(spec.resolve(id).map_err(ExecError::bad_request)?),
            None => None,
        };
        let mut sim = NetworkSimulation::new(scenario, options);
        let digest = timeline.as_ref().map(|t| t.digest());
        if let Some(timeline) = timeline {
            sim = sim.with_timeline(timeline);
        }
        let outcome = sim.run();
        self.stats.observe_exec(&outcome.exec);
        let plr_radio = outcome.plr_radio();
        let goodput_bps = outcome.goodput_bps();
        let links: Vec<ScenarioLinkResult> = outcome
            .links
            .into_iter()
            .map(|link| ScenarioLinkResult {
                config: link.config,
                metrics: link.metrics,
                frames_interfered: link.frames_interfered,
                frames_capture_lost: link.frames_capture_lost,
            })
            .collect();
        match digest {
            // Static scenarios keep the historical result shape,
            // byte-identical to the pre-timeline format.
            None => serde_json::to_string(&ScenarioResult {
                scenario: id.to_string(),
                description: description.to_string(),
                packets,
                seed,
                plr_radio,
                goodput_bps,
                links,
                air: outcome.air,
            })
            .map_err(|e| ExecError::internal(e.to_string())),
            Some(digest) => serde_json::to_string(&TimelineScenarioResult {
                scenario: id.to_string(),
                description: description.to_string(),
                packets,
                seed,
                timeline_digest: format!("{digest:016x}"),
                topo: outcome.topo,
                plr_radio,
                goodput_bps,
                links,
                air: outcome.air,
            })
            .map_err(|e| ExecError::internal(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn body(line: &str) -> RequestBody {
        parse_request(line).expect("valid request").body
    }

    #[test]
    fn simulate_is_cached_and_byte_identical() {
        let engine = Engine::new(4);
        let req = body(r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0}}"#);
        let first = engine.execute(&req).unwrap();
        assert!(!first.cached);
        let second = engine.execute(&req).unwrap();
        assert!(second.cached);
        assert_eq!(first.body.as_str(), second.body.as_str());
        // The result parses and carries the echo fields.
        let v = serde_json::parse(&first.body).unwrap();
        assert_eq!(v.field("packets").as_u64(), Some(40));
        assert_eq!(v.field("config").field("distance").as_f64(), Some(20.0));
        assert!(v.field("metrics").field("generated").as_u64().unwrap() >= 40);
    }

    #[test]
    fn fast_and_golden_answers_never_share_a_cache_line() {
        let engine = Engine::new(4);
        let golden = body(r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0}}"#);
        let fast =
            body(r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0},"engine":"fast"}"#);
        let g = engine.execute(&golden).unwrap();
        assert!(!g.cached);
        // The fast request must recompute, not be served the golden body.
        let f = engine.execute(&fast).unwrap();
        assert!(!f.cached);
        let v = serde_json::parse(&f.body).unwrap();
        assert_eq!(v.field("engine").as_str(), Some("fast"));
        assert_eq!(v.field("metrics").field("generated").as_u64(), Some(40));
        // Each mode then hits its own line, byte-identically.
        assert!(engine.execute(&fast).unwrap().cached);
        let g2 = engine.execute(&golden).unwrap();
        assert!(g2.cached);
        assert_eq!(g2.body.as_str(), g.body.as_str());
        let vg = serde_json::parse(&g2.body).unwrap();
        assert_eq!(vg.field("engine").as_str(), Some("golden"));
    }

    #[test]
    fn fast_tune_simulates_the_analytic_winner() {
        let engine = Engine::new(4);
        let fast = body(r#"{"op":"tune","objective":"goodput","distance_m":20.0,"engine":"fast"}"#);
        let answer = engine.execute(&fast).unwrap();
        let v = serde_json::parse(&answer.body).unwrap();
        assert_eq!(v.field("engine").as_str(), Some("fast"));
        assert!(v.field("simulated").field("generated").as_u64().unwrap() > 0);

        // The golden tune stays analytic-only on a separate cache line.
        let golden = body(r#"{"op":"tune","objective":"goodput","distance_m":20.0}"#);
        let g = engine.execute(&golden).unwrap();
        assert!(!g.cached);
        let vg = serde_json::parse(&g.body).unwrap();
        assert_eq!(vg.field("engine").as_str(), Some("golden"));
        assert_eq!(vg.field("simulated").kind(), "null");
        assert_eq!(
            vg.field("config").field("distance").as_f64(),
            v.field("config").field("distance").as_f64()
        );
    }

    #[test]
    fn analytic_simulate_is_cached_on_its_own_line() {
        let engine = Engine::new(4);
        let golden = body(r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0}}"#);
        let analytic = body(
            r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0},"engine":"analytic"}"#,
        );
        engine.execute(&golden).unwrap();
        // The analytic request recomputes rather than borrowing the
        // golden body …
        let a = engine.execute(&analytic).unwrap();
        assert!(!a.cached);
        let v = serde_json::parse(&a.body).unwrap();
        assert_eq!(v.field("engine").as_str(), Some("analytic"));
        assert_eq!(v.field("metrics").field("generated").as_u64(), Some(40));
        // … and then hits its own cache line byte-identically.
        let repeat = engine.execute(&analytic).unwrap();
        assert!(repeat.cached);
        assert_eq!(repeat.body.as_str(), a.body.as_str());
    }

    #[test]
    fn analytic_predict_returns_full_metrics_and_report() {
        let engine = Engine::new(4);
        let golden = body(r#"{"op":"predict","config":{"distance_m":20.0}}"#);
        let analytic = body(r#"{"op":"predict","config":{"distance_m":20.0},"engine":"analytic"}"#);
        let g = engine.execute(&golden).unwrap();
        let a = engine.execute(&analytic).unwrap();
        assert!(!a.cached, "analytic predict must not reuse the golden line");

        // The golden body keeps its historical shape: no engine echo.
        let vg = serde_json::parse(&g.body).unwrap();
        assert_eq!(vg.field("engine").kind(), "null");
        assert!(vg.field("predicted").field("rho").as_f64().is_some());

        // The analytic body carries the full simulated metric set plus
        // the M/G/1 diagnostic report.
        let va = serde_json::parse(&a.body).unwrap();
        assert_eq!(va.field("engine").as_str(), Some("analytic"));
        assert!(va.field("metrics").field("goodput_bps").as_f64().unwrap() > 0.0);
        let report = va.field("report");
        assert!(report.field("rho").as_f64().unwrap() > 0.0);
        assert!(report.field("expected_attempts").as_f64().unwrap() >= 1.0);
        assert_eq!(report.field("saturated").as_bool(), Some(false));
    }

    #[test]
    fn analytic_tune_prescans_the_grid_and_simulates_only_the_winner() {
        let engine = Engine::new(4);
        let req = body(
            r#"{"op":"tune","objective":"energy","constraints":[{"metric":"loss","max":0.05}],"distance_m":20.0,"engine":"analytic"}"#,
        );
        let answer = engine.execute(&req).unwrap();
        let v = serde_json::parse(&answer.body).unwrap();
        assert_eq!(v.field("engine").as_str(), Some("analytic"));
        // Every candidate of the 20 m slice was ranked …
        let ranked = v.field("analytic").field("candidates_ranked").as_u64();
        assert_eq!(ranked, v.field("grid_configs").as_u64());
        assert!(ranked.unwrap() > 1000);
        // … the winner satisfies the constraint analytically …
        let m = v.field("analytic").field("metrics");
        let plr_q = m.field("plr_queue").as_f64().unwrap();
        let plr_r = m.field("plr_radio").as_f64().unwrap();
        assert!(plr_q + (1.0 - plr_q) * plr_r <= 0.05);
        // … and exactly one fast cross-check rode along.
        assert!(v.field("simulated").field("generated").as_u64().unwrap() > 0);

        // The golden tune of the same question lives on its own cache
        // line and keeps its historical shape (no analytic block).
        let golden = body(
            r#"{"op":"tune","objective":"energy","constraints":[{"metric":"loss","max":0.05}],"distance_m":20.0}"#,
        );
        let g = engine.execute(&golden).unwrap();
        assert!(!g.cached);
        let vg = serde_json::parse(&g.body).unwrap();
        assert_eq!(vg.field("analytic").kind(), "null");
    }

    #[test]
    fn predict_and_simulate_do_not_share_cache_lines() {
        let engine = Engine::new(4);
        let sim = body(r#"{"op":"simulate","packets":40}"#);
        let prd = body(r#"{"op":"predict"}"#);
        engine.execute(&sim).unwrap();
        let answer = engine.execute(&prd).unwrap();
        assert!(!answer.cached);
        let v = serde_json::parse(&answer.body).unwrap();
        assert!(
            v.field("predicted")
                .field("max_goodput_bps")
                .as_f64()
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn tune_respects_constraints_and_infeasible_is_an_error() {
        let engine = Engine::new(4);
        let req = body(
            r#"{"op":"tune","objective":"goodput","constraints":[{"metric":"loss","max":0.01}],"distance_m":20.0}"#,
        );
        let answer = engine.execute(&req).unwrap();
        let v = serde_json::parse(&answer.body).unwrap();
        let predicted = v.field("predicted");
        let plr_q = predicted.field("plr_queue").as_f64().unwrap();
        let plr_r = predicted.field("plr_radio").as_f64().unwrap();
        assert!(plr_q + (1.0 - plr_q) * plr_r <= 0.01);
        assert_eq!(v.field("config").field("distance").as_f64(), Some(20.0));

        let impossible = body(
            r#"{"op":"tune","objective":"energy","constraints":[{"metric":"loss","max":-1.0}]}"#,
        );
        let err = engine.execute(&impossible).unwrap_err();
        assert!(err.message.contains("no feasible"));
        // Errors are not cached: the same request recomputes.
        assert!(engine.execute(&impossible).is_err());
    }

    #[test]
    fn scenario_runs_and_unknown_id_lists_catalog() {
        let engine = Engine::new(4);
        let req = body(r#"{"op":"scenario","scenario":"hidden-pair","packets":40}"#);
        let answer = engine.execute(&req).unwrap();
        let v = serde_json::parse(&answer.body).unwrap();
        assert_eq!(v.field("links").as_array().unwrap().len(), 2);
        assert!(v.field("air").field("frames").as_u64().unwrap() > 0);

        let err = engine
            .execute(&body(r#"{"op":"scenario","scenario":"nope"}"#))
            .unwrap_err();
        assert!(err.message.contains("hidden-pair"));
        assert_eq!(err.code, crate::protocol::ErrCode::BadRequest);
    }

    #[test]
    fn timeline_scenario_runs_on_its_own_cache_line() {
        let engine = Engine::new(4);
        let static_req = body(r#"{"op":"scenario","scenario":"parallel-4","packets":60}"#);
        let storm =
            body(r#"{"op":"scenario","scenario":"parallel-4","packets":60,"timeline":"storm20"}"#);
        let s = engine.execute(&static_req).unwrap();
        assert!(!s.cached);
        // The static body keeps the historical shape: no timeline echo.
        let vs = serde_json::parse(&s.body).unwrap();
        assert_eq!(vs.field("timeline_digest").kind(), "null");

        // The timeline request recomputes rather than borrowing the
        // static body, and echoes the digest plus topology counters.
        let t = engine.execute(&storm).unwrap();
        assert!(!t.cached);
        let vt = serde_json::parse(&t.body).unwrap();
        assert_eq!(vt.field("timeline_digest").as_str().unwrap().len(), 16);
        assert!(vt.field("topo").field("leaves").as_u64().unwrap() > 0);
        assert_eq!(vt.field("links").as_array().unwrap().len(), 4);

        // Both then hit their own lines byte-identically.
        assert!(engine.execute(&static_req).unwrap().cached);
        let repeat = engine.execute(&storm).unwrap();
        assert!(repeat.cached);
        assert_eq!(repeat.body.as_str(), t.body.as_str());

        // An unknown timeline id errors (and is never cached).
        let err = engine
            .execute(&body(
                r#"{"op":"scenario","scenario":"parallel-4","timeline":"blizzard"}"#,
            ))
            .unwrap_err();
        assert!(err.message.contains("storm20"), "{err}");
    }

    fn temp_store_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wsn-engine-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn cache_op_reports_both_tiers_and_flushes_only_memory() {
        let dir = temp_store_dir("cacheop");
        let engine = Engine::new(4).with_store(Store::open(&dir).expect("store"));
        let sim = body(r#"{"op":"simulate","packets":40}"#);
        engine.execute(&sim).unwrap();
        engine.execute(&sim).unwrap();

        let report = engine.execute(&body(r#"{"op":"cache"}"#)).unwrap();
        assert!(!report.cached, "cache op must never be cached");
        let v = serde_json::parse(&report.body).unwrap();
        assert_eq!(v.field("mem").field("entries").as_u64(), Some(1));
        assert_eq!(v.field("mem").field("hits").as_u64(), Some(1));
        assert_eq!(v.field("disk").field("enabled").as_bool(), Some(true));
        assert_eq!(v.field("disk").field("records").as_u64(), Some(1));
        assert_eq!(v.field("disk").field("appends").as_u64(), Some(1));
        assert!(v.field("disk").field("bytes").as_u64().unwrap() > 0);
        assert_eq!(v.field("flushed").as_bool(), Some(false));

        let flushed = engine
            .execute(&body(r#"{"op":"cache","action":"flush"}"#))
            .unwrap();
        let v = serde_json::parse(&flushed.body).unwrap();
        assert_eq!(v.field("flushed").as_bool(), Some(true));
        assert_eq!(v.field("flushed_entries").as_u64(), Some(1));
        assert_eq!(v.field("mem").field("entries").as_u64(), Some(0));
        // The disk tier is immutable under flush: the record survives,
        // and the next lookup is a disk-warm hit.
        assert_eq!(v.field("disk").field("records").as_u64(), Some(1));
        let after = engine.execute(&sim).unwrap();
        assert!(after.cached, "flush must not lose the disk tier");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn without_a_store_the_cache_op_reports_a_disabled_disk_tier() {
        let engine = Engine::new(4);
        let report = engine.execute(&body(r#"{"op":"cache"}"#)).unwrap();
        let v = serde_json::parse(&report.body).unwrap();
        assert_eq!(v.field("disk").field("enabled").as_bool(), Some(false));
        assert_eq!(v.field("disk").field("records").as_u64(), Some(0));
    }

    #[test]
    fn store_tier_answers_a_fresh_engine_byte_identically() {
        let dir = temp_store_dir("restart");
        let sim = body(r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0}}"#);
        let first = {
            let engine = Engine::new(4).with_store(Store::open(&dir).expect("store"));
            engine.execute(&sim).unwrap().body.as_str().to_string()
        };
        // A fresh engine over the same store — the "restart" — answers
        // from disk without computing, byte-identically.
        let engine = Engine::new(4).with_store(Store::open(&dir).expect("reopen"));
        let again = engine.execute(&sim).unwrap();
        assert!(again.cached, "restart must serve the disk-warm hit");
        assert_eq!(again.body.as_str(), first);
        // The promotion seeded the memory tier: the disk tier is not
        // consulted twice.
        let hits_before = engine.store().unwrap().stats().hits;
        assert!(engine.execute(&sim).unwrap().cached);
        assert_eq!(engine.store().unwrap().stats().hits, hits_before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_insert_matches_a_live_answer_byte_for_byte() {
        let dir = temp_store_dir("warm");
        let sim = body(r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0}}"#);
        let live = {
            let engine = Engine::new(4);
            engine.execute(&sim).unwrap().body.as_str().to_string()
        };
        let engine = Engine::new(4).with_store(Store::open(&dir).expect("store"));
        let key = cache_key(&sim).unwrap();
        engine.warm_insert(&key, &live).expect("warm");
        // Idempotent on disk: re-warming the same entry appends nothing.
        engine.warm_insert(&key, &live).expect("re-warm");
        assert_eq!(engine.store().unwrap().stats().records, 1);
        let answer = engine.execute(&sim).unwrap();
        assert!(answer.cached, "warmed entry must hit");
        assert_eq!(answer.body.as_str(), live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inline_tune_matches_the_optimizer_exactly() {
        // The golden tune loop was inlined from `epsilon_constraint` so it
        // could check the deadline; a cached pre-inline answer and a fresh
        // one must pick the same winner, ties included.
        let engine = Engine::new(4);
        let optimizer = Optimizer::paper();
        for (objective, constraints) in [
            (Metric::Energy, vec![]),
            (Metric::Goodput, vec![(Metric::Loss, 0.01)]),
            (Metric::Delay, vec![(Metric::Energy, 5.0)]),
        ] {
            let mut grid = ParamGrid::paper();
            grid.distances_m = vec![20.0];
            let expected = optimizer
                .epsilon_constraint(&grid, objective, &constraints)
                .expect("feasible");
            let cs: Vec<String> = constraints
                .iter()
                .map(|(m, max)| format!(r#"{{"metric":"{}","max":{max}}}"#, metric_name(*m)))
                .collect();
            let line = format!(
                r#"{{"op":"tune","objective":"{}","constraints":[{}],"distance_m":20.0}}"#,
                metric_name(objective),
                cs.join(",")
            );
            let answer = engine.execute(&body(&line)).unwrap();
            let v = serde_json::parse(&answer.body).unwrap();
            let cfg = v.field("config");
            assert_eq!(
                cfg.field("power").as_u64(),
                Some(u64::from(expected.config.power.level())),
                "{line}"
            );
            assert_eq!(
                cfg.field("payload").as_u64(),
                Some(u64::from(expected.config.payload.bytes())),
                "{line}"
            );
            assert_eq!(
                cfg.field("max_tries").as_u64(),
                Some(u64::from(expected.config.max_tries.get())),
                "{line}"
            );
        }
    }

    #[test]
    fn tune_accepts_off_grid_distances_on_both_engines() {
        // 17.5 m is between grid rows but a perfectly valid link; both
        // backends must scan the restricted grid there rather than error.
        let engine = Engine::new(4);
        for eng in ["golden", "analytic"] {
            let line = format!(
                r#"{{"op":"tune","objective":"energy","distance_m":17.5,"engine":"{eng}"}}"#
            );
            let answer = engine.execute(&body(&line)).unwrap();
            let v = serde_json::parse(&answer.body).unwrap();
            assert_eq!(
                v.field("config").field("distance").as_f64(),
                Some(17.5),
                "{eng}"
            );
            assert_eq!(v.field("grid_configs").as_u64(), Some(8064), "{eng}");
        }
        // And an invalid distance fails the same way on both.
        for eng in ["golden", "analytic"] {
            let line = format!(
                r#"{{"op":"tune","objective":"energy","distance_m":-3.0,"engine":"{eng}"}}"#
            );
            let err = engine.execute(&body(&line)).unwrap_err();
            assert_eq!(err.code, ErrCode::BadRequest, "{eng}");
            assert!(err.message.contains("-3"), "{eng}: {}", err.message);
        }
    }

    #[test]
    fn expired_deadline_aborts_the_scan_with_the_deadline_code() {
        let engine = Engine::new(4);
        let full_grid = body(r#"{"op":"tune","objective":"energy"}"#);
        let past = Instant::now() - std::time::Duration::from_millis(10);
        let err = engine
            .execute_with_deadline(&full_grid, Some(past))
            .unwrap_err();
        assert_eq!(err.code, ErrCode::Deadline);
        assert!(
            err.message.contains("candidate evaluations"),
            "{}",
            err.message
        );
        // The abort was never cached: without a deadline the same request
        // computes and answers.
        let ok = engine.execute(&full_grid).unwrap();
        assert!(!ok.cached);
        // …and now that an answer is stored, even an expired deadline is
        // served from the cache — a stored answer is free.
        let hit = engine
            .execute_with_deadline(&full_grid, Some(past))
            .unwrap();
        assert!(hit.cached);
    }

    #[test]
    fn pareto_fronts_are_non_dominated_sorted_and_kneed() {
        let engine = Engine::new(4);
        let answer = engine
            .execute(&body(r#"{"op":"pareto","distance_m":20.0}"#))
            .unwrap();
        let v = serde_json::parse(&answer.body).unwrap();
        assert_eq!(v.field("grid_configs").as_u64(), Some(8064));
        let distances = v.field("distances").as_array().unwrap();
        assert_eq!(distances.len(), 1);
        let front = distances[0].field("front").as_array().unwrap();
        assert!(front.len() >= 3, "front has {} members", front.len());
        // Display sense: energy ascending means goodput must ascend too,
        // or the later member would be dominated.
        let rows: Vec<(f64, f64)> = front
            .iter()
            .map(|m| {
                let vals = m.field("values").as_array().unwrap();
                (vals[0].as_f64().unwrap(), vals[1].as_f64().unwrap())
            })
            .collect();
        for pair in rows.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "sorted by energy: {rows:?}");
            assert!(pair[0].1 < pair[1].1, "non-dominated: {rows:?}");
        }
        // The knee is one of the front members.
        let knee = distances[0].field("knee");
        let knee_vals = knee.field("values").as_array().unwrap();
        let kv = (
            knee_vals[0].as_f64().unwrap(),
            knee_vals[1].as_f64().unwrap(),
        );
        assert!(rows.contains(&kv), "knee {kv:?} not on front");
        // Byte-identical repeat from the cache.
        let again = engine
            .execute(&body(r#"{"op":"pareto","distance_m":20.0}"#))
            .unwrap();
        assert!(again.cached);
        assert_eq!(again.body.as_str(), answer.body.as_str());
    }

    #[test]
    fn pareto_reproduces_the_table_iv_case_study() {
        // The paper's Sec. VIII-C joint pick — minimize energy, then take
        // the best goodput within 20 % of that minimum — applied to the
        // served front must land on the published shape: Ptx=31, an
        // interior payload, NmaxTries=3 (examples/analytic_tune.rs runs
        // the same study through the campaign runner).
        let engine = Engine::new(4);
        let answer = engine
            .execute(&body(
                r#"{"op":"pareto","distance_m":35.0,"engine":"analytic","profile":"case-study"}"#,
            ))
            .unwrap();
        let v = serde_json::parse(&answer.body).unwrap();
        assert_eq!(v.field("profile").as_str(), Some("case-study"));
        let front = v.field("distances").as_array().unwrap()[0]
            .field("front")
            .as_array()
            .unwrap();
        let energy_of =
            |m: &serde_json::Value| m.field("values").as_array().unwrap()[0].as_f64().unwrap();
        let goodput_of =
            |m: &serde_json::Value| m.field("values").as_array().unwrap()[1].as_f64().unwrap();
        let best_energy = front.iter().map(energy_of).fold(f64::INFINITY, f64::min);
        let winner = front
            .iter()
            .filter(|m| energy_of(m) <= best_energy * 1.2)
            .max_by(|a, b| goodput_of(a).total_cmp(&goodput_of(b)))
            .expect("non-empty front");
        let cfg = winner.field("config");
        assert_eq!(cfg.field("power").as_u64(), Some(31));
        assert_eq!(cfg.field("max_tries").as_u64(), Some(3));
        let payload = cfg.field("payload").as_u64().unwrap();
        assert!(
            payload > 5 && payload < 110,
            "interior payload, got {payload}"
        );
    }

    #[test]
    fn explore_respects_the_budget_and_stays_near_the_exhaustive_winner() {
        let engine = Engine::new(4);
        // Exhaustive truth: the analytic tune scans all 8064 candidates.
        let tune = engine
            .execute(&body(
                r#"{"op":"tune","objective":"energy","distance_m":35.0,"engine":"analytic"}"#,
            ))
            .unwrap();
        let tv = serde_json::parse(&tune.body).unwrap();
        let exhaustive = tv
            .field("analytic")
            .field("metrics")
            .field("u_eng_uj_per_bit")
            .as_f64()
            .unwrap();
        // A quarter of the grid must land within 5 % objective regret.
        let budget = 8064 / 4;
        let line = format!(
            r#"{{"op":"explore","objective":"energy","budget":{budget},"distance_m":35.0,"engine":"analytic"}}"#
        );
        let answer = engine.execute(&body(&line)).unwrap();
        let v = serde_json::parse(&answer.body).unwrap();
        let evaluations = v.field("evaluations").as_u64().unwrap();
        assert!(
            evaluations <= budget,
            "spent {evaluations} of budget {budget}"
        );
        let found = v.field("objective_value").as_f64().unwrap();
        assert!(
            found <= exhaustive * 1.05,
            "explore {found} vs exhaustive {exhaustive}"
        );
        // The strategy breakdown accounts for every evaluation.
        let strategy = v.field("strategy");
        let spent = strategy.field("swept").as_u64().unwrap()
            + strategy.field("refined").as_u64().unwrap()
            + strategy.field("local").as_u64().unwrap();
        assert_eq!(spent, evaluations);
        // Repeat = cache hit, byte-identical.
        let again = engine.execute(&body(&line)).unwrap();
        assert!(again.cached);
        assert_eq!(again.body.as_str(), answer.body.as_str());
    }

    #[test]
    fn explore_golden_carries_the_prediction_and_profiles_partition() {
        let engine = Engine::new(4);
        let paper = engine
            .execute(&body(
                r#"{"op":"explore","objective":"goodput","budget":300,"distance_m":35.0}"#,
            ))
            .unwrap();
        let v = serde_json::parse(&paper.body).unwrap();
        assert_eq!(v.field("engine").as_str(), Some("golden"));
        assert!(
            v.field("predicted")
                .field("max_goodput_bps")
                .as_f64()
                .unwrap()
                > 0.0
        );
        assert!(v.field("objective_value").as_f64().unwrap() > 0.0);
        // The case-study profile answers from the shadowed channel — a
        // different cache line and a weaker link.
        let cs = engine
            .execute(&body(
                r#"{"op":"explore","objective":"goodput","budget":300,"distance_m":35.0,"profile":"case-study"}"#,
            ))
            .unwrap();
        assert!(!cs.cached);
        let vc = serde_json::parse(&cs.body).unwrap();
        assert_eq!(vc.field("profile").as_str(), Some("case-study"));
        assert!(
            vc.field("objective_value").as_f64().unwrap()
                < v.field("objective_value").as_f64().unwrap(),
            "shadowed link cannot beat the hallway"
        );
    }

    #[test]
    fn stats_reflect_cache_counters_and_are_never_cached() {
        let engine = Engine::new(4);
        let sim = body(r#"{"op":"simulate","packets":40}"#);
        engine.execute(&sim).unwrap();
        engine.execute(&sim).unwrap();
        let stats = engine.execute(&body(r#"{"op":"stats"}"#)).unwrap();
        assert!(!stats.cached);
        let v = serde_json::parse(&stats.body).unwrap();
        assert_eq!(v.field("cache_hits").as_u64(), Some(1));
        assert_eq!(v.field("cache_misses").as_u64(), Some(1));
        assert_eq!(v.field("cache_hit_rate").as_f64(), Some(0.5));
        assert_eq!(v.field("cache_entries").as_u64(), Some(1));
        // The one executed simulation surfaced its executor load.
        assert_eq!(v.field("sim").field("runs").as_u64(), Some(1));
        assert!(v.field("sim").field("events_handled").as_u64().unwrap() > 0);
    }
}
