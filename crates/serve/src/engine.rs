//! The execution engine: turns a parsed request body into a serialized
//! `result` JSON string, consulting the sharded result cache first.
//!
//! The engine owns exactly the shared state every worker needs — one
//! [`LinkBudgetTable`] (so concurrent simulations share the memoized
//! link-budget arithmetic from the campaign runner), one [`Optimizer`],
//! one [`ShardedCache`], one [`ServeStats`] — and no per-connection
//! state, so a single `Arc<Engine>` fans out to the whole pool.
//!
//! Caching contract: the cache stores the *serialized result string*, and
//! the envelope splices it in verbatim, so a repeat request returns a
//! byte-identical `result` by construction — there is no re-serialization
//! step that could reorder fields or reformat floats. Error results and
//! live ops (`stats`, `shutdown`) are never cached.

use std::sync::Arc;

use wsn_link_sim::catalog::{all_scenarios, build_scenario};
use wsn_link_sim::fast::FastLinkSimulation;
use wsn_link_sim::metrics::LinkMetrics;
use wsn_link_sim::network::{AirStats, NetOptions, NetworkSimulation};
use wsn_link_sim::simulation::{LinkSimulation, SimOptions};
use wsn_link_sim::traffic::TrafficModel;
use wsn_models::optimize::{Metric, Optimizer};
use wsn_models::predict::Predicted;
use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;
use wsn_params::types::Distance;
use wsn_radio::budget::LinkBudgetTable;
use wsn_radio::channel::ChannelConfig;
use wsn_sim_engine::mode::EngineMode;

use serde::Serialize;

use crate::cache::ShardedCache;
use crate::protocol::{cache_key, metric_name, RequestBody};
use crate::stats::ServeStats;

/// The shared request executor.
#[derive(Debug)]
pub struct Engine {
    /// Memoized link budgets shared by every worker's simulations.
    budgets: Arc<LinkBudgetTable>,
    /// The analytic optimizer/predictor (paper constants).
    optimizer: Optimizer,
    /// The result cache.
    pub cache: ShardedCache,
    /// Service counters.
    pub stats: ServeStats,
}

/// How a request was answered: the serialized `result` body, and whether
/// it came from the cache.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The serialized result JSON, shared with the cache.
    pub body: Arc<String>,
    /// True when served from the cache.
    pub cached: bool,
}

#[derive(Serialize)]
struct SimulateResult {
    config: StackConfig,
    packets: u64,
    seed: u64,
    engine: String,
    metrics: LinkMetrics,
}

#[derive(Serialize)]
struct PredictResult {
    config: StackConfig,
    predicted: Predicted,
}

#[derive(Serialize)]
struct ConstraintEcho {
    metric: String,
    max: f64,
}

#[derive(Serialize)]
struct TuneResult {
    objective: String,
    constraints: Vec<ConstraintEcho>,
    grid_configs: u64,
    engine: String,
    config: StackConfig,
    predicted: Predicted,
    /// Fast-engine check of the analytic winner: present when the request
    /// asked for `"engine":"fast"`, `null` on the (default) analytic-only
    /// golden answer.
    simulated: Option<LinkMetrics>,
}

#[derive(Serialize)]
struct ScenarioLinkResult {
    config: StackConfig,
    metrics: LinkMetrics,
    frames_interfered: u64,
    frames_capture_lost: u64,
}

#[derive(Serialize)]
struct ScenarioResult {
    scenario: String,
    description: String,
    packets: u64,
    seed: u64,
    links: Vec<ScenarioLinkResult>,
    air: AirStats,
    plr_radio: f64,
    goodput_bps: f64,
}

impl Engine {
    /// An engine on the paper's hallway channel with a `shards`-way result
    /// cache.
    pub fn new(shards: usize) -> Self {
        Engine {
            budgets: Arc::new(LinkBudgetTable::new(ChannelConfig::paper_hallway())),
            optimizer: Optimizer::paper(),
            cache: ShardedCache::new(shards),
            stats: ServeStats::new(),
        }
    }

    /// Executes `body`, serving from the cache when the canonical key has
    /// been answered before.
    ///
    /// # Errors
    ///
    /// Returns the error message for the client (`unknown scenario`,
    /// `no feasible configuration`, …). Errors are never cached, so a
    /// query that fails for transient semantic reasons (e.g. a tune that
    /// becomes feasible after loosening a constraint) is recomputed.
    pub fn execute(&self, body: &RequestBody) -> Result<Answer, String> {
        let key = cache_key(body);
        if let Some(key) = &key {
            if let Some(hit) = self.cache.get(key) {
                return Ok(Answer {
                    body: hit,
                    cached: true,
                });
            }
        }
        let body = Arc::new(self.compute(body)?);
        if let Some(key) = key {
            self.cache.insert(key, Arc::clone(&body));
        }
        Ok(Answer {
            body,
            cached: false,
        })
    }

    fn compute(&self, body: &RequestBody) -> Result<String, String> {
        match body {
            RequestBody::Simulate {
                config,
                packets,
                seed,
                engine,
            } => {
                let metrics = self.simulate(*config, *packets, *seed, *engine);
                serde_json::to_string(&SimulateResult {
                    config: *config,
                    packets: *packets,
                    seed: *seed,
                    engine: engine.name().to_string(),
                    metrics,
                })
                .map_err(|e| e.to_string())
            }
            RequestBody::Predict { config } => serde_json::to_string(&PredictResult {
                config: *config,
                predicted: self.optimizer.predictor.evaluate(config),
            })
            .map_err(|e| e.to_string()),
            RequestBody::Tune {
                objective,
                constraints,
                distance_m,
                engine,
            } => self.tune(*objective, constraints, *distance_m, *engine),
            RequestBody::Scenario {
                scenario,
                packets,
                seed,
            } => self.scenario(scenario, *packets, *seed),
            RequestBody::Stats => serde_json::to_string(&self.stats.snapshot(
                self.cache.hits(),
                self.cache.misses(),
                self.cache.len(),
                self.cache.evictions(),
            ))
            .map_err(|e| e.to_string()),
            // The server answers shutdown itself; reaching here means a
            // worker was handed one anyway — answer it honestly.
            RequestBody::Shutdown => Ok("{\"shutting_down\":true}".to_string()),
        }
    }

    /// Runs one configuration under the requested engine mode. Golden is
    /// the event-driven replay (and feeds the executor-load counters);
    /// fast is the coalesced per-packet sampler, which has no event loop
    /// to observe.
    fn simulate(
        &self,
        config: StackConfig,
        packets: u64,
        seed: u64,
        engine: EngineMode,
    ) -> LinkMetrics {
        let options = SimOptions {
            packets,
            record_packets: false,
            traffic: TrafficModel::Periodic,
            ..SimOptions::paper(seed)
        };
        match engine {
            EngineMode::Golden => {
                let outcome = LinkSimulation::new(config, options)
                    .with_budget_table(Arc::clone(&self.budgets))
                    .run();
                self.stats.observe_exec(&outcome.exec);
                outcome.metrics().clone()
            }
            EngineMode::Fast => FastLinkSimulation::new(config, options)
                .with_budget_table(Arc::clone(&self.budgets))
                .run()
                .into_metrics(),
        }
    }

    fn tune(
        &self,
        objective: Metric,
        constraints: &[(Metric, f64)],
        distance_m: Option<f64>,
        engine: EngineMode,
    ) -> Result<String, String> {
        let mut grid = ParamGrid::paper();
        if let Some(d) = distance_m {
            Distance::from_meters(d).map_err(|e| e.to_string())?;
            grid.distances_m = vec![d];
        }
        let best = self
            .optimizer
            .epsilon_constraint(&grid, objective, constraints)
            .ok_or_else(|| "no feasible configuration on the grid".to_string())?;
        // `"engine":"fast"` buys an empirical cross-check: the analytic
        // winner is re-run through the fast sampler so the client sees
        // simulated metrics next to the closed-form prediction.
        let simulated = match engine {
            EngineMode::Golden => None,
            EngineMode::Fast => Some(self.simulate(
                best.config,
                crate::protocol::DEFAULT_PACKETS,
                crate::protocol::DEFAULT_SEED,
                EngineMode::Fast,
            )),
        };
        serde_json::to_string(&TuneResult {
            objective: metric_name(objective).to_string(),
            constraints: constraints
                .iter()
                .map(|(m, max)| ConstraintEcho {
                    metric: metric_name(*m).to_string(),
                    max: *max,
                })
                .collect(),
            grid_configs: grid.len() as u64,
            engine: engine.name().to_string(),
            config: best.config,
            predicted: best.predicted,
            simulated,
        })
        .map_err(|e| e.to_string())
    }

    fn scenario(&self, id: &str, packets: u64, seed: u64) -> Result<String, String> {
        let scenario = build_scenario(id).ok_or_else(|| {
            let known: Vec<&str> = all_scenarios().iter().map(|(n, _)| *n).collect();
            format!("unknown scenario '{id}'; known: {}", known.join(", "))
        })?;
        let description = all_scenarios()
            .iter()
            .find(|(n, _)| *n == id)
            .map(|(_, d)| *d)
            .unwrap_or_default();
        let options = NetOptions {
            seed,
            record_packets: false,
            ..NetOptions::quick(packets)
        };
        let outcome = NetworkSimulation::new(scenario, options).run();
        self.stats.observe_exec(&outcome.exec);
        serde_json::to_string(&ScenarioResult {
            scenario: id.to_string(),
            description: description.to_string(),
            packets,
            seed,
            plr_radio: outcome.plr_radio(),
            goodput_bps: outcome.goodput_bps(),
            links: outcome
                .links
                .into_iter()
                .map(|link| ScenarioLinkResult {
                    config: link.config,
                    metrics: link.metrics,
                    frames_interfered: link.frames_interfered,
                    frames_capture_lost: link.frames_capture_lost,
                })
                .collect(),
            air: outcome.air,
        })
        .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn body(line: &str) -> RequestBody {
        parse_request(line).expect("valid request").body
    }

    #[test]
    fn simulate_is_cached_and_byte_identical() {
        let engine = Engine::new(4);
        let req = body(r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0}}"#);
        let first = engine.execute(&req).unwrap();
        assert!(!first.cached);
        let second = engine.execute(&req).unwrap();
        assert!(second.cached);
        assert_eq!(first.body.as_str(), second.body.as_str());
        // The result parses and carries the echo fields.
        let v = serde_json::parse(&first.body).unwrap();
        assert_eq!(v.field("packets").as_u64(), Some(40));
        assert_eq!(v.field("config").field("distance").as_f64(), Some(20.0));
        assert!(v.field("metrics").field("generated").as_u64().unwrap() >= 40);
    }

    #[test]
    fn fast_and_golden_answers_never_share_a_cache_line() {
        let engine = Engine::new(4);
        let golden = body(r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0}}"#);
        let fast =
            body(r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0},"engine":"fast"}"#);
        let g = engine.execute(&golden).unwrap();
        assert!(!g.cached);
        // The fast request must recompute, not be served the golden body.
        let f = engine.execute(&fast).unwrap();
        assert!(!f.cached);
        let v = serde_json::parse(&f.body).unwrap();
        assert_eq!(v.field("engine").as_str(), Some("fast"));
        assert_eq!(v.field("metrics").field("generated").as_u64(), Some(40));
        // Each mode then hits its own line, byte-identically.
        assert!(engine.execute(&fast).unwrap().cached);
        let g2 = engine.execute(&golden).unwrap();
        assert!(g2.cached);
        assert_eq!(g2.body.as_str(), g.body.as_str());
        let vg = serde_json::parse(&g2.body).unwrap();
        assert_eq!(vg.field("engine").as_str(), Some("golden"));
    }

    #[test]
    fn fast_tune_simulates_the_analytic_winner() {
        let engine = Engine::new(4);
        let fast = body(r#"{"op":"tune","objective":"goodput","distance_m":20.0,"engine":"fast"}"#);
        let answer = engine.execute(&fast).unwrap();
        let v = serde_json::parse(&answer.body).unwrap();
        assert_eq!(v.field("engine").as_str(), Some("fast"));
        assert!(v.field("simulated").field("generated").as_u64().unwrap() > 0);

        // The golden tune stays analytic-only on a separate cache line.
        let golden = body(r#"{"op":"tune","objective":"goodput","distance_m":20.0}"#);
        let g = engine.execute(&golden).unwrap();
        assert!(!g.cached);
        let vg = serde_json::parse(&g.body).unwrap();
        assert_eq!(vg.field("engine").as_str(), Some("golden"));
        assert_eq!(vg.field("simulated").kind(), "null");
        assert_eq!(
            vg.field("config").field("distance").as_f64(),
            v.field("config").field("distance").as_f64()
        );
    }

    #[test]
    fn predict_and_simulate_do_not_share_cache_lines() {
        let engine = Engine::new(4);
        let sim = body(r#"{"op":"simulate","packets":40}"#);
        let prd = body(r#"{"op":"predict"}"#);
        engine.execute(&sim).unwrap();
        let answer = engine.execute(&prd).unwrap();
        assert!(!answer.cached);
        let v = serde_json::parse(&answer.body).unwrap();
        assert!(
            v.field("predicted")
                .field("max_goodput_bps")
                .as_f64()
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn tune_respects_constraints_and_infeasible_is_an_error() {
        let engine = Engine::new(4);
        let req = body(
            r#"{"op":"tune","objective":"goodput","constraints":[{"metric":"loss","max":0.01}],"distance_m":20.0}"#,
        );
        let answer = engine.execute(&req).unwrap();
        let v = serde_json::parse(&answer.body).unwrap();
        let predicted = v.field("predicted");
        let plr_q = predicted.field("plr_queue").as_f64().unwrap();
        let plr_r = predicted.field("plr_radio").as_f64().unwrap();
        assert!(plr_q + (1.0 - plr_q) * plr_r <= 0.01);
        assert_eq!(v.field("config").field("distance").as_f64(), Some(20.0));

        let impossible = body(
            r#"{"op":"tune","objective":"energy","constraints":[{"metric":"loss","max":-1.0}]}"#,
        );
        let err = engine.execute(&impossible).unwrap_err();
        assert!(err.contains("no feasible"));
        // Errors are not cached: the same request recomputes.
        assert!(engine.execute(&impossible).is_err());
    }

    #[test]
    fn scenario_runs_and_unknown_id_lists_catalog() {
        let engine = Engine::new(4);
        let req = body(r#"{"op":"scenario","scenario":"hidden-pair","packets":40}"#);
        let answer = engine.execute(&req).unwrap();
        let v = serde_json::parse(&answer.body).unwrap();
        assert_eq!(v.field("links").as_array().unwrap().len(), 2);
        assert!(v.field("air").field("frames").as_u64().unwrap() > 0);

        let err = engine
            .execute(&body(r#"{"op":"scenario","scenario":"nope"}"#))
            .unwrap_err();
        assert!(err.contains("hidden-pair"));
    }

    #[test]
    fn stats_reflect_cache_counters_and_are_never_cached() {
        let engine = Engine::new(4);
        let sim = body(r#"{"op":"simulate","packets":40}"#);
        engine.execute(&sim).unwrap();
        engine.execute(&sim).unwrap();
        let stats = engine.execute(&body(r#"{"op":"stats"}"#)).unwrap();
        assert!(!stats.cached);
        let v = serde_json::parse(&stats.body).unwrap();
        assert_eq!(v.field("cache_hits").as_u64(), Some(1));
        assert_eq!(v.field("cache_misses").as_u64(), Some(1));
        assert_eq!(v.field("cache_hit_rate").as_f64(), Some(0.5));
        assert_eq!(v.field("cache_entries").as_u64(), Some(1));
        // The one executed simulation surfaced its executor load.
        assert_eq!(v.field("sim").field("runs").as_u64(), Some(1));
        assert!(v.field("sim").field("events_handled").as_u64().unwrap() > 0);
    }
}
