//! The execution engine: turns a parsed request body into a serialized
//! `result` JSON string, consulting the sharded result cache first.
//!
//! The engine owns exactly the shared state every worker needs — one
//! [`LinkBudgetTable`] (so concurrent simulations share the memoized
//! link-budget arithmetic from the campaign runner), one [`Optimizer`],
//! one [`ShardedCache`], one [`ServeStats`] — and no per-connection
//! state, so a single `Arc<Engine>` fans out to the whole pool.
//!
//! Caching contract: the cache stores the *serialized result string*, and
//! the envelope splices it in verbatim, so a repeat request returns a
//! byte-identical `result` by construction — there is no re-serialization
//! step that could reorder fields or reformat floats. Error results and
//! live ops (`stats`, `shutdown`) are never cached.

use std::sync::Arc;

use wsn_analytic::table::AnalyticTable;
use wsn_analytic::{AnalyticLinkSimulation, AnalyticOutcome, AnalyticReport};
use wsn_link_sim::catalog::{all_scenarios, build_scenario};
use wsn_link_sim::fast::FastLinkSimulation;
use wsn_link_sim::metrics::LinkMetrics;
use wsn_link_sim::network::{AirStats, NetOptions, NetworkSimulation, TopoStats};
use wsn_link_sim::simulation::{LinkSimulation, SimOptions};
use wsn_link_sim::traffic::TrafficModel;
use wsn_models::optimize::{Metric, Optimizer};
use wsn_models::predict::Predicted;
use wsn_params::config::StackConfig;
use wsn_params::grid::ParamGrid;
use wsn_params::types::Distance;
use wsn_radio::budget::LinkBudgetTable;
use wsn_radio::channel::ChannelConfig;
use wsn_sim_engine::mode::EngineMode;

use serde::Serialize;

use crate::cache::ShardedCache;
use crate::protocol::{cache_key, metric_name, ErrCode, RequestBody, TimelineSpec};
use crate::stats::ServeStats;
use crate::store::Store;

/// A failed execution: the stable machine-readable code for the error
/// envelope plus the human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// The envelope's `"code"`.
    pub code: ErrCode,
    /// The envelope's `"error"`.
    pub message: String,
}

impl ExecError {
    /// The request was semantically wrong (unknown scenario, infeasible
    /// constraints, out-of-domain parameter).
    fn bad_request(message: String) -> Self {
        ExecError {
            code: ErrCode::BadRequest,
            message,
        }
    }

    /// The server failed on its own (serialization) — never the
    /// client's fault.
    fn internal(message: String) -> Self {
        ExecError {
            code: ErrCode::Internal,
            message,
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The shared request executor.
#[derive(Debug)]
pub struct Engine {
    /// Memoized link budgets shared by every worker's simulations.
    budgets: Arc<LinkBudgetTable>,
    /// Memoized closed-form evaluations for the analytic engine mode,
    /// pinned to the same channel as `budgets`.
    analytic: Arc<AnalyticTable>,
    /// The golden closed-form optimizer/predictor (paper constants).
    optimizer: Optimizer,
    /// The in-memory result cache (tier 1).
    pub cache: ShardedCache,
    /// The optional persistent result store (tier 2).
    store: Option<Arc<Store>>,
    /// Service counters.
    pub stats: ServeStats,
}

/// How a request was answered: the serialized `result` body, and whether
/// it came from the cache.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The serialized result JSON, shared with the cache.
    pub body: Arc<String>,
    /// True when served from the cache.
    pub cached: bool,
}

#[derive(Serialize)]
struct SimulateResult {
    config: StackConfig,
    packets: u64,
    seed: u64,
    engine: String,
    metrics: LinkMetrics,
}

#[derive(Serialize)]
struct PredictResult {
    config: StackConfig,
    predicted: Predicted,
}

/// The `predict` result under `"engine":"analytic"`: the full simulated
/// metric set from the M/G/1 closed-form engine plus its diagnostic
/// report, at the default query scale (golden predict keeps its own
/// historical [`PredictResult`] shape, byte-identical to before).
#[derive(Serialize)]
struct AnalyticPredictResult {
    config: StackConfig,
    engine: String,
    packets: u64,
    metrics: LinkMetrics,
    report: AnalyticReport,
}

/// The analytic pre-scan block of a `tune` result: winner metrics and
/// diagnostics plus how many candidates the scan ranked. Only the
/// analytic result shape carries it, so golden/fast tune bodies stay
/// byte-identical to the pre-analytic format.
#[derive(Serialize)]
struct AnalyticTuneDetail {
    candidates_ranked: u64,
    metrics: LinkMetrics,
    report: AnalyticReport,
}

#[derive(Serialize)]
struct ConstraintEcho {
    metric: String,
    max: f64,
}

#[derive(Serialize)]
struct TuneResult {
    objective: String,
    constraints: Vec<ConstraintEcho>,
    grid_configs: u64,
    engine: String,
    config: StackConfig,
    predicted: Predicted,
    /// Fast-engine check of the predicted winner: present when the
    /// request asked for `"engine":"fast"`, `null` on the (default)
    /// predictor-only golden answer.
    simulated: Option<LinkMetrics>,
}

/// The `tune` result under `"engine":"analytic"`: the [`TuneResult`]
/// fields plus the pre-scan detail (the vendored serde_derive has no
/// `skip_serializing_if`, so a distinct shape — rather than an optional
/// field — is what keeps golden/fast bodies byte-identical).
#[derive(Serialize)]
struct AnalyticTuneResult {
    objective: String,
    constraints: Vec<ConstraintEcho>,
    grid_configs: u64,
    engine: String,
    config: StackConfig,
    predicted: Predicted,
    /// The fast-engine cross-check of the pre-scan winner (the only
    /// candidate that is re-simulated).
    simulated: Option<LinkMetrics>,
    analytic: AnalyticTuneDetail,
}

#[derive(Serialize)]
struct ScenarioLinkResult {
    config: StackConfig,
    metrics: LinkMetrics,
    frames_interfered: u64,
    frames_capture_lost: u64,
}

#[derive(Serialize)]
struct ScenarioResult {
    scenario: String,
    description: String,
    packets: u64,
    seed: u64,
    links: Vec<ScenarioLinkResult>,
    air: AirStats,
    plr_radio: f64,
    goodput_bps: f64,
}

/// The `scenario` result when a `timeline` rode along: the
/// [`ScenarioResult`] fields plus the timeline's canonical digest (the
/// same value that partitions the cache key) and the replayed topology
/// counters. A distinct shape — not optional fields — keeps static
/// scenario bodies byte-identical to the pre-timeline format (the
/// vendored serde_derive has no `skip_serializing_if`).
#[derive(Serialize)]
struct TimelineScenarioResult {
    scenario: String,
    description: String,
    packets: u64,
    seed: u64,
    timeline_digest: String,
    topo: TopoStats,
    links: Vec<ScenarioLinkResult>,
    air: AirStats,
    plr_radio: f64,
    goodput_bps: f64,
}

/// The memory tier of a `cache` op result.
#[derive(Serialize)]
struct CacheTierMem {
    entries: u64,
    hits: u64,
    misses: u64,
    hit_rate: f64,
    evictions: u64,
}

/// The disk tier of a `cache` op result. All-zero with `enabled:false`
/// when the server runs without `--store`.
#[derive(Serialize)]
struct CacheTierDisk {
    enabled: bool,
    records: u64,
    segments: u64,
    bytes: u64,
    hits: u64,
    misses: u64,
    appends: u64,
}

/// What the `cache` op returns.
#[derive(Serialize)]
struct CacheOpResult {
    mem: CacheTierMem,
    disk: CacheTierDisk,
    flushed: bool,
    flushed_entries: u64,
}

/// Serializes the result body a `simulate` request for this exact
/// (`config`, `packets`, `seed`, `engine`) tuple would produce from
/// `metrics` — the warm-from-campaign path. Byte-identity with a live
/// answer is by construction: same struct, same serializer.
///
/// # Errors
///
/// Returns the serializer's message (practically unreachable).
pub fn simulate_result_body(
    config: &StackConfig,
    packets: u64,
    seed: u64,
    engine: EngineMode,
    metrics: &LinkMetrics,
) -> Result<String, String> {
    serde_json::to_string(&SimulateResult {
        config: *config,
        packets,
        seed,
        engine: engine.name().to_string(),
        metrics: metrics.clone(),
    })
    .map_err(|e| e.to_string())
}

/// A [`Metric`]'s value read from simulated/analytic [`LinkMetrics`], in
/// the same minimization sense as [`Metric::value`] on a prediction
/// (goodput negated so smaller is always better). Infeasible operating
/// points surface as `INFINITY` (energy with zero delivery) and are
/// filtered by the caller's finiteness check.
fn link_metric_value(metric: Metric, m: &LinkMetrics) -> f64 {
    match metric {
        Metric::Energy => m.u_eng_uj_per_bit,
        Metric::Goodput => -m.goodput_bps,
        Metric::Delay => m.delay_mean_ms,
        Metric::Loss => m.plr_total(),
    }
}

impl Engine {
    /// An engine on the paper's hallway channel with a `shards`-way result
    /// cache.
    pub fn new(shards: usize) -> Self {
        let channel = ChannelConfig::paper_hallway();
        Engine {
            budgets: Arc::new(LinkBudgetTable::new(channel)),
            analytic: Arc::new(AnalyticTable::new(channel)),
            optimizer: Optimizer::paper(),
            cache: ShardedCache::new(shards),
            store: None,
            stats: ServeStats::new(),
        }
    }

    /// Attaches a persistent store as the cache's second tier: memory
    /// misses fall through to disk (promoting hits back to memory), and
    /// freshly computed results are appended for the next restart.
    #[must_use]
    pub fn with_store(mut self, store: Store) -> Self {
        self.store = Some(Arc::new(store));
        self
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_deref()
    }

    /// Installs `body` as the answer for `key` in both tiers — the
    /// warm-from-campaign path. The memory tier always learns the entry;
    /// the disk tier is only appended when it does not already hold the
    /// key, so re-warming from the same campaign is idempotent on disk.
    ///
    /// # Errors
    ///
    /// Propagates store append failures.
    pub fn warm_insert(&self, key: &str, body: &str) -> std::io::Result<()> {
        if let Some(store) = &self.store {
            if store.get(key).is_none() {
                store.append(key, body)?;
            }
        }
        self.cache
            .insert(key.to_string(), Arc::new(body.to_string()));
        Ok(())
    }

    /// Executes `body`, serving from the cache when the canonical key has
    /// been answered before.
    ///
    /// # Errors
    ///
    /// Returns the error message for the client (`unknown scenario`,
    /// `no feasible configuration`, …). Errors are never cached, so a
    /// query that fails for transient semantic reasons (e.g. a tune that
    /// becomes feasible after loosening a constraint) is recomputed.
    pub fn execute(&self, body: &RequestBody) -> Result<Answer, ExecError> {
        let key = cache_key(body);
        if let Some(key) = &key {
            if let Some(hit) = self.cache.get(key) {
                return Ok(Answer {
                    body: hit,
                    cached: true,
                });
            }
            // Memory miss: consult the disk tier, promoting a hit back
            // into memory so the next lookup is one hash probe again.
            if let Some(store) = &self.store {
                if let Some(hit) = store.get(key) {
                    let hit = Arc::new(hit);
                    self.cache.insert(key.clone(), Arc::clone(&hit));
                    return Ok(Answer {
                        body: hit,
                        cached: true,
                    });
                }
            }
        }
        let body = Arc::new(self.compute(body)?);
        if let Some(key) = key {
            if let Some(store) = &self.store {
                // A store write failure must not fail the request — the
                // answer is correct, it just will not survive a restart.
                let _ = store.append(&key, &body);
            }
            self.cache.insert(key, Arc::clone(&body));
        }
        Ok(Answer {
            body,
            cached: false,
        })
    }

    fn compute(&self, body: &RequestBody) -> Result<String, ExecError> {
        match body {
            RequestBody::Simulate {
                config,
                packets,
                seed,
                engine,
            } => {
                let metrics = self.simulate(*config, *packets, *seed, *engine);
                serde_json::to_string(&SimulateResult {
                    config: *config,
                    packets: *packets,
                    seed: *seed,
                    engine: engine.name().to_string(),
                    metrics,
                })
                .map_err(|e| ExecError::internal(e.to_string()))
            }
            RequestBody::Predict { config, engine } => match engine {
                EngineMode::Analytic => {
                    let outcome = self.analytic_run(*config, crate::protocol::DEFAULT_PACKETS);
                    serde_json::to_string(&AnalyticPredictResult {
                        config: *config,
                        engine: engine.name().to_string(),
                        packets: crate::protocol::DEFAULT_PACKETS,
                        report: outcome.report,
                        metrics: outcome.into_metrics(),
                    })
                    .map_err(|e| ExecError::internal(e.to_string()))
                }
                // Golden keeps the historical body, byte-identical.
                _ => serde_json::to_string(&PredictResult {
                    config: *config,
                    predicted: self.optimizer.predictor.evaluate(config),
                })
                .map_err(|e| ExecError::internal(e.to_string())),
            },
            RequestBody::Tune {
                objective,
                constraints,
                distance_m,
                engine,
            } => self.tune(*objective, constraints, *distance_m, *engine),
            RequestBody::Scenario {
                scenario,
                packets,
                seed,
                timeline,
            } => self.scenario(scenario, *packets, *seed, timeline.as_ref()),
            RequestBody::Cache { flush } => {
                // Flush first so the reported memory tier reflects the
                // state the client asked for.
                let flushed_entries = if *flush { self.cache.flush() as u64 } else { 0 };
                let hits = self.cache.hits();
                let misses = self.cache.misses();
                let lookups = hits + misses;
                let disk = match &self.store {
                    Some(store) => {
                        let s = store.stats();
                        CacheTierDisk {
                            enabled: true,
                            records: s.records,
                            segments: s.segments,
                            bytes: s.bytes,
                            hits: s.hits,
                            misses: s.misses,
                            appends: s.appends,
                        }
                    }
                    None => CacheTierDisk {
                        enabled: false,
                        records: 0,
                        segments: 0,
                        bytes: 0,
                        hits: 0,
                        misses: 0,
                        appends: 0,
                    },
                };
                serde_json::to_string(&CacheOpResult {
                    mem: CacheTierMem {
                        entries: self.cache.len() as u64,
                        hits,
                        misses,
                        hit_rate: if lookups == 0 {
                            0.0
                        } else {
                            hits as f64 / lookups as f64
                        },
                        evictions: self.cache.evictions(),
                    },
                    disk,
                    flushed: *flush,
                    flushed_entries,
                })
                .map_err(|e| ExecError::internal(e.to_string()))
            }
            RequestBody::Stats => serde_json::to_string(&self.stats.snapshot(
                self.cache.hits(),
                self.cache.misses(),
                self.cache.len(),
                self.cache.evictions(),
            ))
            .map_err(|e| ExecError::internal(e.to_string())),
            // The server answers shutdown itself; reaching here means a
            // worker was handed one anyway — answer it honestly.
            RequestBody::Shutdown => Ok("{\"shutting_down\":true}".to_string()),
        }
    }

    /// Runs one configuration under the requested engine mode. Golden is
    /// the event-driven replay (and feeds the executor-load counters);
    /// fast is the coalesced per-packet sampler, which has no event loop
    /// to observe; analytic is the seed-free M/G/1 closed form.
    fn simulate(
        &self,
        config: StackConfig,
        packets: u64,
        seed: u64,
        engine: EngineMode,
    ) -> LinkMetrics {
        let options = SimOptions {
            packets,
            record_packets: false,
            traffic: TrafficModel::Periodic,
            ..SimOptions::paper(seed)
        };
        match engine {
            EngineMode::Golden => {
                let outcome = LinkSimulation::new(config, options)
                    .with_budget_table(Arc::clone(&self.budgets))
                    .run();
                self.stats.observe_exec(&outcome.exec);
                outcome.metrics().clone()
            }
            EngineMode::Fast => FastLinkSimulation::new(config, options)
                .with_budget_table(Arc::clone(&self.budgets))
                .run()
                .into_metrics(),
            EngineMode::Analytic => self.analytic_run(config, packets).into_metrics(),
        }
    }

    /// One closed-form evaluation through the shared memo table (seed-free
    /// by construction, so no seed parameter exists to forget).
    fn analytic_run(&self, config: StackConfig, packets: u64) -> AnalyticOutcome {
        let options = SimOptions {
            packets,
            record_packets: false,
            traffic: TrafficModel::Periodic,
            ..SimOptions::paper(crate::protocol::DEFAULT_SEED)
        };
        AnalyticLinkSimulation::new(config, options)
            .with_budget_table(Arc::clone(&self.budgets))
            .with_cache(Arc::clone(&self.analytic))
            .run()
    }

    fn tune(
        &self,
        objective: Metric,
        constraints: &[(Metric, f64)],
        distance_m: Option<f64>,
        engine: EngineMode,
    ) -> Result<String, ExecError> {
        let mut grid = ParamGrid::paper();
        if let Some(d) = distance_m {
            Distance::from_meters(d).map_err(|e| ExecError::bad_request(e.to_string()))?;
            grid.distances_m = vec![d];
        }
        if engine == EngineMode::Analytic {
            return self.tune_analytic(objective, constraints, &grid);
        }
        let best = self
            .optimizer
            .epsilon_constraint(&grid, objective, constraints)
            .ok_or_else(|| {
                ExecError::bad_request("no feasible configuration on the grid".to_string())
            })?;
        // `"engine":"fast"` buys an empirical cross-check: the predicted
        // winner is re-run through the fast sampler so the client sees
        // simulated metrics next to the closed-form prediction.
        let simulated = match engine {
            EngineMode::Fast => Some(self.simulate(
                best.config,
                crate::protocol::DEFAULT_PACKETS,
                crate::protocol::DEFAULT_SEED,
                EngineMode::Fast,
            )),
            _ => None,
        };
        serde_json::to_string(&TuneResult {
            objective: metric_name(objective).to_string(),
            constraints: constraints
                .iter()
                .map(|(m, max)| ConstraintEcho {
                    metric: metric_name(*m).to_string(),
                    max: *max,
                })
                .collect(),
            grid_configs: grid.len() as u64,
            engine: engine.name().to_string(),
            config: best.config,
            predicted: best.predicted,
            simulated,
        })
        .map_err(|e| ExecError::internal(e.to_string()))
    }

    /// The analytic tune path: every grid candidate is evaluated with the
    /// closed-form M/G/1 engine (microseconds each through the memo table)
    /// and ranked on the full metric set at its own periodic operating
    /// point; only the winner is then re-simulated through the fast
    /// sampler as an empirical cross-check. Note the goodput objective
    /// therefore ranks *achieved* goodput under the configuration's
    /// periodic load, where the golden predictor ranks the saturated
    /// maximum (Eq. 4).
    fn tune_analytic(
        &self,
        objective: Metric,
        constraints: &[(Metric, f64)],
        grid: &ParamGrid,
    ) -> Result<String, ExecError> {
        let mut best: Option<(StackConfig, LinkMetrics, AnalyticReport, f64)> = None;
        for config in grid.iter() {
            let outcome = self.analytic_run(config, crate::protocol::DEFAULT_PACKETS);
            let report = outcome.report;
            let metrics = outcome.into_metrics();
            let feasible = constraints
                .iter()
                .all(|(m, eps)| link_metric_value(*m, &metrics) <= *eps);
            if !feasible {
                continue;
            }
            let value = link_metric_value(objective, &metrics);
            if !value.is_finite() {
                continue;
            }
            // Strict `<` keeps the first minimum, like the golden path's
            // `min_by`, so ties break deterministically in grid order.
            if best.as_ref().is_none_or(|(_, _, _, b)| value < *b) {
                best = Some((config, metrics, report, value));
            }
        }
        let (config, metrics, report, _) = best.ok_or_else(|| {
            ExecError::bad_request("no feasible configuration on the grid".to_string())
        })?;
        let simulated = self.simulate(
            config,
            crate::protocol::DEFAULT_PACKETS,
            crate::protocol::DEFAULT_SEED,
            EngineMode::Fast,
        );
        serde_json::to_string(&AnalyticTuneResult {
            objective: metric_name(objective).to_string(),
            constraints: constraints
                .iter()
                .map(|(m, max)| ConstraintEcho {
                    metric: metric_name(*m).to_string(),
                    max: *max,
                })
                .collect(),
            grid_configs: grid.len() as u64,
            engine: EngineMode::Analytic.name().to_string(),
            config,
            predicted: self.optimizer.predictor.evaluate(&config),
            simulated: Some(simulated),
            analytic: AnalyticTuneDetail {
                candidates_ranked: grid.len() as u64,
                metrics,
                report,
            },
        })
        .map_err(|e| ExecError::internal(e.to_string()))
    }

    fn scenario(
        &self,
        id: &str,
        packets: u64,
        seed: u64,
        timeline: Option<&TimelineSpec>,
    ) -> Result<String, ExecError> {
        let scenario = build_scenario(id).ok_or_else(|| {
            let known: Vec<&str> = all_scenarios().iter().map(|(n, _)| *n).collect();
            ExecError::bad_request(format!(
                "unknown scenario '{id}'; known: {}",
                known.join(", ")
            ))
        })?;
        let description = all_scenarios()
            .iter()
            .find(|(n, _)| *n == id)
            .map(|(_, d)| *d)
            .unwrap_or_default();
        let options = NetOptions {
            seed,
            record_packets: false,
            ..NetOptions::quick(packets)
        };
        let timeline = match timeline {
            Some(spec) => Some(spec.resolve(id).map_err(ExecError::bad_request)?),
            None => None,
        };
        let mut sim = NetworkSimulation::new(scenario, options);
        let digest = timeline.as_ref().map(|t| t.digest());
        if let Some(timeline) = timeline {
            sim = sim.with_timeline(timeline);
        }
        let outcome = sim.run();
        self.stats.observe_exec(&outcome.exec);
        let plr_radio = outcome.plr_radio();
        let goodput_bps = outcome.goodput_bps();
        let links: Vec<ScenarioLinkResult> = outcome
            .links
            .into_iter()
            .map(|link| ScenarioLinkResult {
                config: link.config,
                metrics: link.metrics,
                frames_interfered: link.frames_interfered,
                frames_capture_lost: link.frames_capture_lost,
            })
            .collect();
        match digest {
            // Static scenarios keep the historical result shape,
            // byte-identical to the pre-timeline format.
            None => serde_json::to_string(&ScenarioResult {
                scenario: id.to_string(),
                description: description.to_string(),
                packets,
                seed,
                plr_radio,
                goodput_bps,
                links,
                air: outcome.air,
            })
            .map_err(|e| ExecError::internal(e.to_string())),
            Some(digest) => serde_json::to_string(&TimelineScenarioResult {
                scenario: id.to_string(),
                description: description.to_string(),
                packets,
                seed,
                timeline_digest: format!("{digest:016x}"),
                topo: outcome.topo,
                plr_radio,
                goodput_bps,
                links,
                air: outcome.air,
            })
            .map_err(|e| ExecError::internal(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn body(line: &str) -> RequestBody {
        parse_request(line).expect("valid request").body
    }

    #[test]
    fn simulate_is_cached_and_byte_identical() {
        let engine = Engine::new(4);
        let req = body(r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0}}"#);
        let first = engine.execute(&req).unwrap();
        assert!(!first.cached);
        let second = engine.execute(&req).unwrap();
        assert!(second.cached);
        assert_eq!(first.body.as_str(), second.body.as_str());
        // The result parses and carries the echo fields.
        let v = serde_json::parse(&first.body).unwrap();
        assert_eq!(v.field("packets").as_u64(), Some(40));
        assert_eq!(v.field("config").field("distance").as_f64(), Some(20.0));
        assert!(v.field("metrics").field("generated").as_u64().unwrap() >= 40);
    }

    #[test]
    fn fast_and_golden_answers_never_share_a_cache_line() {
        let engine = Engine::new(4);
        let golden = body(r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0}}"#);
        let fast =
            body(r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0},"engine":"fast"}"#);
        let g = engine.execute(&golden).unwrap();
        assert!(!g.cached);
        // The fast request must recompute, not be served the golden body.
        let f = engine.execute(&fast).unwrap();
        assert!(!f.cached);
        let v = serde_json::parse(&f.body).unwrap();
        assert_eq!(v.field("engine").as_str(), Some("fast"));
        assert_eq!(v.field("metrics").field("generated").as_u64(), Some(40));
        // Each mode then hits its own line, byte-identically.
        assert!(engine.execute(&fast).unwrap().cached);
        let g2 = engine.execute(&golden).unwrap();
        assert!(g2.cached);
        assert_eq!(g2.body.as_str(), g.body.as_str());
        let vg = serde_json::parse(&g2.body).unwrap();
        assert_eq!(vg.field("engine").as_str(), Some("golden"));
    }

    #[test]
    fn fast_tune_simulates_the_analytic_winner() {
        let engine = Engine::new(4);
        let fast = body(r#"{"op":"tune","objective":"goodput","distance_m":20.0,"engine":"fast"}"#);
        let answer = engine.execute(&fast).unwrap();
        let v = serde_json::parse(&answer.body).unwrap();
        assert_eq!(v.field("engine").as_str(), Some("fast"));
        assert!(v.field("simulated").field("generated").as_u64().unwrap() > 0);

        // The golden tune stays analytic-only on a separate cache line.
        let golden = body(r#"{"op":"tune","objective":"goodput","distance_m":20.0}"#);
        let g = engine.execute(&golden).unwrap();
        assert!(!g.cached);
        let vg = serde_json::parse(&g.body).unwrap();
        assert_eq!(vg.field("engine").as_str(), Some("golden"));
        assert_eq!(vg.field("simulated").kind(), "null");
        assert_eq!(
            vg.field("config").field("distance").as_f64(),
            v.field("config").field("distance").as_f64()
        );
    }

    #[test]
    fn analytic_simulate_is_cached_on_its_own_line() {
        let engine = Engine::new(4);
        let golden = body(r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0}}"#);
        let analytic = body(
            r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0},"engine":"analytic"}"#,
        );
        engine.execute(&golden).unwrap();
        // The analytic request recomputes rather than borrowing the
        // golden body …
        let a = engine.execute(&analytic).unwrap();
        assert!(!a.cached);
        let v = serde_json::parse(&a.body).unwrap();
        assert_eq!(v.field("engine").as_str(), Some("analytic"));
        assert_eq!(v.field("metrics").field("generated").as_u64(), Some(40));
        // … and then hits its own cache line byte-identically.
        let repeat = engine.execute(&analytic).unwrap();
        assert!(repeat.cached);
        assert_eq!(repeat.body.as_str(), a.body.as_str());
    }

    #[test]
    fn analytic_predict_returns_full_metrics_and_report() {
        let engine = Engine::new(4);
        let golden = body(r#"{"op":"predict","config":{"distance_m":20.0}}"#);
        let analytic = body(r#"{"op":"predict","config":{"distance_m":20.0},"engine":"analytic"}"#);
        let g = engine.execute(&golden).unwrap();
        let a = engine.execute(&analytic).unwrap();
        assert!(!a.cached, "analytic predict must not reuse the golden line");

        // The golden body keeps its historical shape: no engine echo.
        let vg = serde_json::parse(&g.body).unwrap();
        assert_eq!(vg.field("engine").kind(), "null");
        assert!(vg.field("predicted").field("rho").as_f64().is_some());

        // The analytic body carries the full simulated metric set plus
        // the M/G/1 diagnostic report.
        let va = serde_json::parse(&a.body).unwrap();
        assert_eq!(va.field("engine").as_str(), Some("analytic"));
        assert!(va.field("metrics").field("goodput_bps").as_f64().unwrap() > 0.0);
        let report = va.field("report");
        assert!(report.field("rho").as_f64().unwrap() > 0.0);
        assert!(report.field("expected_attempts").as_f64().unwrap() >= 1.0);
        assert_eq!(report.field("saturated").as_bool(), Some(false));
    }

    #[test]
    fn analytic_tune_prescans_the_grid_and_simulates_only_the_winner() {
        let engine = Engine::new(4);
        let req = body(
            r#"{"op":"tune","objective":"energy","constraints":[{"metric":"loss","max":0.05}],"distance_m":20.0,"engine":"analytic"}"#,
        );
        let answer = engine.execute(&req).unwrap();
        let v = serde_json::parse(&answer.body).unwrap();
        assert_eq!(v.field("engine").as_str(), Some("analytic"));
        // Every candidate of the 20 m slice was ranked …
        let ranked = v.field("analytic").field("candidates_ranked").as_u64();
        assert_eq!(ranked, v.field("grid_configs").as_u64());
        assert!(ranked.unwrap() > 1000);
        // … the winner satisfies the constraint analytically …
        let m = v.field("analytic").field("metrics");
        let plr_q = m.field("plr_queue").as_f64().unwrap();
        let plr_r = m.field("plr_radio").as_f64().unwrap();
        assert!(plr_q + (1.0 - plr_q) * plr_r <= 0.05);
        // … and exactly one fast cross-check rode along.
        assert!(v.field("simulated").field("generated").as_u64().unwrap() > 0);

        // The golden tune of the same question lives on its own cache
        // line and keeps its historical shape (no analytic block).
        let golden = body(
            r#"{"op":"tune","objective":"energy","constraints":[{"metric":"loss","max":0.05}],"distance_m":20.0}"#,
        );
        let g = engine.execute(&golden).unwrap();
        assert!(!g.cached);
        let vg = serde_json::parse(&g.body).unwrap();
        assert_eq!(vg.field("analytic").kind(), "null");
    }

    #[test]
    fn predict_and_simulate_do_not_share_cache_lines() {
        let engine = Engine::new(4);
        let sim = body(r#"{"op":"simulate","packets":40}"#);
        let prd = body(r#"{"op":"predict"}"#);
        engine.execute(&sim).unwrap();
        let answer = engine.execute(&prd).unwrap();
        assert!(!answer.cached);
        let v = serde_json::parse(&answer.body).unwrap();
        assert!(
            v.field("predicted")
                .field("max_goodput_bps")
                .as_f64()
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn tune_respects_constraints_and_infeasible_is_an_error() {
        let engine = Engine::new(4);
        let req = body(
            r#"{"op":"tune","objective":"goodput","constraints":[{"metric":"loss","max":0.01}],"distance_m":20.0}"#,
        );
        let answer = engine.execute(&req).unwrap();
        let v = serde_json::parse(&answer.body).unwrap();
        let predicted = v.field("predicted");
        let plr_q = predicted.field("plr_queue").as_f64().unwrap();
        let plr_r = predicted.field("plr_radio").as_f64().unwrap();
        assert!(plr_q + (1.0 - plr_q) * plr_r <= 0.01);
        assert_eq!(v.field("config").field("distance").as_f64(), Some(20.0));

        let impossible = body(
            r#"{"op":"tune","objective":"energy","constraints":[{"metric":"loss","max":-1.0}]}"#,
        );
        let err = engine.execute(&impossible).unwrap_err();
        assert!(err.message.contains("no feasible"));
        // Errors are not cached: the same request recomputes.
        assert!(engine.execute(&impossible).is_err());
    }

    #[test]
    fn scenario_runs_and_unknown_id_lists_catalog() {
        let engine = Engine::new(4);
        let req = body(r#"{"op":"scenario","scenario":"hidden-pair","packets":40}"#);
        let answer = engine.execute(&req).unwrap();
        let v = serde_json::parse(&answer.body).unwrap();
        assert_eq!(v.field("links").as_array().unwrap().len(), 2);
        assert!(v.field("air").field("frames").as_u64().unwrap() > 0);

        let err = engine
            .execute(&body(r#"{"op":"scenario","scenario":"nope"}"#))
            .unwrap_err();
        assert!(err.message.contains("hidden-pair"));
        assert_eq!(err.code, crate::protocol::ErrCode::BadRequest);
    }

    #[test]
    fn timeline_scenario_runs_on_its_own_cache_line() {
        let engine = Engine::new(4);
        let static_req = body(r#"{"op":"scenario","scenario":"parallel-4","packets":60}"#);
        let storm =
            body(r#"{"op":"scenario","scenario":"parallel-4","packets":60,"timeline":"storm20"}"#);
        let s = engine.execute(&static_req).unwrap();
        assert!(!s.cached);
        // The static body keeps the historical shape: no timeline echo.
        let vs = serde_json::parse(&s.body).unwrap();
        assert_eq!(vs.field("timeline_digest").kind(), "null");

        // The timeline request recomputes rather than borrowing the
        // static body, and echoes the digest plus topology counters.
        let t = engine.execute(&storm).unwrap();
        assert!(!t.cached);
        let vt = serde_json::parse(&t.body).unwrap();
        assert_eq!(vt.field("timeline_digest").as_str().unwrap().len(), 16);
        assert!(vt.field("topo").field("leaves").as_u64().unwrap() > 0);
        assert_eq!(vt.field("links").as_array().unwrap().len(), 4);

        // Both then hit their own lines byte-identically.
        assert!(engine.execute(&static_req).unwrap().cached);
        let repeat = engine.execute(&storm).unwrap();
        assert!(repeat.cached);
        assert_eq!(repeat.body.as_str(), t.body.as_str());

        // An unknown timeline id errors (and is never cached).
        let err = engine
            .execute(&body(
                r#"{"op":"scenario","scenario":"parallel-4","timeline":"blizzard"}"#,
            ))
            .unwrap_err();
        assert!(err.message.contains("storm20"), "{err}");
    }

    fn temp_store_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wsn-engine-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn cache_op_reports_both_tiers_and_flushes_only_memory() {
        let dir = temp_store_dir("cacheop");
        let engine = Engine::new(4).with_store(Store::open(&dir).expect("store"));
        let sim = body(r#"{"op":"simulate","packets":40}"#);
        engine.execute(&sim).unwrap();
        engine.execute(&sim).unwrap();

        let report = engine.execute(&body(r#"{"op":"cache"}"#)).unwrap();
        assert!(!report.cached, "cache op must never be cached");
        let v = serde_json::parse(&report.body).unwrap();
        assert_eq!(v.field("mem").field("entries").as_u64(), Some(1));
        assert_eq!(v.field("mem").field("hits").as_u64(), Some(1));
        assert_eq!(v.field("disk").field("enabled").as_bool(), Some(true));
        assert_eq!(v.field("disk").field("records").as_u64(), Some(1));
        assert_eq!(v.field("disk").field("appends").as_u64(), Some(1));
        assert!(v.field("disk").field("bytes").as_u64().unwrap() > 0);
        assert_eq!(v.field("flushed").as_bool(), Some(false));

        let flushed = engine
            .execute(&body(r#"{"op":"cache","action":"flush"}"#))
            .unwrap();
        let v = serde_json::parse(&flushed.body).unwrap();
        assert_eq!(v.field("flushed").as_bool(), Some(true));
        assert_eq!(v.field("flushed_entries").as_u64(), Some(1));
        assert_eq!(v.field("mem").field("entries").as_u64(), Some(0));
        // The disk tier is immutable under flush: the record survives,
        // and the next lookup is a disk-warm hit.
        assert_eq!(v.field("disk").field("records").as_u64(), Some(1));
        let after = engine.execute(&sim).unwrap();
        assert!(after.cached, "flush must not lose the disk tier");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn without_a_store_the_cache_op_reports_a_disabled_disk_tier() {
        let engine = Engine::new(4);
        let report = engine.execute(&body(r#"{"op":"cache"}"#)).unwrap();
        let v = serde_json::parse(&report.body).unwrap();
        assert_eq!(v.field("disk").field("enabled").as_bool(), Some(false));
        assert_eq!(v.field("disk").field("records").as_u64(), Some(0));
    }

    #[test]
    fn store_tier_answers_a_fresh_engine_byte_identically() {
        let dir = temp_store_dir("restart");
        let sim = body(r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0}}"#);
        let first = {
            let engine = Engine::new(4).with_store(Store::open(&dir).expect("store"));
            engine.execute(&sim).unwrap().body.as_str().to_string()
        };
        // A fresh engine over the same store — the "restart" — answers
        // from disk without computing, byte-identically.
        let engine = Engine::new(4).with_store(Store::open(&dir).expect("reopen"));
        let again = engine.execute(&sim).unwrap();
        assert!(again.cached, "restart must serve the disk-warm hit");
        assert_eq!(again.body.as_str(), first);
        // The promotion seeded the memory tier: the disk tier is not
        // consulted twice.
        let hits_before = engine.store().unwrap().stats().hits;
        assert!(engine.execute(&sim).unwrap().cached);
        assert_eq!(engine.store().unwrap().stats().hits, hits_before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_insert_matches_a_live_answer_byte_for_byte() {
        let dir = temp_store_dir("warm");
        let sim = body(r#"{"op":"simulate","packets":40,"config":{"distance_m":20.0}}"#);
        let live = {
            let engine = Engine::new(4);
            engine.execute(&sim).unwrap().body.as_str().to_string()
        };
        let engine = Engine::new(4).with_store(Store::open(&dir).expect("store"));
        let key = cache_key(&sim).unwrap();
        engine.warm_insert(&key, &live).expect("warm");
        // Idempotent on disk: re-warming the same entry appends nothing.
        engine.warm_insert(&key, &live).expect("re-warm");
        assert_eq!(engine.store().unwrap().stats().records, 1);
        let answer = engine.execute(&sim).unwrap();
        assert!(answer.cached, "warmed entry must hit");
        assert_eq!(answer.body.as_str(), live);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_reflect_cache_counters_and_are_never_cached() {
        let engine = Engine::new(4);
        let sim = body(r#"{"op":"simulate","packets":40}"#);
        engine.execute(&sim).unwrap();
        engine.execute(&sim).unwrap();
        let stats = engine.execute(&body(r#"{"op":"stats"}"#)).unwrap();
        assert!(!stats.cached);
        let v = serde_json::parse(&stats.body).unwrap();
        assert_eq!(v.field("cache_hits").as_u64(), Some(1));
        assert_eq!(v.field("cache_misses").as_u64(), Some(1));
        assert_eq!(v.field("cache_hit_rate").as_f64(), Some(0.5));
        assert_eq!(v.field("cache_entries").as_u64(), Some(1));
        // The one executed simulation surfaced its executor load.
        assert_eq!(v.field("sim").field("runs").as_u64(), Some(1));
        assert!(v.field("sim").field("events_handled").as_u64().unwrap() > 0);
    }
}
