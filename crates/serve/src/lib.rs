//! # wsn-serve
//!
//! A concurrent link-configuration query service: a long-running TCP
//! server speaking a JSON-lines protocol over the whole reproduction
//! stack — the discrete-event simulator (`simulate`), the closed-form
//! models of Eqs. 2–9 (`predict`), the epsilon-constraint optimizer
//! (`tune`), and the multi-link scenario catalog (`scenario`) — plus
//! `stats`, `cache`, and `shutdown` control ops.
//!
//! One request per line, one response line per request; responses echo
//! the request's `id` so a client may pipeline. The protocol is specified
//! in `docs/SERVE.md`; start a server with `repro serve --addr
//! 127.0.0.1:0` or embed one:
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use wsn_serve::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default())?; // 127.0.0.1, OS port
//! let addr = server.local_addr();
//! let handle = std::thread::spawn(move || server.run());
//!
//! let mut client = std::net::TcpStream::connect(addr)?;
//! writeln!(client, r#"{{"id":1,"op":"predict","config":{{"distance_m":20.0}}}}"#)?;
//! let mut line = String::new();
//! BufReader::new(client.try_clone()?).read_line(&mut line)?;
//! assert!(line.contains("\"ok\":true"));
//! writeln!(client, r#"{{"op":"shutdown"}}"#)?;
//! handle.join().unwrap()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Architecture: connections are owned by an I/O front-end selected by
//! [`ServerConfig::io_model`]. The default [`IoModel::Epoll`] front-end
//! is a sharded nonblocking event loop ([`reactor`], on a std-only
//! syscall shim in [`sys`]) where an idle connection costs one file
//! descriptor; [`IoModel::Threads`] is the classic
//! blocking-reader-thread-per-connection pool, kept for differential
//! testing. Either way, complete request lines are parsed, validated,
//! and pushed onto a bounded [`queue::JobQueue`]; a fixed worker pool
//! pops jobs, consults the tiered result cache (the sharded in-memory
//! [`cache`] over the optional persistent [`store`]) keyed by the
//! canonical bit pattern of every parameter, executes misses through the
//! shared [`engine::Engine`], and sends the response line back through
//! the connection's sink. `shutdown` closes the queue: pending jobs
//! still get answers, then everything drains and `run` returns.

#![deny(unsafe_code)] // unsafe lives only in `sys`, behind its own allow
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod protocol;
pub mod queue;
pub mod reactor;
pub mod stats;
pub mod store;
pub mod sys;

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use wsn_obs::log::EventLog;
use wsn_obs::trace::{TraceId, TraceIdGen};

use crate::engine::Engine;
use crate::protocol::{envelope_err, envelope_ok, parse_request, ErrCode, Request, RequestBody};
use crate::queue::{JobQueue, PushError};
use crate::reactor::Reactor;
use crate::store::Store;

/// Which I/O front-end owns the connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// Sharded nonblocking event loops over epoll (Linux x86-64/AArch64):
    /// an idle connection costs a file descriptor, not a thread.
    Epoll,
    /// One blocking reader thread per connection — the original model,
    /// kept for differential testing and non-epoll targets.
    Threads,
}

impl IoModel {
    /// The CLI/wire name.
    pub fn name(self) -> &'static str {
        match self {
            IoModel::Epoll => "epoll",
            IoModel::Threads => "threads",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "epoll" => IoModel::Epoll,
            "threads" => IoModel::Threads,
            _ => return None,
        })
    }
}

impl Default for IoModel {
    /// Epoll where the platform supports it, threads elsewhere.
    fn default() -> Self {
        if sys::SUPPORTED {
            IoModel::Epoll
        } else {
            IoModel::Threads
        }
    }
}

/// Tuning knobs for one server instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Listen address, `host:port` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads; 0 means available parallelism capped at 8.
    pub threads: usize,
    /// Most jobs the queue holds before backpressure kicks in.
    pub queue_depth: usize,
    /// Default per-request deadline, ms (overridable per request via
    /// `deadline_ms`); measured from enqueue to the start of execution.
    pub default_deadline_ms: u64,
    /// Result-cache shards.
    pub cache_shards: usize,
    /// Append one JSONL access-log record per request to this file
    /// (schema in `docs/SERVE.md`); `None` disables logging entirely.
    pub access_log: Option<PathBuf>,
    /// Requests whose execution takes at least this long also draw a
    /// `slow_request` warning in the access log; 0 disables the check.
    pub slow_request_ms: u64,
    /// The connection-handling front-end.
    pub io_model: IoModel,
    /// Event-loop shards under [`IoModel::Epoll`]; 0 means available
    /// parallelism capped at 4. Ignored under [`IoModel::Threads`].
    pub reactor_shards: usize,
    /// Directory of the persistent result store (tier 2 of the cache);
    /// `None` keeps the cache memory-only.
    pub store: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            queue_depth: 256,
            default_deadline_ms: 30_000,
            cache_shards: 16,
            access_log: None,
            slow_request_ms: 1_000,
            io_model: IoModel::default(),
            reactor_shards: 0,
            store: None,
        }
    }
}

/// Observability shared by every reader and worker thread: the (possibly
/// disabled) access log, the trace-id generator, and the slow threshold.
#[derive(Debug)]
struct ServeObs {
    log: EventLog,
    traces: TraceIdGen,
    slow_us: u64,
}

/// Everything a connection front-end needs to turn a request line into a
/// queued job — shared by the blocking reader threads and the reactor
/// shards, so both io-models validate, enqueue, and account identically.
#[derive(Debug)]
pub(crate) struct ReactorCtx {
    pub(crate) engine: Arc<Engine>,
    pub(crate) queue: Arc<JobQueue<Job>>,
    pub(crate) obs: Arc<ServeObs>,
    pub(crate) default_deadline_ms: u64,
}

/// How long a full queue makes a *blocking* pusher wait before refusing
/// the job. The reactor pushes with zero patience instead — an event
/// loop must never block.
const PUSH_PATIENCE: Duration = Duration::from_secs(2);

/// Accept-loop and reader polling period while idle.
const POLL: Duration = Duration::from_millis(25);

/// What can go wrong starting or running a server.
#[derive(Debug)]
pub enum ServeError {
    /// The listen address could not be bound.
    Bind {
        /// The requested address.
        addr: String,
        /// The underlying socket error.
        source: std::io::Error,
    },
    /// A non-transient I/O failure on the listening socket or the
    /// reactor's epoll machinery.
    Io(std::io::Error),
    /// The access-log file could not be opened.
    AccessLog {
        /// The requested log path.
        path: PathBuf,
        /// The underlying file error.
        source: std::io::Error,
    },
    /// The persistent result store could not be opened (I/O failure, or
    /// corruption before the tail of the last segment).
    Store {
        /// The requested store directory.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServeError::Io(e) => write!(f, "server socket error: {e}"),
            ServeError::AccessLog { path, source } => {
                write!(f, "cannot open access log {}: {source}", path.display())
            }
            ServeError::Store { path, source } => {
                write!(f, "cannot open result store {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } => Some(source),
            ServeError::Io(e) => Some(e),
            ServeError::AccessLog { source, .. } => Some(source),
            ServeError::Store { source, .. } => Some(source),
        }
    }
}

/// A connection's write half as workers see it: something that accepts
/// one response line. The blocking model writes straight to the socket
/// under a lock; the reactor buffers and wakes the owning shard.
pub(crate) trait ResponseSink: Send + Sync + std::fmt::Debug {
    /// Delivers one response line (terminator added by the sink). Failed
    /// or late deliveries are dropped silently — a vanished client is
    /// not a server error.
    fn send_line(&self, line: &str);
}

/// One client connection's write half under [`IoModel::Threads`], shared
/// between its reader thread and every worker answering its requests.
#[derive(Debug)]
struct Conn {
    writer: Mutex<TcpStream>,
}

impl ResponseSink for Conn {
    /// Writes one response line; a failed write means the client left,
    /// which is their prerogative — the server stays up.
    fn send_line(&self, line: &str) {
        let mut writer = self.writer.lock().expect("connection writer");
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.write_all(b"\n");
        let _ = writer.flush();
    }
}

/// One unit of work for the pool.
#[derive(Debug)]
pub(crate) struct Job {
    request: Request,
    conn: Arc<dyn ResponseSink>,
    /// Per-request trace id; echoed in the response envelope and every
    /// access-log record so a client complaint can be joined to the log.
    trace: TraceId,
    /// When the front-end enqueued this job — the start of the
    /// queue-wait clock.
    enqueued: Instant,
    deadline: Instant,
    /// The client's address, for the access log.
    peer: Arc<str>,
}

/// A bound, not-yet-running query server.
///
/// The engine (and with it the tiered result cache) exists from
/// [`bind`](Server::bind) on, so a warm-up pass ([`warm`](Server::warm))
/// can seed the cache before the first client connects.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local: SocketAddr,
    config: ServerConfig,
    engine: Arc<Engine>,
}

impl Server {
    /// Binds the configured address and opens the persistent store (when
    /// configured).
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when the address cannot be bound (in use,
    /// unresolvable, privileged port…); [`ServeError::Store`] when the
    /// store directory cannot be opened or is corrupt.
    pub fn bind(config: ServerConfig) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Bind {
            addr: config.addr.clone(),
            source,
        })?;
        let local = listener.local_addr().map_err(ServeError::Io)?;
        let mut engine = Engine::new(config.cache_shards);
        if let Some(path) = &config.store {
            let store = Store::open(path).map_err(|source| ServeError::Store {
                path: path.clone(),
                source,
            })?;
            engine = engine.with_store(store);
        }
        Ok(Server {
            listener,
            local,
            config,
            engine: Arc::new(engine),
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Seeds the tiered cache with precomputed `(cache key, result
    /// body)` entries — the `--warm-from-campaign` path. Returns how
    /// many entries were installed.
    ///
    /// # Errors
    ///
    /// Propagates store append failures.
    pub fn warm(
        &self,
        entries: impl IntoIterator<Item = (String, String)>,
    ) -> std::io::Result<usize> {
        let mut installed = 0usize;
        for (key, body) in entries {
            self.engine.warm_insert(&key, &body)?;
            installed += 1;
        }
        Ok(installed)
    }

    /// Runs the accept loop until a `shutdown` request drains the server.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the listening socket (or, under
    /// [`IoModel::Epoll`], the reactor) itself fails; per-connection
    /// errors never abort the server.
    pub fn run(self) -> Result<(), ServeError> {
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get().min(8))
        } else {
            self.config.threads
        };
        let engine = Arc::clone(&self.engine);
        let queue: Arc<JobQueue<Job>> = Arc::new(JobQueue::new(self.config.queue_depth));
        let shutdown = Arc::new(AtomicBool::new(false));
        let log = match &self.config.access_log {
            Some(path) => EventLog::to_file(path).map_err(|source| ServeError::AccessLog {
                path: path.clone(),
                source,
            })?,
            None => EventLog::disabled(),
        };
        let obs = Arc::new(ServeObs {
            log,
            traces: TraceIdGen::new(),
            slow_us: self.config.slow_request_ms.saturating_mul(1_000),
        });
        obs.log
            .info("server_started")
            .str("addr", &self.local.to_string())
            .str("io_model", self.config.io_model.name())
            .u64("threads", threads as u64)
            .u64("queue_depth", self.config.queue_depth as u64)
            .emit();

        self.listener
            .set_nonblocking(true)
            .map_err(ServeError::Io)?;

        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let obs = Arc::clone(&obs);
            workers.push(std::thread::spawn(move || {
                worker_loop(&engine, &queue, &shutdown, &obs)
            }));
        }

        let ctx = Arc::new(ReactorCtx {
            engine: Arc::clone(&engine),
            queue: Arc::clone(&queue),
            obs: Arc::clone(&obs),
            default_deadline_ms: self.config.default_deadline_ms,
        });

        match self.config.io_model {
            IoModel::Epoll => {
                let shards = if self.config.reactor_shards == 0 {
                    std::thread::available_parallelism().map_or(1, |n| n.get().min(4))
                } else {
                    self.config.reactor_shards
                };
                let mut reactor =
                    Reactor::start(shards, Arc::clone(&ctx)).map_err(ServeError::Io)?;
                while !shutdown.load(Ordering::SeqCst) {
                    match self.listener.accept() {
                        Ok((stream, peer)) => {
                            // Response lines are small; Nagle+delayed-ACK
                            // would add ~40 ms to every answer.
                            let _ = stream.set_nodelay(true);
                            reactor.assign(stream, peer);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(ServeError::Io(e)),
                    }
                }
                // Graceful drain: the queue is closed, workers finish
                // every pending job (buffering answers through the still-
                // running shards), and only then do the shards stop and
                // deliver what remains.
                queue.close();
                for worker in workers {
                    let _ = worker.join();
                }
                reactor.shutdown();
            }
            IoModel::Threads => {
                let mut readers: Vec<std::thread::JoinHandle<()>> = Vec::new();
                while !shutdown.load(Ordering::SeqCst) {
                    match self.listener.accept() {
                        Ok((stream, peer)) => {
                            let _ = stream.set_nodelay(true);
                            let ctx = Arc::clone(&ctx);
                            let shutdown = Arc::clone(&shutdown);
                            readers.push(std::thread::spawn(move || {
                                connection_loop(stream, peer, &ctx, &shutdown);
                            }));
                            readers.retain(|r| !r.is_finished());
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(ServeError::Io(e)),
                    }
                }
                // Graceful drain: no new jobs, pending ones still answered.
                queue.close();
                for reader in readers {
                    let _ = reader.join();
                }
                for worker in workers {
                    let _ = worker.join();
                }
            }
        }

        let snapshot = engine.stats.snapshot(
            engine.cache.hits(),
            engine.cache.misses(),
            engine.cache.len(),
            engine.cache.evictions(),
        );
        obs.log
            .info("server_stopped")
            .u64("requests", snapshot.requests)
            .u64("errors", snapshot.errors)
            .u64("deadline_exceeded", snapshot.deadline_exceeded)
            .f64("uptime_s", snapshot.uptime_s)
            .emit();
        Ok(())
    }
}

/// Writes one access-log record; every request that reached the queue
/// gets exactly one, whatever its outcome.
#[allow(clippy::too_many_arguments)]
fn log_request(
    obs: &ServeObs,
    job: &Job,
    outcome: &str,
    ok: bool,
    cached: bool,
    queue_wait_us: u64,
    exec_us: u64,
    bytes: usize,
) {
    obs.log
        .info("request")
        .str("trace", &job.trace.to_string())
        .str("op", job.request.op.name())
        .str("id", &job.request.id)
        .str("peer", &job.peer)
        .str("outcome", outcome)
        .bool("ok", ok)
        .bool("cached", cached)
        .u64("queue_wait_us", queue_wait_us)
        .u64("exec_us", exec_us)
        .u64("bytes", bytes as u64)
        .emit();
}

/// Pops jobs until the queue closes and drains, answering each one.
///
/// Timing contract: `queue_wait_us` runs from enqueue to pop and lands in
/// the queue-wait histogram for every popped job; `exec_us` (the
/// envelope's `service_us`) runs from pop to answer and is recorded only
/// for jobs that actually executed — deadline-expired jobs are counted
/// under `deadline_exceeded` instead of polluting the execution
/// distribution with near-zero samples.
fn worker_loop(engine: &Engine, queue: &JobQueue<Job>, shutdown: &AtomicBool, obs: &ServeObs) {
    while let Some(job) = queue.pop() {
        let popped = Instant::now();
        let queue_wait_us = popped.duration_since(job.enqueued).as_micros() as u64;
        engine.stats.record_dequeued(queue_wait_us);
        let id = &job.request.id;
        let op = job.request.op;
        let trace = job.trace.to_string();

        if popped > job.deadline {
            let overdue = popped.duration_since(job.deadline).as_millis();
            job.conn.send_line(&envelope_err(
                id,
                Some(op),
                Some(&trace),
                ErrCode::Deadline,
                &format!("deadline exceeded: job spent its budget (+{overdue} ms) in the queue"),
            ));
            engine.stats.record_deadline_exceeded(op);
            log_request(
                obs,
                &job,
                "deadline_exceeded",
                false,
                false,
                queue_wait_us,
                0,
                0,
            );
            obs.log
                .warn("deadline_exceeded")
                .str("trace", &trace)
                .str("op", op.name())
                .str("peer", &job.peer)
                .u64("queue_wait_us", queue_wait_us)
                .u64("overdue_ms", overdue as u64)
                .emit();
            continue;
        }

        if matches!(job.request.body, RequestBody::Shutdown) {
            let body = "{\"shutting_down\":true}";
            let exec_us = popped.elapsed().as_micros() as u64;
            job.conn
                .send_line(&envelope_ok(id, op, false, exec_us, &trace, body));
            engine.stats.record_done(op, true, exec_us);
            log_request(
                obs,
                &job,
                "ok",
                true,
                false,
                queue_wait_us,
                exec_us,
                body.len(),
            );
            shutdown.store(true, Ordering::SeqCst);
            queue.close();
            continue;
        }

        match engine.execute_with_deadline(&job.request.body, Some(job.deadline)) {
            Ok(answer) => {
                let exec_us = popped.elapsed().as_micros() as u64;
                job.conn.send_line(&envelope_ok(
                    id,
                    op,
                    answer.cached,
                    exec_us,
                    &trace,
                    &answer.body,
                ));
                engine.stats.record_done(op, true, exec_us);
                log_request(
                    obs,
                    &job,
                    "ok",
                    true,
                    answer.cached,
                    queue_wait_us,
                    exec_us,
                    answer.body.len(),
                );
                if obs.slow_us > 0 && exec_us >= obs.slow_us {
                    obs.log
                        .warn("slow_request")
                        .str("trace", &trace)
                        .str("op", op.name())
                        .u64("exec_us", exec_us)
                        .u64("threshold_us", obs.slow_us)
                        .emit();
                }
            }
            Err(error) => {
                let exec_us = popped.elapsed().as_micros() as u64;
                let expired_mid_scan = error.code == ErrCode::Deadline;
                job.conn.send_line(&envelope_err(
                    id,
                    Some(op),
                    Some(&trace),
                    error.code,
                    &error.message,
                ));
                // A scan the engine aborted cooperatively counts with the
                // jobs that died in the queue, not as an executed error —
                // both are the same client-visible contract (`deadline`),
                // and its partial exec time would poison the quantiles.
                if expired_mid_scan {
                    engine.stats.record_deadline_exceeded(op);
                    log_request(
                        obs,
                        &job,
                        "deadline_exceeded",
                        false,
                        false,
                        queue_wait_us,
                        exec_us,
                        0,
                    );
                } else {
                    engine.stats.record_done(op, false, exec_us);
                    log_request(obs, &job, "error", false, false, queue_wait_us, exec_us, 0);
                }
            }
        }
    }
}

/// What the front-end should do with the connection after one line.
pub(crate) enum LineDisposition {
    /// Keep reading.
    Continue,
    /// Stop serving this connection (after flushing pending answers).
    Close,
}

/// Validates one request line and enqueues it — the single path shared
/// by both io-models, so they reject, account, and log identically. The
/// only model-specific choice is `patience`: how long a full queue may
/// block the caller (2 s for a dedicated reader thread, zero for an
/// event-loop shard).
pub(crate) fn handle_request_line(
    line: &str,
    sink: &Arc<dyn ResponseSink>,
    peer: &Arc<str>,
    ctx: &ReactorCtx,
    patience: Duration,
) -> LineDisposition {
    if line.trim().is_empty() {
        return LineDisposition::Continue;
    }
    let started = Instant::now();
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(rejection) => {
            sink.send_line(&envelope_err(
                &rejection.id,
                None,
                None,
                rejection.code,
                &rejection.error,
            ));
            ctx.engine.stats.record_rejected(None);
            ctx.obs
                .log
                .warn("request_rejected")
                .str("peer", peer)
                .str("id", &rejection.id)
                .str("code", rejection.code.name())
                .str("error", &rejection.error)
                .emit();
            return LineDisposition::Continue;
        }
    };
    let budget_ms = request.deadline_ms.unwrap_or(ctx.default_deadline_ms);
    let job = Job {
        deadline: started + Duration::from_millis(budget_ms),
        conn: Arc::clone(sink),
        trace: ctx.obs.traces.next(),
        enqueued: started,
        peer: Arc::clone(peer),
        request,
    };
    ctx.engine.stats.record_enqueued();
    match ctx.queue.push(job, patience) {
        Ok(()) => LineDisposition::Continue,
        Err(PushError::Full(job)) => {
            ctx.engine.stats.record_push_refused();
            job.conn.send_line(&envelope_err(
                &job.request.id,
                Some(job.request.op),
                Some(&job.trace.to_string()),
                ErrCode::Overloaded,
                "server busy: request queue is full",
            ));
            ctx.engine.stats.record_rejected(Some(job.request.op));
            ctx.obs
                .log
                .warn("queue_full")
                .str("trace", &job.trace.to_string())
                .str("op", job.request.op.name())
                .str("peer", peer)
                .emit();
            LineDisposition::Continue
        }
        Err(PushError::Closed(job)) => {
            ctx.engine.stats.record_push_refused();
            job.conn.send_line(&envelope_err(
                &job.request.id,
                Some(job.request.op),
                Some(&job.trace.to_string()),
                ErrCode::Overloaded,
                "server is shutting down",
            ));
            LineDisposition::Close
        }
    }
}

/// Outcome of reading one line off a connection.
enum LineRead {
    /// A complete line landed in the buffer.
    Line,
    /// Clean end of stream.
    Eof,
    /// Server-wide shutdown observed while idle.
    Shutdown,
    /// The line exceeded [`protocol::MAX_LINE_BYTES`].
    Oversized,
    /// The connection broke.
    Failed,
}

/// Reads one `\n`-terminated line, polling the shutdown flag on read
/// timeouts and refusing lines longer than the protocol cap.
fn read_line_capped(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> LineRead {
    buf.clear();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Timeouts only end an *idle* wait; mid-line we keep
                // collecting so a slow writer is not cut off.
                if shutdown.load(Ordering::SeqCst) && buf.is_empty() {
                    return LineRead::Shutdown;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Failed,
        };
        if chunk.is_empty() {
            return if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line // unterminated final line still counts
            };
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                return if buf.len() > protocol::MAX_LINE_BYTES {
                    LineRead::Oversized
                } else {
                    LineRead::Line
                };
            }
            None => {
                let n = chunk.len();
                buf.extend_from_slice(chunk);
                reader.consume(n);
                if buf.len() > protocol::MAX_LINE_BYTES {
                    return LineRead::Oversized;
                }
            }
        }
    }
}

/// Serves one client under [`IoModel::Threads`]: reads lines, validates,
/// enqueues; malformed input draws an error response, never a dead
/// server.
fn connection_loop(stream: TcpStream, peer: SocketAddr, ctx: &ReactorCtx, shutdown: &AtomicBool) {
    if stream.set_nonblocking(false).is_err() || stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let sink: Arc<dyn ResponseSink> = Arc::new(Conn {
        writer: Mutex::new(stream),
    });
    let peer: Arc<str> = Arc::from(peer.to_string());
    let mut reader = BufReader::new(read_half);
    let mut buf: Vec<u8> = Vec::new();

    loop {
        match read_line_capped(&mut reader, &mut buf, shutdown) {
            LineRead::Eof | LineRead::Shutdown | LineRead::Failed => return,
            LineRead::Oversized => {
                sink.send_line(&envelope_err(
                    "null",
                    None,
                    None,
                    ErrCode::Oversized,
                    &format!(
                        "request line exceeds {} bytes; closing connection",
                        protocol::MAX_LINE_BYTES
                    ),
                ));
                ctx.engine.stats.record_rejected(None);
                ctx.obs
                    .log
                    .warn("oversized_line")
                    .str("peer", &peer)
                    .u64("limit_bytes", protocol::MAX_LINE_BYTES as u64)
                    .emit();
                // Absorb what the client already sent (bounded) before
                // closing, so the error line is not clobbered by a reset.
                let mut drained = 0usize;
                while drained < (8 << 20) {
                    match reader.fill_buf() {
                        Ok([]) | Err(_) => break,
                        Ok(chunk) => {
                            let n = chunk.len();
                            drained += n;
                            reader.consume(n);
                        }
                    }
                }
                return;
            }
            LineRead::Line => {}
        }
        let line = String::from_utf8_lossy(&buf);
        match handle_request_line(&line, &sink, &peer, ctx, PUSH_PATIENCE) {
            LineDisposition::Continue => {}
            LineDisposition::Close => return,
        }
    }
}

/// Convenient glob-import of the serving layer.
pub mod prelude {
    pub use crate::engine::{Engine, ExecError};
    pub use crate::protocol::{ErrCode, Op, Request, RequestBody};
    pub use crate::stats::{LatencyQuantiles, ServeStats, StatsSnapshot};
    pub use crate::store::Store;
    pub use crate::{IoModel, ServeError, Server, ServerConfig};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn request_line(client: &mut TcpStream, line: &str) -> String {
        writeln!(client, "{line}").unwrap();
        let mut response = String::new();
        BufReader::new(client.try_clone().unwrap())
            .read_line(&mut response)
            .unwrap();
        response
    }

    fn roundtrip_on(io_model: IoModel) {
        let server = Server::bind(ServerConfig {
            threads: 2,
            io_model,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());

        let mut client = TcpStream::connect(addr).unwrap();
        let response = request_line(&mut client, r#"{"id":"q","op":"predict"}"#);
        assert!(response.contains("\"ok\":true"), "{response}");
        assert!(response.contains("\"id\":\"q\""), "{response}");

        let response = request_line(&mut client, r#"{"id":2,"op":"shutdown"}"#);
        assert!(response.contains("shutting_down"), "{response}");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn bind_run_query_shutdown_roundtrip() {
        roundtrip_on(IoModel::default());
    }

    #[test]
    fn bind_run_query_shutdown_roundtrip_on_threads_model() {
        roundtrip_on(IoModel::Threads);
    }

    #[test]
    fn bind_failure_is_a_typed_error() {
        let err = Server::bind(ServerConfig {
            addr: "256.0.0.1:1".to_string(),
            ..ServerConfig::default()
        })
        .unwrap_err();
        match err {
            ServeError::Bind { addr, .. } => assert_eq!(addr, "256.0.0.1:1"),
            other => panic!("expected Bind, got {other}"),
        }
    }

    #[test]
    fn io_model_names_round_trip() {
        assert_eq!(IoModel::from_name("epoll"), Some(IoModel::Epoll));
        assert_eq!(IoModel::from_name("threads"), Some(IoModel::Threads));
        assert_eq!(IoModel::from_name("fibers"), None);
        assert_eq!(IoModel::Epoll.name(), "epoll");
        assert_eq!(IoModel::Threads.name(), "threads");
    }
}
