//! The JSON-lines wire protocol: request parsing, canonical cache keys,
//! and response envelope rendering.
//!
//! One request per line, one response line per request. Requests are JSON
//! objects with an `"op"` field naming the operation plus op-specific
//! fields; responses echo the request's `"id"` (any string, number, or
//! `null`) so clients with several requests in flight on one connection
//! can route replies. The full schema lives in `docs/SERVE.md`.
//!
//! Parsing is strict: unknown top-level or config fields are rejected so a
//! typo (`"payload_byte"`) fails loudly instead of silently simulating the
//! default. The canonical [`cache_key`] is built from the exact bit
//! patterns of every parameter (`f64::to_bits` for distances), so the
//! result cache never conflates two requests that could differ in even the
//! last ulp.

use wsn_link_sim::catalog::{all_timelines, build_scenario, build_timeline};
use wsn_models::optimize::Metric;
use wsn_params::config::StackConfig;
use wsn_params::timeline::{ScenarioTimeline, TopologyEvent};
use wsn_sim_engine::mode::EngineMode;

use serde_json::Value;

/// Longest accepted request line, bytes (1 MiB). Longer lines draw an
/// error response and the connection is closed.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Most packets one `simulate`/`scenario` request may ask for — a single
/// query is a question, not a campaign (the paper's full protocol is 4500
/// packets per configuration; this leaves 20× headroom).
pub const MAX_PACKETS: u64 = 100_000;

/// Default packets per query, matching the harness's quick scale.
pub const DEFAULT_PACKETS: u64 = 400;

/// Default experiment seed, shared with the campaign runner.
pub const DEFAULT_SEED: u64 = 0x5EED;

/// The protocol version this server speaks. Every response envelope
/// carries it as `"proto"`, and a request carrying a different `"proto"`
/// is rejected so a future client never silently misreads v1 answers.
pub const PROTO_VERSION: u64 = 1;

/// Stable machine-readable error codes, carried as `"code"` in every
/// `ok:false` envelope. Clients branch on these; the `"error"` string is
/// for humans and may change wording freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// The request parsed as JSON but something in it is wrong: unknown
    /// or ill-typed fields, out-of-range parameters, invalid JSON,
    /// unsupported `proto`, unknown scenario/timeline/metric ids.
    BadRequest,
    /// The `op` field names no known operation.
    UnknownOp,
    /// The `engine` field names no backend valid for this op.
    UnknownEngine,
    /// The request's deadline expired before a worker could answer it.
    Deadline,
    /// The bounded worker queue refused the request (full, or draining
    /// for shutdown).
    Overloaded,
    /// The request line exceeded [`MAX_LINE_BYTES`]; the connection is
    /// closed after this answer.
    Oversized,
    /// The server failed internally (e.g. serialization); never the
    /// client's fault.
    Internal,
}

impl ErrCode {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrCode::BadRequest => "bad_request",
            ErrCode::UnknownOp => "unknown_op",
            ErrCode::UnknownEngine => "unknown_engine",
            ErrCode::Deadline => "deadline",
            ErrCode::Overloaded => "overloaded",
            ErrCode::Oversized => "oversized",
            ErrCode::Internal => "internal",
        }
    }
}

/// The service's operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Run one configuration through the discrete-event link simulator.
    Simulate,
    /// Evaluate one configuration with the closed-form models (Eqs. 2–9).
    Predict,
    /// Constrained multi-objective search over the paper grid.
    Tune,
    /// The per-distance Pareto front (and knee) over selected metrics.
    Pareto,
    /// Budget-bounded search over the paper grid.
    Explore,
    /// Run a named multi-link scenario from the catalog.
    Scenario,
    /// Report service counters.
    Stats,
    /// Report tiered-cache stats; optionally flush the memory tier.
    Cache,
    /// Gracefully drain and stop the server.
    Shutdown,
}

impl Op {
    /// Number of operations (sizes the per-op counters).
    pub const COUNT: usize = 9;

    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Op::Simulate => "simulate",
            Op::Predict => "predict",
            Op::Tune => "tune",
            Op::Pareto => "pareto",
            Op::Explore => "explore",
            Op::Scenario => "scenario",
            Op::Stats => "stats",
            Op::Cache => "cache",
            Op::Shutdown => "shutdown",
        }
    }

    /// A dense index for counter arrays.
    pub fn index(self) -> usize {
        match self {
            Op::Simulate => 0,
            Op::Predict => 1,
            Op::Tune => 2,
            Op::Scenario => 3,
            Op::Stats => 4,
            Op::Cache => 5,
            Op::Shutdown => 6,
            Op::Pareto => 7,
            Op::Explore => 8,
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "simulate" => Op::Simulate,
            "predict" => Op::Predict,
            "tune" => Op::Tune,
            "pareto" => Op::Pareto,
            "explore" => Op::Explore,
            "scenario" => Op::Scenario,
            "stats" => Op::Stats,
            "cache" => Op::Cache,
            "shutdown" => Op::Shutdown,
            _ => return None,
        })
    }
}

/// The evaluation context of an optimization op: the paper's default
/// hallway channel under periodic load, or the Sec. VIII-C case study —
/// a shadowed 35 m link carrying a bulk transfer (saturating traffic,
/// `LinkBudget::case_study` for the golden predictor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Profile {
    /// The hallway channel of Secs. III–VII (the default).
    #[default]
    Paper,
    /// The shadowed bulk-transfer case study of Sec. VIII-C.
    CaseStudy,
}

impl Profile {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Paper => "paper",
            Profile::CaseStudy => "case-study",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "paper" => Profile::Paper,
            "case-study" => Profile::CaseStudy,
            _ => return None,
        })
    }
}

/// A parsed, validated request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The client's `"id"` value, re-rendered as canonical JSON for the
    /// response echo (`null` when absent).
    pub id: String,
    /// The operation.
    pub op: Op,
    /// Optional per-request deadline override, milliseconds from enqueue.
    pub deadline_ms: Option<u64>,
    /// The op-specific payload.
    pub body: RequestBody,
}

/// Op-specific request payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// `simulate`: one configuration through the event-driven simulator.
    Simulate {
        /// The stack configuration (missing fields take the defaults).
        config: StackConfig,
        /// Packets to generate.
        packets: u64,
        /// Experiment seed.
        seed: u64,
        /// Which simulation backend answers (`"golden"` default).
        engine: EngineMode,
    },
    /// `predict`: closed-form evaluation.
    Predict {
        /// The stack configuration.
        config: StackConfig,
        /// Which prediction backend answers: `"golden"` (default) is the
        /// paper's fitted models (Eqs. 2–9), `"analytic"` the M/G/1
        /// closed-form engine. `"fast"` is rejected — sampling backends
        /// belong to `simulate`.
        engine: EngineMode,
    },
    /// `tune`: epsilon-constrained optimization over the paper grid.
    Tune {
        /// Metric to minimize (goodput internally maximized).
        objective: Metric,
        /// `metric ≤ max` feasibility constraints.
        constraints: Vec<(Metric, f64)>,
        /// Restrict the grid to one distance (meters).
        distance_m: Option<f64>,
        /// Backend validating the winner (`"golden"` default).
        engine: EngineMode,
    },
    /// `pareto`: the non-dominated set per distance over chosen metrics.
    Pareto {
        /// Metrics spanning the front, in request order (2..=4, distinct).
        metrics: Vec<Metric>,
        /// Restrict the grid to one distance (meters).
        distance_m: Option<f64>,
        /// Backend evaluating the grid (`"golden"` default; fast rejected).
        engine: EngineMode,
        /// Channel/traffic context (`"paper"` default).
        profile: Profile,
    },
    /// `explore`: budget-bounded constrained search over the grid.
    Explore {
        /// Metric to minimize (goodput internally maximized).
        objective: Metric,
        /// `metric ≤ max` feasibility constraints.
        constraints: Vec<(Metric, f64)>,
        /// Hard cap on candidate evaluations.
        budget: u64,
        /// Restrict the grid to one distance (meters).
        distance_m: Option<f64>,
        /// Backend scoring candidates (`"golden"` default).
        engine: EngineMode,
        /// Channel/traffic context (`"paper"` default).
        profile: Profile,
    },
    /// `scenario`: a named multi-link topology from the catalog.
    Scenario {
        /// Catalog id (`"hidden-pair"`, …).
        scenario: String,
        /// Packets per link.
        packets: u64,
        /// Experiment seed.
        seed: u64,
        /// Optional topology timeline replayed over the scenario.
        timeline: Option<TimelineSpec>,
    },
    /// `stats`: service counters.
    Stats,
    /// `cache`: tiered-cache stats, optionally flushing the memory tier.
    Cache {
        /// True when the request carried `"action":"flush"`.
        flush: bool,
    },
    /// `shutdown`: graceful drain.
    Shutdown,
}

/// How a `scenario` request names its topology timeline: a catalog id
/// (`"storm20"`, `"waypoint"`) or an inline [`ScenarioTimeline`] carried
/// in the request body.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineSpec {
    /// A cataloged timeline id, built against the request's scenario.
    Id(String),
    /// A full timeline object (or bare event array) from the request.
    Inline(ScenarioTimeline),
}

impl TimelineSpec {
    /// Resolves the spec against a scenario id into a validated timeline.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown timeline id (with the known
    /// set) or the validation failure of an inline timeline.
    pub fn resolve(&self, scenario_id: &str) -> Result<ScenarioTimeline, String> {
        let scenario = build_scenario(scenario_id)
            .ok_or_else(|| format!("unknown scenario '{scenario_id}'"))?;
        let timeline = match self {
            TimelineSpec::Id(id) => build_timeline(id, &scenario).ok_or_else(|| {
                let known: Vec<&str> = all_timelines().iter().map(|(n, _)| *n).collect();
                format!("unknown timeline '{id}'; known: {}", known.join(", "))
            })?,
            TimelineSpec::Inline(timeline) => timeline.clone(),
        };
        timeline
            .validate(scenario.len())
            .map_err(|e| format!("invalid timeline: {e}"))?;
        Ok(timeline)
    }
}

/// A rejected request: the echoable id (always well-formed JSON), the
/// machine-readable code, and the human error message.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejection {
    /// Canonical id echo (`null` when the id was absent or unreadable).
    pub id: String,
    /// The stable error code.
    pub code: ErrCode,
    /// What was wrong.
    pub error: String,
}

impl Rejection {
    fn anonymous(error: String) -> Self {
        Rejection {
            id: "null".to_string(),
            code: ErrCode::BadRequest,
            error,
        }
    }
}

/// Renders a request `"id"` value back to canonical JSON for the echo.
fn canonical_id(value: &Value) -> Result<String, String> {
    match value {
        Value::Null => Ok("null".to_string()),
        Value::U64(x) => Ok(x.to_string()),
        Value::I64(x) => Ok(x.to_string()),
        Value::Str(s) => serde_json::to_string(s).map_err(|e| e.to_string()),
        Value::F64(x) => serde_json::to_string(x).map_err(|e| e.to_string()),
        other => Err(format!(
            "id must be a string, number, or null, got {}",
            other.kind()
        )),
    }
}

fn require_u64(value: &Value, what: &str) -> Result<u64, String> {
    value.as_u64().ok_or_else(|| {
        format!(
            "{what} must be a non-negative integer, got {}",
            value.kind()
        )
    })
}

fn require_f64(value: &Value, what: &str) -> Result<f64, String> {
    value
        .as_f64()
        .ok_or_else(|| format!("{what} must be a number, got {}", value.kind()))
}

/// Builds a [`StackConfig`] from a request's `"config"` object. Missing
/// fields keep the paper's defaults; unknown fields are rejected.
fn parse_config(value: &Value) -> Result<StackConfig, String> {
    let entries = value
        .as_object()
        .ok_or_else(|| format!("config must be an object, got {}", value.kind()))?;
    let mut builder = StackConfig::builder();
    for (key, field) in entries {
        match key.as_str() {
            "distance_m" => {
                builder.distance_m(require_f64(field, "config.distance_m")?);
            }
            "power_level" => {
                let raw = require_u64(field, "config.power_level")?;
                builder.power_level(
                    u8::try_from(raw)
                        .map_err(|_| format!("config.power_level {raw} out of range"))?,
                );
            }
            "max_tries" => {
                let raw = require_u64(field, "config.max_tries")?;
                builder.max_tries(
                    u8::try_from(raw)
                        .map_err(|_| format!("config.max_tries {raw} out of range"))?,
                );
            }
            "retry_delay_ms" => {
                let raw = require_u64(field, "config.retry_delay_ms")?;
                builder.retry_delay_ms(
                    u32::try_from(raw)
                        .map_err(|_| format!("config.retry_delay_ms {raw} out of range"))?,
                );
            }
            "queue_cap" => {
                let raw = require_u64(field, "config.queue_cap")?;
                builder.queue_cap(
                    u16::try_from(raw)
                        .map_err(|_| format!("config.queue_cap {raw} out of range"))?,
                );
            }
            "packet_interval_ms" => {
                let raw = require_u64(field, "config.packet_interval_ms")?;
                builder.packet_interval_ms(
                    u32::try_from(raw)
                        .map_err(|_| format!("config.packet_interval_ms {raw} out of range"))?,
                );
            }
            "payload_bytes" => {
                let raw = require_u64(field, "config.payload_bytes")?;
                builder.payload_bytes(
                    u16::try_from(raw)
                        .map_err(|_| format!("config.payload_bytes {raw} out of range"))?,
                );
            }
            other => return Err(format!("unknown config field '{other}'")),
        }
    }
    builder.build().map_err(|e| e.to_string())
}

fn metric_from_name(name: &str) -> Result<Metric, String> {
    Ok(match name {
        "energy" => Metric::Energy,
        "goodput" => Metric::Goodput,
        "delay" => Metric::Delay,
        "loss" => Metric::Loss,
        other => {
            return Err(format!(
                "unknown metric '{other}'; known: energy, goodput, delay, loss"
            ))
        }
    })
}

/// The wire name of a metric (for cache keys and result bodies).
pub fn metric_name(metric: Metric) -> &'static str {
    match metric {
        Metric::Energy => "energy",
        Metric::Goodput => "goodput",
        Metric::Delay => "delay",
        Metric::Loss => "loss",
    }
}

fn parse_packets(value: Option<&Value>) -> Result<u64, String> {
    let packets = match value {
        Some(v) => require_u64(v, "packets")?,
        None => DEFAULT_PACKETS,
    };
    if packets == 0 {
        return Err("packets must be at least 1".to_string());
    }
    if packets > MAX_PACKETS {
        return Err(format!(
            "packets {packets} exceeds the per-request cap {MAX_PACKETS}"
        ));
    }
    Ok(packets)
}

/// Parses a `scenario` request's optional `"timeline"` field: a string
/// catalog id, a full `ScenarioTimeline` object, or a bare event array.
fn parse_timeline(value: &Value) -> Result<Option<TimelineSpec>, String> {
    match value {
        Value::Null => Ok(None),
        Value::Str(id) => Ok(Some(TimelineSpec::Id(id.clone()))),
        Value::Object(_) => {
            let timeline: ScenarioTimeline = serde_json::from_value(value)
                .map_err(|e| format!("timeline object does not parse: {e}"))?;
            Ok(Some(TimelineSpec::Inline(timeline)))
        }
        Value::Array(_) => {
            let events: Vec<TopologyEvent> = serde_json::from_value(value)
                .map_err(|e| format!("timeline events do not parse: {e}"))?;
            Ok(Some(TimelineSpec::Inline(ScenarioTimeline::new(events))))
        }
        other => Err(format!(
            "timeline must be a catalog id string, a timeline object, or an event array, got {}",
            other.kind()
        )),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`Rejection`] carrying the best-effort id echo and a message
/// describing the first problem found.
pub fn parse_request(line: &str) -> Result<Request, Rejection> {
    let root =
        serde_json::parse(line).map_err(|e| Rejection::anonymous(format!("invalid JSON: {e}")))?;
    let entries = root.as_object().ok_or_else(|| {
        Rejection::anonymous(format!("request must be an object, got {}", root.kind()))
    })?;

    let id = match canonical_id(root.field("id")) {
        Ok(id) => id,
        Err(e) => return Err(Rejection::anonymous(e)),
    };
    let reject_code = |code: ErrCode, error: String| Rejection {
        id: id.clone(),
        code,
        error,
    };
    let reject = |error: String| reject_code(ErrCode::BadRequest, error);

    match root.field("proto") {
        Value::Null => {}
        v => {
            let proto = require_u64(v, "proto").map_err(&reject)?;
            if proto != PROTO_VERSION {
                return Err(reject(format!(
                    "unsupported proto {proto}; this server speaks proto {PROTO_VERSION}"
                )));
            }
        }
    }

    let op_value = root.field("op");
    let op_name = op_value
        .as_str()
        .ok_or_else(|| reject("missing or non-string 'op'".to_string()))?;
    let op = Op::from_name(op_name).ok_or_else(|| {
        reject_code(
            ErrCode::UnknownOp,
            format!(
                "unknown op '{op_name}'; known: simulate, predict, tune, pareto, explore, scenario, stats, cache, shutdown"
            ),
        )
    })?;

    let allowed: &[&str] = match op {
        Op::Simulate => &[
            "id",
            "op",
            "proto",
            "deadline_ms",
            "config",
            "packets",
            "seed",
            "engine",
        ],
        Op::Predict => &["id", "op", "proto", "deadline_ms", "config", "engine"],
        Op::Tune => &[
            "id",
            "op",
            "proto",
            "deadline_ms",
            "objective",
            "constraints",
            "distance_m",
            "engine",
        ],
        Op::Pareto => &[
            "id",
            "op",
            "proto",
            "deadline_ms",
            "metrics",
            "distance_m",
            "engine",
            "profile",
        ],
        Op::Explore => &[
            "id",
            "op",
            "proto",
            "deadline_ms",
            "objective",
            "constraints",
            "budget",
            "distance_m",
            "engine",
            "profile",
        ],
        Op::Scenario => &[
            "id",
            "op",
            "proto",
            "deadline_ms",
            "scenario",
            "packets",
            "seed",
            "timeline",
        ],
        Op::Cache => &["id", "op", "proto", "deadline_ms", "action"],
        Op::Stats | Op::Shutdown => &["id", "op", "proto", "deadline_ms"],
    };
    for (key, _) in entries {
        if !allowed.contains(&key.as_str()) {
            return Err(reject(format!("unknown field '{key}' for op '{op_name}'")));
        }
    }

    let deadline_ms = match root.field("deadline_ms") {
        Value::Null => None,
        v => Some(require_u64(v, "deadline_ms").map_err(&reject)?),
    };

    let seed_of = |root: &Value| -> Result<u64, String> {
        match root.field("seed") {
            Value::Null => Ok(DEFAULT_SEED),
            v => require_u64(v, "seed"),
        }
    };
    let packets_field = match root.field("packets") {
        Value::Null => None,
        v => Some(v),
    };
    let engine_of = |root: &Value| -> Result<EngineMode, String> {
        match root.field("engine") {
            Value::Null => Ok(EngineMode::Golden),
            v => v
                .as_str()
                .and_then(EngineMode::from_name)
                .ok_or_else(|| "engine must be \"golden\", \"fast\", or \"analytic\"".to_string()),
        }
    };
    let profile_of = |root: &Value| -> Result<Profile, String> {
        match root.field("profile") {
            Value::Null => Ok(Profile::default()),
            v => v
                .as_str()
                .and_then(Profile::from_name)
                .ok_or_else(|| "profile must be \"paper\" or \"case-study\"".to_string()),
        }
    };
    let objective_of = |root: &Value, op: &str| -> Result<Metric, String> {
        root.field("objective")
            .as_str()
            .ok_or_else(|| format!("{op} needs a string 'objective'"))
            .and_then(metric_from_name)
    };
    let constraints_of = |root: &Value| -> Result<Vec<(Metric, f64)>, String> {
        let mut constraints = Vec::new();
        match root.field("constraints") {
            Value::Null => {}
            v => {
                let items = v
                    .as_array()
                    .ok_or_else(|| "constraints must be an array".to_string())?;
                for item in items {
                    let metric = item
                        .field("metric")
                        .as_str()
                        .ok_or_else(|| "each constraint needs a string 'metric'".to_string())
                        .and_then(metric_from_name)?;
                    let max = require_f64(item.field("max"), "constraint max")?;
                    constraints.push((metric, max));
                }
            }
        }
        Ok(constraints)
    };
    let distance_of = |root: &Value| -> Result<Option<f64>, String> {
        match root.field("distance_m") {
            Value::Null => Ok(None),
            v => Ok(Some(require_f64(v, "distance_m")?)),
        }
    };

    let body = match op {
        Op::Simulate => RequestBody::Simulate {
            config: match root.field("config") {
                Value::Null => StackConfig::default(),
                v => parse_config(v).map_err(&reject)?,
            },
            packets: parse_packets(packets_field).map_err(&reject)?,
            seed: seed_of(&root).map_err(&reject)?,
            engine: engine_of(&root).map_err(|e| reject_code(ErrCode::UnknownEngine, e))?,
        },
        Op::Predict => {
            let engine = engine_of(&root).map_err(|e| reject_code(ErrCode::UnknownEngine, e))?;
            if engine == EngineMode::Fast {
                return Err(reject(
                    "predict engine must be \"golden\" or \"analytic\"; \
                     \"fast\" is a sampling backend — use op \"simulate\""
                        .to_string(),
                ));
            }
            RequestBody::Predict {
                config: match root.field("config") {
                    Value::Null => StackConfig::default(),
                    v => parse_config(v).map_err(&reject)?,
                },
                engine,
            }
        }
        Op::Tune => RequestBody::Tune {
            objective: objective_of(&root, "tune").map_err(&reject)?,
            constraints: constraints_of(&root).map_err(&reject)?,
            distance_m: distance_of(&root).map_err(&reject)?,
            engine: engine_of(&root).map_err(|e| reject_code(ErrCode::UnknownEngine, e))?,
        },
        Op::Pareto => {
            let engine = engine_of(&root).map_err(|e| reject_code(ErrCode::UnknownEngine, e))?;
            if engine == EngineMode::Fast {
                return Err(reject(
                    "pareto engine must be \"golden\" or \"analytic\"; \
                     \"fast\" samples one seed per config — use op \"simulate\""
                        .to_string(),
                ));
            }
            let metrics = match root.field("metrics") {
                Value::Null => vec![Metric::Energy, Metric::Goodput],
                v => {
                    let items = v
                        .as_array()
                        .ok_or_else(|| reject("metrics must be an array of names".to_string()))?;
                    let mut metrics = Vec::new();
                    for item in items {
                        let metric = item
                            .as_str()
                            .ok_or_else(|| reject("each metric must be a string".to_string()))
                            .and_then(|name| metric_from_name(name).map_err(&reject))?;
                        if metrics.contains(&metric) {
                            return Err(reject(format!(
                                "duplicate metric '{}'",
                                metric_name(metric)
                            )));
                        }
                        metrics.push(metric);
                    }
                    if metrics.len() < 2 {
                        return Err(reject(
                            "pareto needs at least 2 metrics (a 1-metric front is op \"tune\")"
                                .to_string(),
                        ));
                    }
                    metrics
                }
            };
            RequestBody::Pareto {
                metrics,
                distance_m: distance_of(&root).map_err(&reject)?,
                engine,
                profile: profile_of(&root).map_err(&reject)?,
            }
        }
        Op::Explore => {
            let budget = match root.field("budget") {
                Value::Null => {
                    return Err(reject(
                        "explore needs a 'budget' (max candidate evaluations)".to_string(),
                    ))
                }
                v => require_u64(v, "budget").map_err(&reject)?,
            };
            if budget == 0 {
                return Err(reject("budget must be at least 1".to_string()));
            }
            RequestBody::Explore {
                objective: objective_of(&root, "explore").map_err(&reject)?,
                constraints: constraints_of(&root).map_err(&reject)?,
                budget,
                distance_m: distance_of(&root).map_err(&reject)?,
                engine: engine_of(&root).map_err(|e| reject_code(ErrCode::UnknownEngine, e))?,
                profile: profile_of(&root).map_err(&reject)?,
            }
        }
        Op::Scenario => RequestBody::Scenario {
            scenario: root
                .field("scenario")
                .as_str()
                .ok_or_else(|| reject("scenario op needs a string 'scenario' id".to_string()))?
                .to_string(),
            packets: parse_packets(packets_field).map_err(&reject)?,
            seed: seed_of(&root).map_err(&reject)?,
            timeline: parse_timeline(root.field("timeline")).map_err(&reject)?,
        },
        Op::Cache => RequestBody::Cache {
            flush: match root.field("action") {
                Value::Null => false,
                v => match v.as_str() {
                    Some("flush") => true,
                    _ => {
                        return Err(reject(format!(
                            "cache action must be \"flush\", got {}",
                            v.kind()
                        )))
                    }
                },
            },
        },
        Op::Stats => RequestBody::Stats,
        Op::Shutdown => RequestBody::Shutdown,
    };

    Ok(Request {
        id,
        op,
        deadline_ms,
        body,
    })
}

/// The canonical bit-exact key of a configuration: `f64::to_bits` for the
/// distance, raw integers for everything else.
fn config_bits(config: &StackConfig) -> String {
    format!(
        "d:{:016x},p:{},t:{},r:{},q:{},i:{},l:{}",
        config.distance.meters().to_bits(),
        config.power.level(),
        config.max_tries.get(),
        config.retry_delay.millis(),
        config.queue_cap.get(),
        config.packet_interval.millis(),
        config.payload.bytes()
    )
}

/// Cache-key suffix partitioning the engine modes: empty for golden (so
/// every pre-engine key stays byte-identical) and `|e:fast` / `|e:analytic`
/// otherwise, which guarantees an answer from one backend can never be
/// served to a request for another.
fn engine_suffix(engine: EngineMode) -> &'static str {
    match engine {
        EngineMode::Golden => "",
        EngineMode::Fast => "|e:fast",
        EngineMode::Analytic => "|e:analytic",
    }
}

/// Cache-key suffix partitioning the evaluation profiles: empty for the
/// paper default so pre-profile keys stay byte-identical.
fn profile_suffix(profile: Profile) -> &'static str {
    match profile {
        Profile::Paper => "",
        Profile::CaseStudy => "|v:case-study",
    }
}

/// The canonical `|c:metric<=bits` run of a constraint list: sorted by
/// metric name then bound bits, duplicates removed. Permuting (or
/// repeating) semantically identical constraints must produce the same
/// cache key, otherwise equal searches miss each other's answers.
fn constraints_key(constraints: &[(Metric, f64)]) -> String {
    let mut items: Vec<(&'static str, u64)> = constraints
        .iter()
        .map(|(metric, max)| (metric_name(*metric), max.to_bits()))
        .collect();
    items.sort_unstable();
    items.dedup();
    let mut run = String::new();
    for (name, bits) in items {
        run.push_str(&format!("|c:{name}<={bits:016x}"));
    }
    run
}

/// The `|d:bits` or `|d:-` run of an optional distance restriction.
fn distance_key(distance_m: Option<f64>) -> String {
    match distance_m {
        Some(d) => format!("|d:{:016x}", d.to_bits()),
        None => "|d:-".to_string(),
    }
}

/// The canonical cache key of a request body, or `None` for ops whose
/// answers are live (`stats`, `shutdown`).
pub fn cache_key(body: &RequestBody) -> Option<String> {
    match body {
        RequestBody::Simulate {
            config,
            packets,
            seed,
            engine,
        } => Some(format!(
            "sim|{}|n:{packets}|s:{seed:016x}{}",
            config_bits(config),
            engine_suffix(*engine)
        )),
        RequestBody::Predict { config, engine } => Some(format!(
            "prd|{}{}",
            config_bits(config),
            engine_suffix(*engine)
        )),
        RequestBody::Tune {
            objective,
            constraints,
            distance_m,
            engine,
        } => Some(format!(
            "tun|o:{}{}{}{}",
            metric_name(*objective),
            constraints_key(constraints),
            distance_key(*distance_m),
            engine_suffix(*engine)
        )),
        RequestBody::Pareto {
            metrics,
            distance_m,
            engine,
            profile,
        } => {
            // Metric order stays in the key: it decides the result's value
            // columns and the front's sort axis, so permutations are
            // different answers (unlike constraint permutations).
            let names: Vec<&str> = metrics.iter().map(|m| metric_name(*m)).collect();
            Some(format!(
                "par|m:{}{}{}{}",
                names.join(","),
                distance_key(*distance_m),
                profile_suffix(*profile),
                engine_suffix(*engine)
            ))
        }
        RequestBody::Explore {
            objective,
            constraints,
            budget,
            distance_m,
            engine,
            profile,
        } => Some(format!(
            "xpl|o:{}{}|b:{budget}{}{}{}",
            metric_name(*objective),
            constraints_key(constraints),
            distance_key(*distance_m),
            profile_suffix(*profile),
            engine_suffix(*engine)
        )),
        RequestBody::Scenario {
            scenario,
            packets,
            seed,
            timeline,
        } => {
            let mut key = format!("scn|{scenario}|n:{packets}|s:{seed:016x}");
            // Static scenario keys stay byte-identical to the pre-timeline
            // format; a timeline partitions the cache by its canonical
            // digest. An unresolvable spec gets a sentinel key — harmless,
            // because error responses are never cached.
            if let Some(spec) = timeline {
                match spec.resolve(scenario) {
                    Ok(timeline) => key.push_str(&format!("|t:{:016x}", timeline.digest())),
                    Err(_) => key.push_str("|t:invalid"),
                }
            }
            Some(key)
        }
        RequestBody::Stats | RequestBody::Cache { .. } | RequestBody::Shutdown => None,
    }
}

/// Renders a success envelope. `result` is spliced verbatim, so a cached
/// body reproduces the original response byte-for-byte (only `cached`,
/// `service_us`, and `trace` may differ between the first and repeat
/// responses). `service_us` is the pop-to-answer execution time; `trace`
/// is the request's 16-hex-char trace id, joining the response to the
/// server's access log.
pub fn envelope_ok(
    id: &str,
    op: Op,
    cached: bool,
    service_us: u64,
    trace: &str,
    result: &str,
) -> String {
    format!(
        "{{\"proto\":{PROTO_VERSION},\"id\":{id},\"op\":\"{}\",\"ok\":true,\"cached\":{cached},\"service_us\":{service_us},\"trace\":\"{trace}\",\"result\":{result}}}",
        op.name()
    )
}

/// Renders an error envelope. `trace` is `None` for failures that happen
/// before a trace id is assigned (parse errors, oversized lines); `code`
/// is the stable machine-readable classification of the failure.
pub fn envelope_err(
    id: &str,
    op: Option<Op>,
    trace: Option<&str>,
    code: ErrCode,
    error: &str,
) -> String {
    let op_name = op.map(Op::name).unwrap_or("unknown");
    let code = code.name();
    let message = serde_json::to_string(&error).unwrap_or_else(|_| "\"error\"".to_string());
    match trace {
        Some(trace) => format!(
            "{{\"proto\":{PROTO_VERSION},\"id\":{id},\"op\":\"{op_name}\",\"ok\":false,\"trace\":\"{trace}\",\"code\":\"{code}\",\"error\":{message}}}"
        ),
        None => format!(
            "{{\"proto\":{PROTO_VERSION},\"id\":{id},\"op\":\"{op_name}\",\"ok\":false,\"code\":\"{code}\",\"error\":{message}}}"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_request_parses_with_defaults() {
        let req = parse_request(r#"{"op":"simulate"}"#).unwrap();
        assert_eq!(req.op, Op::Simulate);
        assert_eq!(req.id, "null");
        match req.body {
            RequestBody::Simulate {
                config,
                packets,
                seed,
                engine,
            } => {
                assert_eq!(config, StackConfig::default());
                assert_eq!(packets, DEFAULT_PACKETS);
                assert_eq!(seed, DEFAULT_SEED);
                assert_eq!(engine, EngineMode::Golden);
            }
            other => panic!("wrong body {other:?}"),
        }
    }

    #[test]
    fn config_fields_and_id_are_honored() {
        let req = parse_request(
            r#"{"id":7,"op":"simulate","config":{"distance_m":20.0,"power_level":31,"payload_bytes":50},"packets":100,"seed":1}"#,
        )
        .unwrap();
        assert_eq!(req.id, "7");
        match req.body {
            RequestBody::Simulate {
                config,
                packets,
                seed,
                ..
            } => {
                assert_eq!(config.distance.meters(), 20.0);
                assert_eq!(config.power.level(), 31);
                assert_eq!(config.payload.bytes(), 50);
                assert_eq!(packets, 100);
                assert_eq!(seed, 1);
            }
            other => panic!("wrong body {other:?}"),
        }
    }

    #[test]
    fn unknown_fields_and_ops_are_rejected_with_id_echo() {
        let rej = parse_request(r#"{"id":"x","op":"simulate","packet":5}"#).unwrap_err();
        assert_eq!(rej.id, "\"x\"");
        assert!(
            rej.error.contains("unknown field 'packet'"),
            "{}",
            rej.error
        );

        let rej = parse_request(r#"{"id":3,"op":"simulify"}"#).unwrap_err();
        assert_eq!(rej.id, "3");
        assert!(rej.error.contains("unknown op"));

        let rej = parse_request("not json at all").unwrap_err();
        assert_eq!(rej.id, "null");
        assert!(rej.error.contains("invalid JSON"));
    }

    #[test]
    fn invalid_parameter_values_surface_the_domain_error() {
        let rej = parse_request(r#"{"op":"predict","config":{"power_level":0}}"#).unwrap_err();
        assert!(rej.error.contains("CC2420"), "{}", rej.error);
        let rej =
            parse_request(r#"{"op":"simulate","config":{"payload_bytes":4000}}"#).unwrap_err();
        assert!(rej.error.contains("outside"), "{}", rej.error);
        let rej =
            parse_request(r#"{"op":"simulate","config":{"payload_bytes":70000}}"#).unwrap_err();
        assert!(rej.error.contains("out of range"), "{}", rej.error);
        let rej = parse_request(r#"{"op":"simulate","packets":0}"#).unwrap_err();
        assert!(rej.error.contains("at least 1"));
        let rej = parse_request(&format!(
            r#"{{"op":"simulate","packets":{}}}"#,
            MAX_PACKETS + 1
        ))
        .unwrap_err();
        assert!(rej.error.contains("cap"));
    }

    #[test]
    fn tune_request_parses_objective_and_constraints() {
        let req = parse_request(
            r#"{"op":"tune","objective":"energy","constraints":[{"metric":"loss","max":0.01}],"distance_m":20.0}"#,
        )
        .unwrap();
        match req.body {
            RequestBody::Tune {
                objective,
                constraints,
                distance_m,
                engine,
            } => {
                assert_eq!(objective, Metric::Energy);
                assert_eq!(constraints, vec![(Metric::Loss, 0.01)]);
                assert_eq!(distance_m, Some(20.0));
                assert_eq!(engine, EngineMode::Golden);
            }
            other => panic!("wrong body {other:?}"),
        }
    }

    #[test]
    fn permuted_constraints_share_one_canonical_tune_key() {
        let ab = parse_request(
            r#"{"op":"tune","objective":"energy","constraints":[{"metric":"loss","max":0.01},{"metric":"delay","max":50.0}]}"#,
        )
        .unwrap();
        let ba = parse_request(
            r#"{"op":"tune","objective":"energy","constraints":[{"metric":"delay","max":50.0},{"metric":"loss","max":0.01}]}"#,
        )
        .unwrap();
        // Constraint order is irrelevant to the question being asked, so
        // permutations must hit the same cache line.
        assert_eq!(cache_key(&ab.body), cache_key(&ba.body));

        // So must a repeated constraint — `loss ≤ 0.01` twice is once.
        let dup = parse_request(
            r#"{"op":"tune","objective":"energy","constraints":[{"metric":"loss","max":0.01},{"metric":"loss","max":0.01},{"metric":"delay","max":50.0}]}"#,
        )
        .unwrap();
        assert_eq!(cache_key(&dup.body), cache_key(&ab.body));

        // A different bound is a different question.
        let other = parse_request(
            r#"{"op":"tune","objective":"energy","constraints":[{"metric":"loss","max":0.02},{"metric":"delay","max":50.0}]}"#,
        )
        .unwrap();
        assert_ne!(cache_key(&other.body), cache_key(&ab.body));

        // Single-constraint keys keep the historical byte layout, so
        // pre-canonicalization cache entries stay valid.
        let single = parse_request(
            r#"{"op":"tune","objective":"energy","constraints":[{"metric":"loss","max":0.01}],"distance_m":20.0}"#,
        )
        .unwrap();
        assert_eq!(
            cache_key(&single.body).unwrap(),
            format!(
                "tun|o:energy|c:loss<={:016x}|d:{:016x}",
                0.01f64.to_bits(),
                20.0f64.to_bits()
            )
        );
    }

    #[test]
    fn pareto_request_parses_metrics_profile_and_keys() {
        let req = parse_request(r#"{"op":"pareto"}"#).unwrap();
        match &req.body {
            RequestBody::Pareto {
                metrics,
                distance_m,
                engine,
                profile,
            } => {
                assert_eq!(metrics, &[Metric::Energy, Metric::Goodput]);
                assert_eq!(*distance_m, None);
                assert_eq!(*engine, EngineMode::Golden);
                assert_eq!(*profile, Profile::Paper);
            }
            other => panic!("wrong body {other:?}"),
        }
        assert_eq!(
            cache_key(&req.body).unwrap(),
            "par|m:energy,goodput|d:-".to_string()
        );

        // Metric order picks the value columns, so it stays in the key;
        // profile and engine partition their own cache lines.
        let swapped = parse_request(r#"{"op":"pareto","metrics":["goodput","energy"]}"#).unwrap();
        assert_ne!(cache_key(&swapped.body), cache_key(&req.body));
        let cs = parse_request(
            r#"{"op":"pareto","engine":"analytic","profile":"case-study","distance_m":35.0}"#,
        )
        .unwrap();
        assert_eq!(
            cache_key(&cs.body).unwrap(),
            format!(
                "par|m:energy,goodput|d:{:016x}|v:case-study|e:analytic",
                35.0f64.to_bits()
            )
        );

        let rej = parse_request(r#"{"op":"pareto","engine":"fast"}"#).unwrap_err();
        assert!(rej.error.contains("simulate"), "{}", rej.error);
        let rej = parse_request(r#"{"op":"pareto","metrics":["energy","energy"]}"#).unwrap_err();
        assert!(rej.error.contains("duplicate"), "{}", rej.error);
        let rej = parse_request(r#"{"op":"pareto","metrics":["energy"]}"#).unwrap_err();
        assert!(rej.error.contains("tune"), "{}", rej.error);
        let rej = parse_request(r#"{"op":"pareto","profile":"lab"}"#).unwrap_err();
        assert!(rej.error.contains("case-study"), "{}", rej.error);
    }

    #[test]
    fn explore_request_requires_budget_and_canonicalizes_keys() {
        let rej = parse_request(r#"{"op":"explore","objective":"energy"}"#).unwrap_err();
        assert!(rej.error.contains("budget"), "{}", rej.error);
        let rej = parse_request(r#"{"op":"explore","objective":"energy","budget":0}"#).unwrap_err();
        assert!(rej.error.contains("at least 1"), "{}", rej.error);

        let ab = parse_request(
            r#"{"op":"explore","objective":"energy","budget":100,"constraints":[{"metric":"loss","max":0.01},{"metric":"delay","max":50.0}]}"#,
        )
        .unwrap();
        let ba = parse_request(
            r#"{"op":"explore","objective":"energy","budget":100,"constraints":[{"metric":"delay","max":50.0},{"metric":"loss","max":0.01}]}"#,
        )
        .unwrap();
        assert_eq!(cache_key(&ab.body), cache_key(&ba.body));
        match &ab.body {
            RequestBody::Explore { budget, .. } => assert_eq!(*budget, 100),
            other => panic!("wrong body {other:?}"),
        }

        // The budget bounds the search, so it is part of the question.
        let wider = parse_request(r#"{"op":"explore","objective":"energy","budget":200,"constraints":[{"metric":"delay","max":50.0},{"metric":"loss","max":0.01}]}"#).unwrap();
        assert_ne!(cache_key(&wider.body), cache_key(&ab.body));

        let full = parse_request(
            r#"{"op":"explore","objective":"goodput","budget":64,"engine":"fast","profile":"case-study","distance_m":35.0}"#,
        )
        .unwrap();
        assert_eq!(
            cache_key(&full.body).unwrap(),
            format!(
                "xpl|o:goodput|b:64|d:{:016x}|v:case-study|e:fast",
                35.0f64.to_bits()
            )
        );
    }

    #[test]
    fn engine_field_parses_and_partitions_cache_keys() {
        let fast = parse_request(r#"{"op":"simulate","engine":"fast"}"#).unwrap();
        match &fast.body {
            RequestBody::Simulate { engine, .. } => assert_eq!(*engine, EngineMode::Fast),
            other => panic!("wrong body {other:?}"),
        }
        let golden = parse_request(r#"{"op":"simulate","engine":"golden"}"#).unwrap();
        let implicit = parse_request(r#"{"op":"simulate"}"#).unwrap();

        // Golden keys are byte-identical to the pre-engine format; the
        // fast key is a distinct cache line.
        assert_eq!(cache_key(&golden.body), cache_key(&implicit.body));
        assert!(!cache_key(&golden.body).unwrap().contains("|e:"));
        assert_ne!(cache_key(&fast.body), cache_key(&golden.body));
        assert!(cache_key(&fast.body).unwrap().ends_with("|e:fast"));

        let tune_fast =
            parse_request(r#"{"op":"tune","objective":"energy","engine":"fast"}"#).unwrap();
        let tune_golden = parse_request(r#"{"op":"tune","objective":"energy"}"#).unwrap();
        assert_ne!(cache_key(&tune_fast.body), cache_key(&tune_golden.body));
        assert!(!cache_key(&tune_golden.body).unwrap().contains("|e:"));

        let rej = parse_request(r#"{"op":"simulate","engine":"warp"}"#).unwrap_err();
        // Unknown engines draw the full valid set in the message.
        for name in ["golden", "fast", "analytic"] {
            assert!(rej.error.contains(name), "{}", rej.error);
        }
    }

    #[test]
    fn analytic_engine_parses_everywhere_and_partitions_cache_keys() {
        for op in ["simulate", "tune"] {
            let line = if op == "tune" {
                format!(r#"{{"op":"{op}","objective":"energy","engine":"analytic"}}"#)
            } else {
                format!(r#"{{"op":"{op}","engine":"analytic"}}"#)
            };
            let req = parse_request(&line).unwrap();
            let key = cache_key(&req.body).unwrap();
            assert!(key.ends_with("|e:analytic"), "{op}: {key}");
        }

        // predict accepts golden (default) and analytic; the analytic key
        // is a distinct cache line while the golden key stays byte-
        // identical to the historical `prd|…` format.
        let golden = parse_request(r#"{"op":"predict"}"#).unwrap();
        let explicit = parse_request(r#"{"op":"predict","engine":"golden"}"#).unwrap();
        let analytic = parse_request(r#"{"op":"predict","engine":"analytic"}"#).unwrap();
        assert_eq!(cache_key(&golden.body), cache_key(&explicit.body));
        assert!(!cache_key(&golden.body).unwrap().contains("|e:"));
        assert!(cache_key(&golden.body).unwrap().starts_with("prd|"));
        assert_ne!(cache_key(&analytic.body), cache_key(&golden.body));
        assert!(cache_key(&analytic.body).unwrap().ends_with("|e:analytic"));

        // predict is closed-form only: the sampling backend is refused
        // with a pointer at simulate.
        let rej = parse_request(r#"{"op":"predict","engine":"fast"}"#).unwrap_err();
        assert!(rej.error.contains("analytic"), "{}", rej.error);
        assert!(rej.error.contains("simulate"), "{}", rej.error);
    }

    #[test]
    fn cache_keys_distinguish_bitwise_different_requests() {
        let base = parse_request(r#"{"op":"simulate"}"#).unwrap();
        let same = parse_request(r#"{"id":99,"op":"simulate"}"#).unwrap();
        // The id is routing metadata, not part of the question.
        assert_eq!(cache_key(&base.body), cache_key(&same.body));

        let different =
            parse_request(r#"{"op":"simulate","config":{"distance_m":34.999999999999996}}"#)
                .unwrap();
        assert_ne!(cache_key(&base.body), cache_key(&different.body));

        let stats = parse_request(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(cache_key(&stats.body), None);
    }

    #[test]
    fn envelopes_are_valid_json() {
        let ok = envelope_ok(
            "42",
            Op::Simulate,
            true,
            17,
            "00c0ffee00c0ffee",
            "{\"x\":1}",
        );
        let v = serde_json::parse(&ok).unwrap();
        assert_eq!(v.field("proto").as_u64(), Some(PROTO_VERSION));
        assert_eq!(v.field("ok").as_bool(), Some(true));
        assert_eq!(v.field("cached").as_bool(), Some(true));
        assert_eq!(v.field("id").as_u64(), Some(42));
        assert_eq!(v.field("trace").as_str(), Some("00c0ffee00c0ffee"));
        assert_eq!(v.field("result").field("x").as_u64(), Some(1));

        let err = envelope_err(
            "null",
            None,
            None,
            ErrCode::BadRequest,
            "bad \"quoted\" thing\n",
        );
        let v = serde_json::parse(&err).unwrap();
        assert_eq!(v.field("proto").as_u64(), Some(PROTO_VERSION));
        assert_eq!(v.field("ok").as_bool(), Some(false));
        assert_eq!(v.field("code").as_str(), Some("bad_request"));
        assert!(v.field("error").as_str().unwrap().contains("quoted"));

        let err = envelope_err(
            "7",
            Some(Op::Predict),
            Some("00c0ffee00c0ffee"),
            ErrCode::Deadline,
            "late",
        );
        let v = serde_json::parse(&err).unwrap();
        assert_eq!(v.field("trace").as_str(), Some("00c0ffee00c0ffee"));
        assert_eq!(v.field("op").as_str(), Some("predict"));
        assert_eq!(v.field("code").as_str(), Some("deadline"));
    }

    #[test]
    fn proto_field_is_accepted_at_v1_and_rejected_otherwise() {
        // A v1 client may pin the protocol explicitly on any op.
        let req = parse_request(r#"{"op":"stats","proto":1}"#).unwrap();
        assert_eq!(req.op, Op::Stats);

        let rej = parse_request(r#"{"id":5,"op":"stats","proto":2}"#).unwrap_err();
        assert_eq!(rej.id, "5");
        assert_eq!(rej.code, ErrCode::BadRequest);
        assert!(rej.error.contains("unsupported proto 2"), "{}", rej.error);
        assert!(rej.error.contains("proto 1"), "{}", rej.error);

        let rej = parse_request(r#"{"op":"stats","proto":"1"}"#).unwrap_err();
        assert!(rej.error.contains("proto"), "{}", rej.error);
    }

    #[test]
    fn rejections_carry_machine_readable_codes() {
        let rej = parse_request("not json").unwrap_err();
        assert_eq!(rej.code, ErrCode::BadRequest);

        let rej = parse_request(r#"{"op":"simulify"}"#).unwrap_err();
        assert_eq!(rej.code, ErrCode::UnknownOp);

        let rej = parse_request(r#"{"op":"simulate","engine":"warp"}"#).unwrap_err();
        assert_eq!(rej.code, ErrCode::UnknownEngine);
        let rej =
            parse_request(r#"{"op":"tune","objective":"energy","engine":"warp"}"#).unwrap_err();
        assert_eq!(rej.code, ErrCode::UnknownEngine);

        // predict+fast is a *valid* engine aimed at the wrong op: the
        // request is malformed, not the engine name.
        let rej = parse_request(r#"{"op":"predict","engine":"fast"}"#).unwrap_err();
        assert_eq!(rej.code, ErrCode::BadRequest);

        let rej = parse_request(r#"{"op":"simulate","packet":5}"#).unwrap_err();
        assert_eq!(rej.code, ErrCode::BadRequest);
    }

    #[test]
    fn cache_op_parses_action_and_is_never_cached() {
        let plain = parse_request(r#"{"op":"cache"}"#).unwrap();
        assert_eq!(plain.op, Op::Cache);
        assert_eq!(plain.body, RequestBody::Cache { flush: false });
        assert_eq!(cache_key(&plain.body), None);

        let flush = parse_request(r#"{"op":"cache","action":"flush"}"#).unwrap();
        assert_eq!(flush.body, RequestBody::Cache { flush: true });

        let rej = parse_request(r#"{"op":"cache","action":"drop"}"#).unwrap_err();
        assert_eq!(rej.code, ErrCode::BadRequest);
        assert!(rej.error.contains("flush"), "{}", rej.error);

        // The action field belongs to cache alone.
        let rej = parse_request(r#"{"op":"stats","action":"flush"}"#).unwrap_err();
        assert!(
            rej.error.contains("unknown field 'action'"),
            "{}",
            rej.error
        );
    }

    #[test]
    fn proto_is_the_first_envelope_field() {
        // Wire compatibility: `proto` prefixes the envelope so the
        // `"id":…,"op":…,"ok":…` run stays contiguous for line-oriented
        // consumers (CI smoke greps included).
        let ok = envelope_ok("1", Op::Simulate, false, 9, "aaaaaaaaaaaaaaaa", "{}");
        assert!(
            ok.starts_with("{\"proto\":1,\"id\":1,\"op\":\"simulate\",\"ok\":true,"),
            "{ok}"
        );
        let err = envelope_err("1", None, None, ErrCode::Overloaded, "busy");
        assert!(
            err.starts_with("{\"proto\":1,\"id\":1,\"op\":\"unknown\",\"ok\":false,"),
            "{err}"
        );
        assert!(err.contains("\"code\":\"overloaded\",\"error\":"), "{err}");
    }

    #[test]
    fn trace_sits_between_service_us_and_result() {
        // Clients (and this repo's own tests) parse `service_us` up to the
        // next comma and locate the result with a `"result":` search —
        // the trace field must not break either convention.
        let ok = envelope_ok("1", Op::Stats, false, 250, "aaaaaaaaaaaaaaaa", "{}");
        let service_idx = ok
            .find("\"service_us\":250,")
            .expect("service_us then comma");
        let trace_idx = ok.find("\"trace\":").expect("trace present");
        let result_idx = ok.find("\"result\":").expect("result present");
        assert!(service_idx < trace_idx && trace_idx < result_idx, "{ok}");
    }

    #[test]
    fn scenario_request_requires_id_string() {
        let req =
            parse_request(r#"{"op":"scenario","scenario":"hidden-pair","packets":60}"#).unwrap();
        match req.body {
            RequestBody::Scenario {
                scenario,
                packets,
                timeline,
                ..
            } => {
                assert_eq!(scenario, "hidden-pair");
                assert_eq!(packets, 60);
                assert_eq!(timeline, None);
            }
            other => panic!("wrong body {other:?}"),
        }
        assert!(parse_request(r#"{"op":"scenario"}"#).is_err());
    }

    #[test]
    fn timeline_field_parses_id_object_and_array_forms() {
        let by_id =
            parse_request(r#"{"op":"scenario","scenario":"parallel-4","timeline":"storm20"}"#)
                .unwrap();
        match &by_id.body {
            RequestBody::Scenario { timeline, .. } => {
                assert_eq!(timeline, &Some(TimelineSpec::Id("storm20".to_string())));
            }
            other => panic!("wrong body {other:?}"),
        }

        // A full timeline object and a bare event array both carry the
        // same inline timeline.
        let event = r#"{"id":9,"t_s":2.5,"link":1,"action":"Leave"}"#;
        let as_object = parse_request(&format!(
            r#"{{"op":"scenario","scenario":"parallel-4","timeline":{{"events":[{event}]}}}}"#
        ))
        .unwrap();
        let as_array = parse_request(&format!(
            r#"{{"op":"scenario","scenario":"parallel-4","timeline":[{event}]}}"#
        ))
        .unwrap();
        match (&as_object.body, &as_array.body) {
            (
                RequestBody::Scenario { timeline: a, .. },
                RequestBody::Scenario { timeline: b, .. },
            ) => {
                assert_eq!(a, b);
                match a {
                    Some(TimelineSpec::Inline(t)) => {
                        assert_eq!(t.events().len(), 1);
                        assert_eq!(t.events()[0].link, 1);
                    }
                    other => panic!("wrong spec {other:?}"),
                }
            }
            other => panic!("wrong bodies {other:?}"),
        }

        // Wrong kinds and malformed events are rejected at parse time.
        let rej =
            parse_request(r#"{"op":"scenario","scenario":"parallel-4","timeline":7}"#).unwrap_err();
        assert!(rej.error.contains("timeline must be"), "{}", rej.error);
        let rej =
            parse_request(r#"{"op":"scenario","scenario":"parallel-4","timeline":[{"nope":1}]}"#)
                .unwrap_err();
        assert!(rej.error.contains("do not parse"), "{}", rej.error);

        // Other ops refuse the field outright.
        let rej = parse_request(r#"{"op":"simulate","timeline":"storm20"}"#).unwrap_err();
        assert!(rej.error.contains("unknown field 'timeline'"));
    }

    #[test]
    fn timeline_partitions_scenario_cache_keys_by_digest() {
        let static_req =
            parse_request(r#"{"op":"scenario","scenario":"parallel-4","packets":60,"seed":2}"#)
                .unwrap();
        // The static key stays byte-identical to the pre-timeline format.
        assert_eq!(
            cache_key(&static_req.body).unwrap(),
            "scn|parallel-4|n:60|s:0000000000000002"
        );

        let storm = parse_request(
            r#"{"op":"scenario","scenario":"parallel-4","packets":60,"seed":2,"timeline":"storm20"}"#,
        )
        .unwrap();
        let storm_key = cache_key(&storm.body).unwrap();
        assert!(
            storm_key.starts_with("scn|parallel-4|n:60|s:0000000000000002|t:"),
            "{storm_key}"
        );
        assert_ne!(storm_key, cache_key(&static_req.body).unwrap());

        // Different timelines get different digests; the same timeline
        // named by id and spelled inline collapses to the same key.
        let waypoint = parse_request(
            r#"{"op":"scenario","scenario":"parallel-4","packets":60,"seed":2,"timeline":"waypoint"}"#,
        )
        .unwrap();
        assert_ne!(cache_key(&waypoint.body).unwrap(), storm_key);

        let resolved = TimelineSpec::Id("storm20".to_string())
            .resolve("parallel-4")
            .unwrap();
        let inline = RequestBody::Scenario {
            scenario: "parallel-4".to_string(),
            packets: 60,
            seed: 2,
            timeline: Some(TimelineSpec::Inline(resolved)),
        };
        assert_eq!(cache_key(&inline).unwrap(), storm_key);

        // An unresolvable spec keys to the sentinel — the request then
        // errors at execution and is never cached under it.
        let bad =
            parse_request(r#"{"op":"scenario","scenario":"parallel-4","timeline":"blizzard"}"#)
                .unwrap();
        assert!(cache_key(&bad.body).unwrap().ends_with("|t:invalid"));
    }

    #[test]
    fn timeline_spec_resolution_validates_against_the_scenario() {
        let known = TimelineSpec::Id("storm20".to_string()).resolve("parallel-4");
        assert!(known.is_ok());
        let err = TimelineSpec::Id("blizzard".to_string())
            .resolve("parallel-4")
            .unwrap_err();
        assert!(err.contains("storm20"), "{err}");

        // An inline event aimed past the scenario's links fails
        // validation instead of panicking inside the simulator.
        let out_of_range = ScenarioTimeline::new(vec![TopologyEvent {
            id: 0,
            t_s: 1.0,
            link: 99,
            action: wsn_params::timeline::TopologyAction::Leave,
        }]);
        let err = TimelineSpec::Inline(out_of_range)
            .resolve("parallel-4")
            .unwrap_err();
        assert!(err.contains("invalid timeline"), "{err}");
    }
}
