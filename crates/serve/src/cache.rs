//! The sharded in-memory result cache.
//!
//! Keys are **canonical request strings** built from the exact bit
//! patterns of every parameter ([`crate::protocol::cache_key`]), so two
//! requests collide only when they would produce byte-identical results —
//! determinism of the simulator and the models is what makes caching
//! semantically invisible. Values are the serialized `result` JSON bodies,
//! shared by `Arc` so a hit is one hash lookup plus a refcount bump.
//!
//! Sharding bounds lock contention: a key hashes (FNV-1a) to one of N
//! independently locked shards, so concurrent workers only serialize when
//! they touch the same shard. Each shard holds at most
//! [`ShardedCache::PER_SHARD_CAP`] entries; on overflow the shard is
//! cleared wholesale (epoch eviction) — crude but O(1) amortized, and it
//! keeps worst-case memory bounded without an LRU list on the hot path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a, the classic minimal string hash: deterministic across runs
/// (unlike `RandomState`), which keeps shard placement reproducible. The
/// disk tier ([`crate::store`]) shares it for its record index.
pub(crate) fn fnv1a(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A fixed-shard map from canonical request keys to serialized results.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<HashMap<String, Arc<String>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ShardedCache {
    /// Entries one shard may hold before it is cleared.
    pub const PER_SHARD_CAP: usize = 4096;

    /// A cache with `shards` independently locked shards (min 1).
    pub fn new(shards: usize) -> Self {
        ShardedCache {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, Arc<String>>> {
        let idx = (fnv1a(key) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Looks `key` up, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<Arc<String>> {
        let found = self
            .shard(key)
            .lock()
            .expect("cache shard")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores `value` under `key`, clearing the shard first if it is full.
    pub fn insert(&self, key: String, value: Arc<String>) {
        let mut shard = self.shard(&key).lock().expect("cache shard");
        if shard.len() >= Self::PER_SHARD_CAP && !shard.contains_key(&key) {
            shard.clear();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.insert(key, value);
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").len())
            .sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime shard-clear count.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Drops every entry (the `cache` op's `{"action":"flush"}`),
    /// returning how many were dropped. Hit/miss/eviction counters are
    /// lifetime counters and survive the flush.
    pub fn flush(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let mut shard = s.lock().expect("cache shard");
                let dropped = shard.len();
                shard.clear();
                dropped
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_after_insert_hits_and_counts() {
        let cache = ShardedCache::new(4);
        assert!(cache.get("k").is_none());
        cache.insert("k".into(), Arc::new("v".into()));
        assert_eq!(cache.get("k").unwrap().as_str(), "v");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = ShardedCache::new(2);
        for i in 0..100 {
            cache.insert(format!("key-{i}"), Arc::new(format!("val-{i}")));
        }
        for i in 0..100 {
            assert_eq!(
                cache.get(&format!("key-{i}")).unwrap().as_str(),
                &format!("val-{i}")
            );
        }
    }

    #[test]
    fn overflow_clears_only_the_full_shard() {
        let cache = ShardedCache::new(1);
        for i in 0..ShardedCache::PER_SHARD_CAP {
            cache.insert(format!("key-{i}"), Arc::new(String::new()));
        }
        assert_eq!(cache.len(), ShardedCache::PER_SHARD_CAP);
        cache.insert("overflow".into(), Arc::new(String::new()));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get("overflow").is_some());
    }

    #[test]
    fn flush_drops_entries_but_keeps_lifetime_counters() {
        let cache = ShardedCache::new(4);
        cache.insert("a".into(), Arc::new("1".into()));
        cache.insert("b".into(), Arc::new("2".into()));
        assert!(cache.get("a").is_some());
        assert_eq!(cache.flush(), 2);
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
        // One hit and one miss from before/after the flush both persist.
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned so shard placement (and thus any debug output) never
        // silently changes across builds.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
    }
}
