//! A bounded MPMC job queue with backpressure and close semantics.
//!
//! Connection threads push parsed requests; the worker pool pops them.
//! The queue is deliberately tiny machinery — one mutex, two condvars —
//! because the jobs themselves are coarse (a whole simulation or grid
//! search), so queue overhead is noise.
//!
//! Backpressure: [`JobQueue::push`] blocks up to a patience budget when
//! the queue is full, then gives the job back so the caller can answer
//! the client with a "queue full" error instead of buffering unboundedly.
//! Close: [`JobQueue::close`] wakes everyone; pushers get their job back,
//! poppers drain what remains and then see `None` — that is the graceful
//! shutdown path.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why a push was refused; the job is handed back either way.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue stayed full for the whole patience budget.
    Full(T),
    /// The queue was closed (server shutting down).
    Closed(T),
}

/// A bounded multi-producer multi-consumer FIFO.
#[derive(Debug)]
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `cap` jobs (min 1).
    pub fn new(cap: usize) -> Self {
        JobQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues `item`, waiting up to `patience` for room.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when the queue never drained within `patience`;
    /// [`PushError::Closed`] when the queue was closed. Both return the
    /// item.
    pub fn push(&self, item: T, patience: Duration) -> Result<(), PushError<T>> {
        let deadline = Instant::now() + patience;
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.closed {
                return Err(PushError::Closed(item));
            }
            if state.items.len() < self.cap {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PushError::Full(item));
            }
            let (next, timeout) = self
                .not_full
                .wait_timeout(state, deadline - now)
                .expect("queue lock");
            state = next;
            if timeout.timed_out() && state.items.len() >= self.cap && !state.closed {
                return Err(PushError::Full(item));
            }
        }
    }

    /// Dequeues the next job, blocking while the queue is open and empty.
    /// Returns `None` only once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: pending jobs stay poppable, new pushes fail, and
    /// every waiter wakes. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// True once [`close`](Self::close) has run.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// True when no job is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_len() {
        let q = JobQueue::new(4);
        q.push(1, Duration::ZERO).unwrap();
        q.push(2, Duration::ZERO).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_refuses_after_patience() {
        let q = JobQueue::new(1);
        q.push(1, Duration::ZERO).unwrap();
        match q.push(2, Duration::from_millis(10)) {
            Err(PushError::Full(2)) => {}
            other => panic!("expected Full(2), got {other:?}"),
        }
    }

    #[test]
    fn close_drains_then_ends() {
        let q = JobQueue::new(4);
        q.push(7, Duration::ZERO).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.push(8, Duration::ZERO), Err(PushError::Closed(8)));
        // The job enqueued before close is still served…
        assert_eq!(q.pop(), Some(7));
        // …and only then does the queue end.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pusher_wakes_when_a_slot_frees() {
        let q = Arc::new(JobQueue::new(1));
        q.push(1, Duration::ZERO).unwrap();
        let pusher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2, Duration::from_secs(5)))
        };
        // Give the pusher time to block, then free the slot.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        pusher.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn blocked_popper_wakes_on_close() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(1));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }
}
