//! Lock-free service counters and the log₂ service-time histogram behind
//! the `stats` op.
//!
//! Every counter is a relaxed atomic — workers never take a lock to record
//! a request. Service times land in power-of-two microsecond buckets;
//! quantiles are answered from the bucket boundaries, which is exact
//! enough to tell "sub-millisecond cache hit" from "multi-millisecond
//! simulation" (the contract the serving docs make).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::protocol::Op;

/// Number of log₂ buckets: bucket `i` holds services in `[2^i, 2^(i+1))`
/// microseconds; 40 buckets cover up to ~12.7 days.
const BUCKETS: usize = 40;

/// Live counters for one server instance.
#[derive(Debug)]
pub struct ServeStats {
    started: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    by_op: [AtomicU64; Op::COUNT],
    service_us: [AtomicU64; BUCKETS],
    service_max_us: AtomicU64,
}

impl ServeStats {
    /// Fresh counters, starting the uptime clock now.
    pub fn new() -> Self {
        ServeStats {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            by_op: std::array::from_fn(|_| AtomicU64::new(0)),
            service_us: std::array::from_fn(|_| AtomicU64::new(0)),
            service_max_us: AtomicU64::new(0),
        }
    }

    /// Records one completed request: its op, whether it failed, and how
    /// long parse + execution took.
    pub fn record(&self, op: Option<Op>, ok: bool, service_us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(op) = op {
            self.by_op[op.index()].fetch_add(1, Ordering::Relaxed);
        }
        let bucket = (63 - service_us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.service_us[bucket].fetch_add(1, Ordering::Relaxed);
        self.service_max_us.fetch_max(service_us, Ordering::Relaxed);
    }

    /// The quantile `q` (0..=1) of recorded service times, microseconds:
    /// the upper bound of the bucket where the cumulative count crosses
    /// `q × total`. Returns 0 with no samples.
    fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .service_us
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, count) in counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }

    /// A serializable snapshot of every counter.
    pub fn snapshot(
        &self,
        cache_hits: u64,
        cache_entries: usize,
        cache_evictions: u64,
    ) -> StatsSnapshot {
        StatsSnapshot {
            uptime_s: self.started.elapsed().as_secs_f64(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache_hits,
            cache_entries: cache_entries as u64,
            cache_evictions,
            by_op: OpCounts {
                simulate: self.by_op[Op::Simulate.index()].load(Ordering::Relaxed),
                predict: self.by_op[Op::Predict.index()].load(Ordering::Relaxed),
                tune: self.by_op[Op::Tune.index()].load(Ordering::Relaxed),
                scenario: self.by_op[Op::Scenario.index()].load(Ordering::Relaxed),
                stats: self.by_op[Op::Stats.index()].load(Ordering::Relaxed),
                shutdown: self.by_op[Op::Shutdown.index()].load(Ordering::Relaxed),
            },
            service_us: ServiceQuantiles {
                p50: self.quantile_us(0.50),
                p99: self.quantile_us(0.99),
                max: self.service_max_us.load(Ordering::Relaxed),
            },
        }
    }
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats::new()
    }
}

/// Requests handled per op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// `simulate` requests.
    pub simulate: u64,
    /// `predict` requests.
    pub predict: u64,
    /// `tune` requests.
    pub tune: u64,
    /// `scenario` requests.
    pub scenario: u64,
    /// `stats` requests.
    pub stats: u64,
    /// `shutdown` requests.
    pub shutdown: u64,
}

/// Bucket-boundary service-time quantiles, microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceQuantiles {
    /// Median (upper bucket bound).
    pub p50: u64,
    /// 99th percentile (upper bucket bound).
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

/// What the `stats` op returns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Requests handled (including failed ones).
    pub requests: u64,
    /// Requests that produced an error response.
    pub errors: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache entries currently resident.
    pub cache_entries: u64,
    /// Result-cache shard clears (epoch evictions).
    pub cache_evictions: u64,
    /// Per-op request counts.
    pub by_op: OpCounts,
    /// Service-time distribution (parse + execute, per request).
    pub service_us: ServiceQuantiles,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_split_fast_and_slow() {
        let stats = ServeStats::new();
        // One sub-millisecond hit, one multi-millisecond simulation.
        stats.record(Some(Op::Simulate), true, 300);
        stats.record(Some(Op::Simulate), true, 8_000);
        let snap = stats.snapshot(1, 1, 0);
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.by_op.simulate, 2);
        assert!(snap.service_us.p50 < 1_000, "p50 {}", snap.service_us.p50);
        assert!(snap.service_us.p99 >= 8_000);
        assert_eq!(snap.service_us.max, 8_000);
    }

    #[test]
    fn errors_and_zero_service_are_counted() {
        let stats = ServeStats::new();
        stats.record(None, false, 0);
        let snap = stats.snapshot(0, 0, 0);
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.errors, 1);
        // 0 µs clamps into the first bucket rather than panicking.
        assert!(snap.service_us.p50 >= 1);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = ServeStats::new().snapshot(0, 0, 0);
        assert_eq!(snap.service_us.p50, 0);
        assert_eq!(snap.service_us.p99, 0);
    }
}
