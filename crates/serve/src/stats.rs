//! Lock-free service counters behind the `stats` op.
//!
//! Every counter is a relaxed atomic — workers never take a lock to
//! record a request. Latencies land in `wsn-obs` log-linear histograms
//! (≤ 12.5 % bucket width, interpolated quantiles), one per distribution:
//!
//! * `exec_us` — pop-to-answer execution time of requests that actually
//!   ran (parse time and queue time excluded, deadline-expired jobs
//!   excluded).
//! * `queue_wait_us` — enqueue-to-pop wait of every job a worker popped,
//!   including ones that then died of their deadline.
//!
//! Keeping the two apart is the point: under overload the old combined
//! "service time" mixed ~0 µs deadline corpses into the execution
//! distribution and dragged p50 down exactly when the operator most
//! needed the truth.

use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use wsn_obs::hist::LogLinearHistogram;
use wsn_obs::metrics::{Counter, Gauge, Registry};
use wsn_sim_engine::executor::ExecStats;
use wsn_sim_engine::obs::ExecGauges;

use crate::protocol::Op;

/// Live counters for one server instance.
///
/// All recording paths are wait-free; only [`snapshot`](Self::snapshot)
/// and metric registration take the registry lock.
#[derive(Debug)]
pub struct ServeStats {
    started: Instant,
    registry: Registry,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    rejected: Arc<Counter>,
    by_op: [Arc<Counter>; Op::COUNT],
    exec_us: Arc<LogLinearHistogram>,
    queue_wait_us: Arc<LogLinearHistogram>,
    queue_depth: Arc<Gauge>,
    sim: ExecGauges,
}

impl ServeStats {
    /// Fresh counters, starting the uptime clock now.
    pub fn new() -> Self {
        let registry = Registry::new();
        let ops = [
            Op::Simulate,
            Op::Predict,
            Op::Tune,
            Op::Scenario,
            Op::Stats,
            Op::Cache,
            Op::Shutdown,
            Op::Pareto,
            Op::Explore,
        ];
        let by_op =
            std::array::from_fn(|i| registry.counter(&format!("serve.op.{}", ops[i].name())));
        ServeStats {
            started: Instant::now(),
            requests: registry.counter("serve.requests"),
            errors: registry.counter("serve.errors"),
            deadline_exceeded: registry.counter("serve.deadline_exceeded"),
            rejected: registry.counter("serve.rejected"),
            by_op,
            exec_us: registry.histogram("serve.exec_us"),
            queue_wait_us: registry.histogram("serve.queue_wait_us"),
            queue_depth: registry.gauge("serve.queue_depth"),
            sim: ExecGauges::register(&registry, "sim"),
            registry,
        }
    }

    /// The underlying metric registry (for embedding servers that want to
    /// render every metric, e.g. as JSON via
    /// [`Registry::to_json`]).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A job entered the queue.
    pub fn record_enqueued(&self) {
        self.queue_depth.inc();
    }

    /// A job left the queue after waiting `queue_wait_us`. Called for
    /// *every* popped job, including ones that then exceed their deadline
    /// — queue wait is a property of the queue, not of the outcome.
    pub fn record_dequeued(&self, queue_wait_us: u64) {
        self.queue_depth.dec();
        self.queue_wait_us.record(queue_wait_us);
    }

    /// A job that was pushed but never made it into the queue (push
    /// refused); undoes the matching [`record_enqueued`](Self::record_enqueued).
    pub fn record_push_refused(&self) {
        self.queue_depth.dec();
    }

    /// A request ran to completion: its op, whether it produced an error
    /// response, and its pop-to-answer execution time.
    pub fn record_done(&self, op: Op, ok: bool, exec_us: u64) {
        self.requests.inc();
        if !ok {
            self.errors.inc();
        }
        self.by_op[op.index()].inc();
        self.exec_us.record(exec_us);
    }

    /// A request was refused before execution (parse error, oversized
    /// line, full queue). No latency sample is recorded — a refusal has
    /// no execution time, and recording 0 µs would poison the quantiles.
    pub fn record_rejected(&self, op: Option<Op>) {
        self.requests.inc();
        self.errors.inc();
        self.rejected.inc();
        if let Some(op) = op {
            self.by_op[op.index()].inc();
        }
    }

    /// A job outlived its deadline in the queue and was answered with an
    /// error instead of executing. Counted on its own — **not** as an
    /// execution-time sample (its queue wait was already recorded by
    /// [`record_dequeued`](Self::record_dequeued)).
    pub fn record_deadline_exceeded(&self, op: Op) {
        self.requests.inc();
        self.errors.inc();
        self.deadline_exceeded.inc();
        self.by_op[op.index()].inc();
    }

    /// Folds one simulation run's executor statistics into the `sim.*`
    /// gauges surfaced by the `stats` op.
    pub fn observe_exec(&self, stats: &ExecStats) {
        self.sim.observe(stats);
    }

    /// Jobs currently sitting in the queue (enqueued, not yet popped).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.get().max(0) as u64
    }

    /// Total deadline-exceeded refusals so far.
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded.get()
    }

    /// A serializable snapshot of every counter, given the cache's own
    /// counters.
    pub fn snapshot(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        cache_entries: usize,
        cache_evictions: u64,
    ) -> StatsSnapshot {
        let lookups = cache_hits + cache_misses;
        StatsSnapshot {
            uptime_s: self.started.elapsed().as_secs_f64(),
            requests: self.requests.get(),
            errors: self.errors.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
            rejected: self.rejected.get(),
            queue_depth: self.queue_depth(),
            cache_hits,
            cache_misses,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                cache_hits as f64 / lookups as f64
            },
            cache_entries: cache_entries as u64,
            cache_evictions,
            by_op: OpCounts {
                simulate: self.by_op[Op::Simulate.index()].get(),
                predict: self.by_op[Op::Predict.index()].get(),
                tune: self.by_op[Op::Tune.index()].get(),
                pareto: self.by_op[Op::Pareto.index()].get(),
                explore: self.by_op[Op::Explore.index()].get(),
                scenario: self.by_op[Op::Scenario.index()].get(),
                stats: self.by_op[Op::Stats.index()].get(),
                cache: self.by_op[Op::Cache.index()].get(),
                shutdown: self.by_op[Op::Shutdown.index()].get(),
            },
            exec_us: LatencyQuantiles::of(&self.exec_us),
            queue_wait_us: LatencyQuantiles::of(&self.queue_wait_us),
            sim: SimCounters {
                runs: self.sim.runs(),
                events_handled: self.sim.events_handled(),
                events_scheduled: self.sim.events_scheduled(),
                queue_high_water: self.sim.queue_high_water(),
            },
        }
    }
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats::new()
    }
}

/// Requests handled per op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// `simulate` requests.
    pub simulate: u64,
    /// `predict` requests.
    pub predict: u64,
    /// `tune` requests.
    pub tune: u64,
    /// `pareto` requests.
    pub pareto: u64,
    /// `explore` requests.
    pub explore: u64,
    /// `scenario` requests.
    pub scenario: u64,
    /// `stats` requests.
    pub stats: u64,
    /// `cache` requests.
    pub cache: u64,
    /// `shutdown` requests.
    pub shutdown: u64,
}

/// Interpolated quantiles of one latency distribution, microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyQuantiles {
    /// Samples recorded.
    pub count: u64,
    /// Median (interpolated within a ≤ 12.5 %-wide bucket).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

impl LatencyQuantiles {
    fn of(hist: &LogLinearHistogram) -> Self {
        LatencyQuantiles {
            count: hist.count(),
            p50: hist.quantile(0.50),
            p90: hist.quantile(0.90),
            p99: hist.quantile(0.99),
            max: hist.max(),
        }
    }
}

/// Accumulated discrete-event-executor load across every simulation the
/// server has run (`simulate` and `scenario` cache misses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimCounters {
    /// Simulation runs executed.
    pub runs: u64,
    /// Events handled across all runs.
    pub events_handled: u64,
    /// Events scheduled across all runs.
    pub events_scheduled: u64,
    /// Largest pending-event-queue length any run reached.
    pub queue_high_water: u64,
}

/// What the `stats` op returns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Requests handled (including failed and refused ones).
    pub requests: u64,
    /// Requests that produced an error response (any cause).
    pub errors: u64,
    /// Requests that spent their whole deadline budget in the queue.
    pub deadline_exceeded: u64,
    /// Requests refused before execution (parse error, oversized line,
    /// full queue).
    pub rejected: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses (cacheable requests that had to compute).
    pub cache_misses: u64,
    /// `hits / (hits + misses)`, 0.0 before the first cacheable lookup.
    pub cache_hit_rate: f64,
    /// Result-cache entries currently resident.
    pub cache_entries: u64,
    /// Result-cache shard clears (epoch evictions).
    pub cache_evictions: u64,
    /// Per-op request counts.
    pub by_op: OpCounts,
    /// Execution-time distribution (pop to answer, executed requests
    /// only).
    pub exec_us: LatencyQuantiles,
    /// Queue-wait distribution (enqueue to pop, every popped job).
    pub queue_wait_us: LatencyQuantiles,
    /// Discrete-event-executor load across the server's simulations.
    pub sim: SimCounters,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(stats: &ServeStats) -> StatsSnapshot {
        stats.snapshot(0, 0, 0, 0)
    }

    #[test]
    fn quantiles_split_fast_and_slow() {
        let stats = ServeStats::new();
        // One sub-millisecond hit, one multi-millisecond simulation.
        stats.record_done(Op::Simulate, true, 300);
        stats.record_done(Op::Simulate, true, 8_000);
        let snap = stats.snapshot(1, 1, 1, 0);
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.by_op.simulate, 2);
        assert_eq!(snap.exec_us.count, 2);
        assert!(snap.exec_us.p50 < 1_000, "p50 {}", snap.exec_us.p50);
        // The interpolated p99 must be within a bucket of the slow truth —
        // the old histogram would have said 16384 here.
        assert!(
            (snap.exec_us.p99 as f64 - 8_000.0).abs() / 8_000.0 <= 0.125,
            "p99 {}",
            snap.exec_us.p99
        );
        assert_eq!(snap.exec_us.max, 8_000);
        assert!((snap.cache_hit_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deadline_corpses_do_not_contaminate_exec_times() {
        let stats = ServeStats::new();
        // Healthy requests around 5 ms…
        for _ in 0..10 {
            stats.record_done(Op::Predict, true, 5_000);
        }
        // …then an overload burst: 10 jobs die in the queue. The old code
        // recorded each as a ~0 µs "service time", halving the reported
        // median exactly when the server was drowning.
        for _ in 0..10 {
            stats.record_dequeued(120_000);
            stats.record_deadline_exceeded(Op::Predict);
        }
        let s = snap(&stats);
        assert_eq!(s.requests, 20);
        assert_eq!(s.deadline_exceeded, 10);
        assert_eq!(s.exec_us.count, 10, "corpses must not be exec samples");
        assert!(
            (4_500..=5_500).contains(&s.exec_us.p50),
            "p50 {} dragged off 5000",
            s.exec_us.p50
        );
        assert_eq!(s.queue_wait_us.count, 10);
        assert!(s.queue_wait_us.p50 >= 110_000);
    }

    #[test]
    fn queue_wait_and_depth_are_tracked() {
        let stats = ServeStats::new();
        stats.record_enqueued();
        stats.record_enqueued();
        assert_eq!(stats.queue_depth(), 2);
        stats.record_dequeued(250);
        assert_eq!(stats.queue_depth(), 1);
        stats.record_enqueued();
        stats.record_push_refused(); // queue-full bounce
        let s = snap(&stats);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.queue_wait_us.count, 1);
        assert!(
            (225..=251).contains(&s.queue_wait_us.p50),
            "{}",
            s.queue_wait_us.p50
        );
    }

    #[test]
    fn rejections_count_but_leave_no_latency_sample() {
        let stats = ServeStats::new();
        stats.record_rejected(None);
        stats.record_rejected(Some(Op::Tune));
        let s = snap(&stats);
        assert_eq!(s.requests, 2);
        assert_eq!(s.errors, 2);
        assert_eq!(s.rejected, 2);
        assert_eq!(s.by_op.tune, 1);
        assert_eq!(s.exec_us.count, 0);
        assert_eq!(s.exec_us.p50, 0);
    }

    #[test]
    fn sim_counters_accumulate_from_exec_stats() {
        use wsn_sim_engine::time::SimDuration;
        let stats = ServeStats::new();
        let run = ExecStats {
            events_handled: 100,
            events_scheduled: 120,
            queue_high_water: 9,
            sim_elapsed: SimDuration::from_millis(5),
            wall_elapsed: std::time::Duration::from_micros(50),
        };
        stats.observe_exec(&run);
        stats.observe_exec(&run);
        let s = snap(&stats);
        assert_eq!(s.sim.runs, 2);
        assert_eq!(s.sim.events_handled, 200);
        assert_eq!(s.sim.queue_high_water, 9);
    }

    #[test]
    fn empty_histograms_report_zero() {
        let s = snap(&ServeStats::new());
        assert_eq!(s.exec_us.p50, 0);
        assert_eq!(s.exec_us.p99, 0);
        assert_eq!(s.queue_wait_us.p50, 0);
        assert_eq!(s.cache_hit_rate, 0.0);
    }

    #[test]
    fn registry_renders_the_same_counters() {
        let stats = ServeStats::new();
        stats.record_done(Op::Stats, true, 42);
        let json = stats.registry().to_json();
        assert!(json.contains("\"serve.requests\":1"), "{json}");
        assert!(json.contains("\"serve.op.stats\":1"), "{json}");
        assert!(json.contains("\"serve.exec_us\":{\"count\":1"), "{json}");
    }
}
