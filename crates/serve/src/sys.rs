//! A libc-free epoll/eventfd shim: the four raw Linux syscalls the
//! reactor needs, wrapped in safe RAII types.
//!
//! The workspace vendors no `libc` crate, and `std` exposes no readiness
//! API — so the event loop's kernel interface lives here, behind the only
//! `#[allow(unsafe_code)]` in the crate. The unsafe surface is four
//! syscall wrappers (`epoll_create1`, `epoll_ctl`, `epoll_pwait`,
//! `eventfd2`) plus `read`/`write`/`close` on the eventfd; everything
//! above this module handles plain `io::Result`s and owned fds.
//!
//! Supported targets are x86-64 and AArch64 Linux (the hosts this repo
//! builds on). Elsewhere the same API exists but every constructor
//! returns [`io::ErrorKind::Unsupported`], and the server falls back to
//! the blocking thread-per-connection model (see `IoModel` in the crate
//! root). [`SUPPORTED`] reports which variant was compiled in.

#![allow(unsafe_code)]

/// True when this build carries the real syscall shim (x86-64 or AArch64
/// Linux); false on the stub fallback.
pub const SUPPORTED: bool = cfg!(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

/// Readiness: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

/// One readiness report from [`Epoll::wait`]. The layout matches the
/// kernel's `struct epoll_event`, which is packed on x86-64 only.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// `EPOLL*` readiness bits.
    pub events: u32,
    /// The caller's token, echoed back verbatim.
    pub token: u64,
}

impl EpollEvent {
    /// The readiness bits (reading a field of a packed struct through a
    /// reference is UB-adjacent; copy out instead).
    pub fn bits(&self) -> u32 {
        let e = *self;
        e.events
    }

    /// The caller's token.
    pub fn data(&self) -> u64 {
        let e = *self;
        e.token
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::EpollEvent;
    use std::io;
    use std::os::unix::io::RawFd;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const READ: usize = 0;
        pub const WRITE: usize = 1;
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EVENTFD2: usize = 290;
        pub const EPOLL_CREATE1: usize = 291;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const READ: usize = 63;
        pub const WRITE: usize = 64;
        pub const CLOSE: usize = 57;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const EVENTFD2: usize = 19;
        pub const EPOLL_CREATE1: usize = 20;
    }

    const EPOLL_CLOEXEC: usize = 0x80000;
    const EFD_CLOEXEC: usize = 0x80000;
    const EFD_NONBLOCK: usize = 0x800;
    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;

    /// One raw syscall with up to six arguments. Safety: the caller must
    /// pass arguments valid for the syscall number (live fds, pointers to
    /// memory of the stated length).
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// One raw syscall with up to six arguments (AArch64 `svc 0` ABI).
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
        ret
    }

    /// Maps the kernel's negative-errno convention to `io::Result`.
    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// An owned epoll instance.
    #[derive(Debug)]
    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        /// A fresh close-on-exec epoll instance.
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: no pointer arguments.
            let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
            Ok(Epoll { fd: fd as RawFd })
        }

        fn ctl(&self, op: usize, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut event = EpollEvent { events, token };
            let ptr = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut event as *mut EpollEvent
            };
            // SAFETY: `ptr` is null (DEL) or points at a live epoll_event;
            // the kernel only reads it during the call.
            check(unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    self.fd as usize,
                    op,
                    fd as usize,
                    ptr as usize,
                    0,
                    0,
                )
            })?;
            Ok(())
        }

        /// Starts watching `fd` for `events`, tagging reports with `token`.
        pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        /// Changes the watched event set of an already-added `fd`.
        pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        /// Stops watching `fd`.
        pub fn del(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks up to `timeout_ms` (-1 = forever) for readiness, filling
        /// `events` and returning how many entries are valid.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            loop {
                // SAFETY: `events` is a live, writable slice of
                // epoll_event-layout structs; len bounds the kernel write.
                let ret = unsafe {
                    syscall6(
                        nr::EPOLL_PWAIT,
                        self.fd as usize,
                        events.as_mut_ptr() as usize,
                        events.len(),
                        timeout_ms as usize,
                        0, // no signal mask
                        8, // sigsetsize (ignored when the mask is null)
                    )
                };
                match check(ret) {
                    Ok(n) => return Ok(n),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: closing an owned fd exactly once.
            let _ = unsafe { syscall6(nr::CLOSE, self.fd as usize, 0, 0, 0, 0, 0) };
        }
    }

    /// A nonblocking eventfd: a one-word kernel counter used to wake an
    /// [`Epoll::wait`] from another thread.
    #[derive(Debug)]
    pub struct EventFd {
        fd: RawFd,
    }

    impl EventFd {
        /// A fresh nonblocking close-on-exec eventfd with counter 0.
        pub fn new() -> io::Result<EventFd> {
            // SAFETY: no pointer arguments.
            let fd = check(unsafe {
                syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0)
            })?;
            Ok(EventFd { fd: fd as RawFd })
        }

        /// The fd to register with an epoll instance.
        pub fn raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Bumps the counter, waking any epoll watching this fd. A full
        /// counter (`EAGAIN`) already guarantees a pending wake.
        pub fn notify(&self) {
            let one: u64 = 1;
            // SAFETY: writing 8 bytes from a live u64.
            let _ = unsafe {
                syscall6(
                    nr::WRITE,
                    self.fd as usize,
                    (&one as *const u64) as usize,
                    8,
                    0,
                    0,
                    0,
                )
            };
        }

        /// Resets the counter to 0 so the next [`notify`](Self::notify)
        /// wakes again. `EAGAIN` (already 0) is fine.
        pub fn drain(&self) {
            let mut buf: u64 = 0;
            // SAFETY: reading 8 bytes into a live u64.
            let _ = unsafe {
                syscall6(
                    nr::READ,
                    self.fd as usize,
                    (&mut buf as *mut u64) as usize,
                    8,
                    0,
                    0,
                    0,
                )
            };
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            // SAFETY: closing an owned fd exactly once.
            let _ = unsafe { syscall6(nr::CLOSE, self.fd as usize, 0, 0, 0, 0, 0) };
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    //! The stub fallback: same API, every constructor refuses, so callers
    //! can gate on the one `Unsupported` error (or check
    //! [`super::SUPPORTED`] first) and fall back to blocking I/O.

    use super::EpollEvent;
    use std::io;
    use std::os::unix::io::RawFd;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll reactor requires x86-64 or AArch64 Linux; use --io-model threads",
        )
    }

    /// Stub epoll handle (never constructed).
    #[derive(Debug)]
    pub struct Epoll {}

    impl Epoll {
        /// Always refuses on unsupported targets.
        pub fn new() -> io::Result<Epoll> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn add(&self, _fd: RawFd, _events: u32, _token: u64) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn modify(&self, _fd: RawFd, _events: u32, _token: u64) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn del(&self, _fd: RawFd) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn wait(&self, _events: &mut [EpollEvent], _timeout_ms: i32) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    /// Stub eventfd handle (never constructed).
    #[derive(Debug)]
    pub struct EventFd {}

    impl EventFd {
        /// Always refuses on unsupported targets.
        pub fn new() -> io::Result<EventFd> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn raw_fd(&self) -> RawFd {
            -1
        }

        /// Unreachable (no instance can exist).
        pub fn notify(&self) {}

        /// Unreachable (no instance can exist).
        pub fn drain(&self) {}
    }
}

pub use imp::{Epoll, EventFd};

#[cfg(all(
    test,
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn eventfd_wakes_an_epoll_wait() {
        let epoll = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        epoll.add(efd.raw_fd(), EPOLLIN, 7).unwrap();

        // Nothing pending: a zero-timeout wait reports nothing.
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        efd.notify();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].data(), 7);
        assert_ne!(events[0].bits() & EPOLLIN, 0);

        // Drained, the level-triggered readiness clears.
        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        // And a second notify wakes again.
        efd.notify();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
    }

    #[test]
    fn socket_readability_and_writability_are_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll
            .add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
            .unwrap();

        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "idle socket");

        client.write_all(b"hello\n").unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].data(), 42);
        assert_ne!(events[0].bits() & EPOLLIN, 0);

        // MOD to write-interest: an idle socket is immediately writable.
        epoll.modify(server.as_raw_fd(), EPOLLOUT, 43).unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].data(), 43);
        assert_ne!(events[0].bits() & EPOLLOUT, 0);

        // Hangup from the peer surfaces on read-interest.
        epoll
            .modify(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 44)
            .unwrap();
        drop(client);
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(events[0].bits() & (EPOLLIN | EPOLLRDHUP | EPOLLHUP), 0);

        epoll.del(server.as_raw_fd()).unwrap();
    }
}
