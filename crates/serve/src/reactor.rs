//! The sharded nonblocking event-loop core: N reactor shards, each
//! owning a set of accepted connections on one epoll instance, so 10k
//! mostly-idle clients cost file descriptors instead of threads.
//!
//! Each shard runs one thread around [`sys::Epoll::wait`]. A connection
//! lives entirely on its shard: the shard reads into a per-connection
//! buffer, frames complete `\n`-terminated lines, parses them with the
//! same [`crate::handle_request_line`] path as the blocking model, and
//! hands jobs to the shared bounded worker queue. Workers answer through
//! a [`ReactorConn`] handle that appends to the connection's write buffer
//! and wakes the shard via its eventfd; the shard flushes opportunistically
//! and falls back to `EPOLLOUT` interest when the socket pushes back.
//!
//! Overload semantics differ deliberately from the blocking model: a
//! reader thread can afford to *block* on a full queue (2 s push
//! patience), an event loop cannot — one stalled push would freeze every
//! connection on the shard. Reactor pushes use zero patience and answer
//! `overloaded` immediately, which is also the honest signal an open-loop
//! client wants under saturation.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::protocol::MAX_LINE_BYTES;
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::{handle_request_line, LineDisposition, ReactorCtx, ResponseSink};

/// Eventfd wake token; connection tokens start above it.
const WAKE_TOKEN: u64 = 0;

/// Readiness reports fetched per `epoll_pwait`.
const MAX_EVENTS: usize = 256;

/// Idle wait bound, ms: the loop re-checks its stop flag at least this
/// often even if no wake arrives.
const WAIT_MS: i32 = 100;

/// Read chunk size per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// Most bytes a connection's write buffer may hold before the server
/// gives up on a client that stopped reading (8 MiB).
const MAX_OUT_BUFFER: usize = 8 << 20;

/// State a shard shares with the accept loop and with workers: the wake
/// eventfd, freshly accepted connections, and tokens with pending writes.
#[derive(Debug)]
pub(crate) struct ShardShared {
    efd: EventFd,
    inbox: Mutex<Vec<(TcpStream, SocketAddr)>>,
    dirty: Mutex<Vec<u64>>,
}

/// One connection's write half, handed to workers inside jobs. Appends
/// land in the connection's out-buffer; the owning shard does the actual
/// socket writes.
#[derive(Debug)]
pub(crate) struct ReactorConn {
    token: u64,
    shard: Arc<ShardShared>,
    out: Mutex<Vec<u8>>,
    /// Set once the shard closed (or condemned) the connection; late
    /// answers are dropped, matching the blocking model's "a failed write
    /// means the client left".
    dead: AtomicBool,
}

impl ResponseSink for ReactorConn {
    fn send_line(&self, line: &str) {
        if self.dead.load(Ordering::Acquire) {
            return;
        }
        {
            let mut out = self.out.lock().expect("reactor out buffer");
            if out.len() + line.len() + 1 > MAX_OUT_BUFFER {
                // The client has MAX_OUT_BUFFER of unread answers; it is
                // not reading. Condemn the connection rather than buffer
                // without bound.
                self.dead.store(true, Ordering::Release);
            } else {
                out.extend_from_slice(line.as_bytes());
                out.push(b'\n');
            }
        }
        self.shard
            .dirty
            .lock()
            .expect("reactor dirty list")
            .push(self.token);
        self.shard.efd.notify();
    }
}

/// A shard-owned connection: the socket, its read/write framing state,
/// and the worker-facing handle.
#[derive(Debug)]
struct ConnState {
    stream: TcpStream,
    handle: Arc<ReactorConn>,
    peer: Arc<str>,
    rbuf: Vec<u8>,
    /// Currently registered for `EPOLLOUT` as well as `EPOLLIN`.
    want_write: bool,
    /// Close once the out-buffer drains (EOF seen, fatal protocol error,
    /// or queue closed for shutdown).
    draining: bool,
    /// An oversized line is being absorbed: discard input until its
    /// terminating newline, then drain and close.
    absorbing: bool,
}

/// The running reactor: shard threads plus the shared state the accept
/// loop needs to feed them.
#[derive(Debug)]
pub(crate) struct Reactor {
    shards: Vec<Arc<ShardShared>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    next: usize,
}

impl Reactor {
    /// Starts `shards` event-loop threads.
    ///
    /// # Errors
    ///
    /// Fails when an epoll instance or eventfd cannot be created — on
    /// unsupported targets that is `ErrorKind::Unsupported`, and the
    /// caller should fall back to the blocking model.
    pub fn start(shards: usize, ctx: Arc<ReactorCtx>) -> std::io::Result<Reactor> {
        let stop = Arc::new(AtomicBool::new(false));
        let mut shared = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard_id in 0..shards.max(1) {
            let epoll = Epoll::new()?;
            let efd = EventFd::new()?;
            epoll.add(efd.raw_fd(), EPOLLIN, WAKE_TOKEN)?;
            let shard = Arc::new(ShardShared {
                efd,
                inbox: Mutex::new(Vec::new()),
                dirty: Mutex::new(Vec::new()),
            });
            shared.push(Arc::clone(&shard));
            let ctx = Arc::clone(&ctx);
            let stop = Arc::clone(&stop);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("reactor-{shard_id}"))
                    .spawn(move || shard_loop(&epoll, &shard, &ctx, &stop))
                    .map_err(std::io::Error::other)?,
            );
        }
        Ok(Reactor {
            shards: shared,
            handles,
            stop,
            next: 0,
        })
    }

    /// Hands a freshly accepted connection to the next shard round-robin.
    pub fn assign(&mut self, stream: TcpStream, peer: SocketAddr) {
        let shard = &self.shards[self.next % self.shards.len()];
        self.next = self.next.wrapping_add(1);
        shard
            .inbox
            .lock()
            .expect("reactor inbox")
            .push((stream, peer));
        shard.efd.notify();
    }

    /// Stops every shard, letting each flush its remaining out-buffers
    /// (call only after the worker pool has drained, so every pending
    /// answer is already buffered), and joins the threads.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            shard.efd.notify();
        }
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

/// One shard's event loop: wait, read, frame, enqueue, flush, repeat.
fn shard_loop(epoll: &Epoll, shard: &Arc<ShardShared>, ctx: &Arc<ReactorCtx>, stop: &AtomicBool) {
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut next_token: u64 = WAKE_TOKEN + 1;
    let mut events = vec![EpollEvent::default(); MAX_EVENTS];

    loop {
        let n = epoll.wait(&mut events, WAIT_MS).unwrap_or(0);
        for event in events.iter().take(n) {
            let token = event.data();
            let bits = event.bits();
            if token == WAKE_TOKEN {
                shard.efd.drain();
                continue;
            }
            if bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
                handle_readable(epoll, &mut conns, token, ctx);
            }
            if bits & EPOLLOUT != 0 {
                flush_conn(epoll, &mut conns, token);
            }
        }

        // Adopt connections the accept loop queued for this shard.
        let adopted: Vec<(TcpStream, SocketAddr)> =
            std::mem::take(&mut *shard.inbox.lock().expect("reactor inbox"));
        for (stream, peer) in adopted {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let token = next_token;
            next_token += 1;
            if epoll
                .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                .is_err()
            {
                continue;
            }
            let handle = Arc::new(ReactorConn {
                token,
                shard: Arc::clone(shard),
                out: Mutex::new(Vec::new()),
                dead: AtomicBool::new(false),
            });
            conns.insert(
                token,
                ConnState {
                    stream,
                    handle,
                    peer: Arc::from(peer.to_string()),
                    rbuf: Vec::new(),
                    want_write: false,
                    draining: false,
                    absorbing: false,
                },
            );
        }

        // Flush connections workers marked dirty since the last pass.
        let dirty: Vec<u64> = std::mem::take(&mut *shard.dirty.lock().expect("reactor dirty list"));
        for token in dirty {
            flush_conn(epoll, &mut conns, token);
        }

        if stop.load(Ordering::SeqCst) {
            break;
        }
    }

    // Shutdown: workers have drained, every answer is buffered. Deliver
    // what remains with blocking writes (bounded by a timeout) so the
    // final responses — including the `shutting_down` envelope — land.
    for (_, conn) in conns {
        conn.handle.dead.store(true, Ordering::Release);
        let out = conn.handle.out.lock().expect("reactor out buffer");
        if out.is_empty() {
            continue;
        }
        let mut stream = conn.stream;
        if stream.set_nonblocking(false).is_ok() {
            let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
            let _ = stream.write_all(&out);
            let _ = stream.flush();
        }
    }
}

/// Removes a connection from the shard, condemning its handle so late
/// worker answers are dropped instead of written to a dead socket.
fn close_conn(epoll: &Epoll, conns: &mut HashMap<u64, ConnState>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        conn.handle.dead.store(true, Ordering::Release);
        let _ = epoll.del(conn.stream.as_raw_fd());
    }
}

/// Reads everything currently available on `token`, frames complete
/// lines, and enqueues the requests they parse into.
fn handle_readable(
    epoll: &Epoll,
    conns: &mut HashMap<u64, ConnState>,
    token: u64,
    ctx: &Arc<ReactorCtx>,
) {
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    let mut tmp = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                conn.draining = true;
                break;
            }
            Ok(n) => {
                if conn.absorbing {
                    // Discard the rest of an oversized line; its newline
                    // ends the absorption and the connection drains away.
                    if let Some(pos) = tmp[..n].iter().position(|&b| b == b'\n') {
                        let _ = pos;
                        conn.absorbing = false;
                        conn.draining = true;
                        break;
                    }
                    continue;
                }
                conn.rbuf.extend_from_slice(&tmp[..n]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                close_conn(epoll, conns, token);
                return;
            }
        }
        process_lines(conn, ctx);
        if conn.draining || conn.absorbing {
            break;
        }
    }
    process_lines(conn, ctx);
    flush_conn(epoll, conns, token);
}

/// Extracts every complete line from the connection's read buffer and
/// dispatches it; flags oversized lines for absorption.
fn process_lines(conn: &mut ConnState, ctx: &Arc<ReactorCtx>) {
    if conn.draining || conn.absorbing {
        return;
    }
    loop {
        match conn.rbuf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let rest = conn.rbuf.split_off(pos + 1);
                let mut line_bytes = std::mem::replace(&mut conn.rbuf, rest);
                line_bytes.pop(); // the newline
                if line_bytes.len() > MAX_LINE_BYTES {
                    reject_oversized(conn, ctx);
                    conn.draining = true;
                    return;
                }
                let line = String::from_utf8_lossy(&line_bytes);
                let sink: Arc<dyn ResponseSink> = conn.handle.clone();
                // Zero push patience: an event loop must not block on a
                // full queue, so overload answers `overloaded` at once.
                match handle_request_line(&line, &sink, &conn.peer, ctx, Duration::ZERO) {
                    LineDisposition::Continue => {}
                    LineDisposition::Close => {
                        conn.draining = true;
                        return;
                    }
                }
            }
            None => {
                if conn.rbuf.len() > MAX_LINE_BYTES {
                    reject_oversized(conn, ctx);
                    conn.rbuf.clear();
                    conn.absorbing = true;
                }
                return;
            }
        }
    }
}

/// Answers an oversized line with the protocol error, mirroring the
/// blocking model's response and accounting.
fn reject_oversized(conn: &mut ConnState, ctx: &Arc<ReactorCtx>) {
    conn.handle.send_line(&crate::protocol::envelope_err(
        "null",
        None,
        None,
        crate::protocol::ErrCode::Oversized,
        &format!("request line exceeds {MAX_LINE_BYTES} bytes; closing connection"),
    ));
    ctx.engine.stats.record_rejected(None);
    ctx.obs
        .log
        .warn("oversized_line")
        .str("peer", &conn.peer)
        .u64("limit_bytes", MAX_LINE_BYTES as u64)
        .emit();
}

/// Writes as much of the connection's out-buffer as the socket accepts,
/// toggling `EPOLLOUT` interest around the backlog and closing draining
/// connections once empty.
fn flush_conn(epoll: &Epoll, conns: &mut HashMap<u64, ConnState>, token: u64) {
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    if conn.handle.dead.load(Ordering::Acquire) {
        close_conn(epoll, conns, token);
        return;
    }
    let mut broken = false;
    let empty = {
        let mut out = conn.handle.out.lock().expect("reactor out buffer");
        let mut written = 0usize;
        while written < out.len() {
            match conn.stream.write(&out[written..]) {
                Ok(0) => {
                    broken = true;
                    break;
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    broken = true;
                    break;
                }
            }
        }
        out.drain(..written);
        out.is_empty()
    };
    if broken {
        close_conn(epoll, conns, token);
        return;
    }
    if empty {
        if conn.want_write {
            conn.want_write = false;
            let _ = epoll.modify(conn.stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token);
        }
        if conn.draining {
            close_conn(epoll, conns, token);
        }
    } else if !conn.want_write {
        conn.want_write = true;
        let _ = epoll.modify(
            conn.stream.as_raw_fd(),
            EPOLLIN | EPOLLRDHUP | EPOLLOUT,
            token,
        );
    }
}
