//! Append-only on-disk result store: the persistent tier under the
//! in-memory splice cache.
//!
//! Layout: a directory of JSONL segments (`seg-00000.jsonl`, …), each
//! line one `{"k":"<cache key>","v":"<envelope result body>"}` record.
//! Records are immutable once written; re-answering a key appends a new
//! record and lookups walk the index newest-first (last-wins). An FNV
//! hash index maps key hashes to record locations, so a lookup is one
//! `pread` plus a key verification — no seeks through cold segments.
//!
//! Crash safety is by construction: the only mutation is an append, so
//! the only possible corruption is a torn tail on the *last* segment. On
//! open, a trailing record that fails to parse (or lacks its newline) is
//! truncated away and the store continues from the previous record. A
//! malformed line in any *earlier* segment is real corruption and fails
//! the open loudly rather than silently serving damaged bodies.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::cache::fnv1a;

/// Default segment roll threshold: 4 MiB keeps torn-tail scans and
/// per-segment reader handles cheap without fragmenting small stores.
const DEFAULT_ROLL_BYTES: u64 = 4 << 20;

/// One persisted record. Bodies are stored verbatim as JSON strings, so
/// the round-trip through the vendored serializer is byte-exact.
#[derive(Debug, Serialize, Deserialize)]
struct StoreRecord {
    k: String,
    v: String,
}

/// Where a record lives: segment ordinal, byte offset, line length
/// (including the trailing newline).
#[derive(Debug, Clone, Copy)]
struct Loc {
    seg: usize,
    off: u64,
    len: u32,
}

#[derive(Debug)]
struct Inner {
    /// FNV-64 of the key → locations, oldest first.
    index: HashMap<u64, Vec<Loc>>,
    /// One shared read handle per segment, ordinal order.
    readers: Vec<Arc<File>>,
    /// Append handle for the last segment.
    active: File,
    active_seg: usize,
    active_len: u64,
    records: u64,
    total_bytes: u64,
}

/// Counters and sizes for the `cache` op's disk tier report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Indexed records (all segments; superseded versions included).
    pub records: u64,
    /// Segment files on disk, the active one included.
    pub segments: u64,
    /// Total bytes across all segments.
    pub bytes: u64,
    /// Lifetime lookups that found the key.
    pub hits: u64,
    /// Lifetime lookups that missed.
    pub misses: u64,
    /// Lifetime records appended through this handle.
    pub appends: u64,
}

/// The append-only store. All methods take `&self`; appends serialize on
/// an internal lock while reads clone the segment handle out of the lock
/// and `pread` concurrently.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    roll_bytes: u64,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    appends: AtomicU64,
}

fn segment_name(seg: usize) -> String {
    format!("seg-{seg:05}.jsonl")
}

impl Store {
    /// Opens (or creates) a store directory with the default segment
    /// roll threshold.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, on a malformed record anywhere but the tail
    /// of the last segment, and on a gap in the segment sequence.
    pub fn open(dir: &Path) -> std::io::Result<Store> {
        Store::open_with_roll(dir, DEFAULT_ROLL_BYTES)
    }

    /// [`Store::open`] with an explicit roll threshold — a test hook so
    /// segment rolling is exercised without 4 MiB fixtures.
    pub fn open_with_roll(dir: &Path, roll_bytes: u64) -> std::io::Result<Store> {
        std::fs::create_dir_all(dir)?;
        let mut segs: Vec<usize> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(ord) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".jsonl"))
                .and_then(|s| s.parse::<usize>().ok())
            {
                segs.push(ord);
            }
        }
        segs.sort_unstable();
        if segs.is_empty() {
            segs.push(0);
            File::create(dir.join(segment_name(0)))?;
        }
        for (i, &ord) in segs.iter().enumerate() {
            if i != ord {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "store {}: segment sequence has a gap at ordinal {i} (found {ord})",
                        dir.display()
                    ),
                ));
            }
        }

        let last = segs.len() - 1;
        let mut index: HashMap<u64, Vec<Loc>> = HashMap::new();
        let mut readers = Vec::with_capacity(segs.len());
        let mut records = 0u64;
        let mut total_bytes = 0u64;
        let mut active_len = 0u64;
        for &seg in &segs {
            let path = dir.join(segment_name(seg));
            let mut raw = Vec::new();
            File::open(&path)?.read_to_end(&mut raw)?;
            let keep = index_segment(&mut index, seg, &raw, &mut records).map_err(|line| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "store {}: malformed record at byte {line} of non-tail segment {}",
                        dir.display(),
                        segment_name(seg)
                    ),
                )
            });
            let keep = match keep {
                Ok(keep) => keep,
                Err(e) if seg == last => {
                    // A torn tail is expected after a crash; anything
                    // unparseable before the tail is not.
                    return Err(e);
                }
                Err(e) => return Err(e),
            };
            if keep < raw.len() as u64 {
                if seg == last {
                    OpenOptions::new().write(true).open(&path)?.set_len(keep)?;
                } else {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "store {}: trailing garbage in non-tail segment {}",
                            dir.display(),
                            segment_name(seg)
                        ),
                    ));
                }
            }
            if seg == last {
                active_len = keep;
            }
            total_bytes += keep;
            readers.push(Arc::new(File::open(&path)?));
        }

        let active = OpenOptions::new()
            .append(true)
            .open(dir.join(segment_name(last)))?;
        Ok(Store {
            dir: dir.to_path_buf(),
            roll_bytes,
            inner: Mutex::new(Inner {
                index,
                readers,
                active,
                active_seg: last,
                active_len,
                records,
                total_bytes,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            appends: AtomicU64::new(0),
        })
    }

    /// Looks up the newest body stored under `key`, verifying the key
    /// match on the record itself (the index is only a hash).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<String> {
        let hash = fnv1a(key);
        let candidates: Vec<(Arc<File>, Loc)> = {
            let inner = self.inner.lock().expect("store lock");
            match inner.index.get(&hash) {
                Some(locs) => locs
                    .iter()
                    .rev()
                    .map(|&loc| (Arc::clone(&inner.readers[loc.seg]), loc))
                    .collect(),
                None => Vec::new(),
            }
        };
        for (file, loc) in candidates {
            let mut buf = vec![0u8; loc.len as usize];
            if file.read_exact_at(&mut buf, loc.off).is_err() {
                continue;
            }
            let Ok(text) = std::str::from_utf8(&buf) else {
                continue;
            };
            let Ok(record) = serde_json::from_str::<StoreRecord>(text.trim_end()) else {
                continue;
            };
            if record.k == key {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(record.v);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Appends a record, rolling to a fresh segment past the threshold.
    /// The line is flushed before the index learns about it, so a reader
    /// never sees a location that is not yet durable in the file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the segment write or roll; the store
    /// stays usable (the failed record is simply not indexed).
    pub fn append(&self, key: &str, body: &str) -> std::io::Result<()> {
        let mut line = serde_json::to_string(&StoreRecord {
            k: key.to_string(),
            v: body.to_string(),
        })
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');

        let mut inner = self.inner.lock().expect("store lock");
        if inner.active_len > 0 && inner.active_len + line.len() as u64 > self.roll_bytes {
            let seg = inner.active_seg + 1;
            let path = self.dir.join(segment_name(seg));
            inner.active = OpenOptions::new().append(true).create(true).open(&path)?;
            inner.readers.push(Arc::new(File::open(&path)?));
            inner.active_seg = seg;
            inner.active_len = 0;
        }
        let loc = Loc {
            seg: inner.active_seg,
            off: inner.active_len,
            len: line.len() as u32,
        };
        inner.active.write_all(line.as_bytes())?;
        inner.active.flush()?;
        inner.active_len += line.len() as u64;
        inner.total_bytes += line.len() as u64;
        inner.records += 1;
        inner.index.entry(fnv1a(key)).or_default().push(loc);
        self.appends.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Snapshot of sizes and counters for the `cache` op.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store lock");
        StoreStats {
            records: inner.records,
            segments: inner.readers.len() as u64,
            bytes: inner.total_bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
        }
    }
}

/// Indexes one segment's raw bytes, returning how many bytes form whole,
/// valid records (the durable prefix). A malformed *complete* line is an
/// error carrying its byte offset; an incomplete tail line just ends the
/// durable prefix.
fn index_segment(
    index: &mut HashMap<u64, Vec<Loc>>,
    seg: usize,
    raw: &[u8],
    records: &mut u64,
) -> Result<u64, u64> {
    let mut off = 0usize;
    while off < raw.len() {
        let Some(nl) = raw[off..].iter().position(|&b| b == b'\n') else {
            break; // incomplete tail — durable prefix ends here
        };
        let line = &raw[off..off + nl];
        let parsed = std::str::from_utf8(line)
            .ok()
            .and_then(|text| serde_json::from_str::<StoreRecord>(text).ok());
        let Some(record) = parsed else {
            return Err(off as u64);
        };
        index.entry(fnv1a(&record.k)).or_default().push(Loc {
            seg,
            off: off as u64,
            len: (nl + 1) as u32,
        });
        *records += 1;
        off += nl + 1;
    }
    Ok(off as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wsn-store-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn round_trips_bodies_byte_identically_across_reopen() {
        let dir = temp_dir("roundtrip");
        let body = "{\"metrics\":{\"prr\":0.925,\"delay_ms\":12.0}}";
        {
            let store = Store::open(&dir).expect("open");
            store.append("sim|d:0001|n:400", body).expect("append");
            assert_eq!(store.get("sim|d:0001|n:400").as_deref(), Some(body));
        }
        let store = Store::open(&dir).expect("reopen");
        assert_eq!(store.get("sim|d:0001|n:400").as_deref(), Some(body));
        assert_eq!(store.get("sim|d:0002|n:400"), None);
        let stats = store.stats();
        assert_eq!(stats.records, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_records_survive() {
        let dir = temp_dir("torn");
        {
            let store = Store::open(&dir).expect("open");
            store.append("a", "1").expect("append");
            store.append("b", "2").expect("append");
        }
        let path = dir.join(segment_name(0));
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        f.write_all(b"{\"k\":\"c\",\"v\":\"3")
            .expect("write torn tail");
        drop(f);

        let store = Store::open(&dir).expect("recover");
        assert_eq!(store.get("a").as_deref(), Some("1"));
        assert_eq!(store.get("b").as_deref(), Some("2"));
        assert_eq!(store.get("c"), None);
        assert_eq!(store.stats().records, 2);
        // The torn bytes are physically gone, not just skipped.
        let len = std::fs::metadata(&path).expect("meta").len();
        let store_bytes = store.stats().bytes;
        assert_eq!(len, store_bytes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_line_before_the_tail_fails_the_open() {
        let dir = temp_dir("corrupt");
        {
            let store = Store::open(&dir).expect("open");
            store.append("a", "1").expect("append");
        }
        let path = dir.join(segment_name(0));
        let good = std::fs::read(&path).expect("read");
        let mut bad = b"not json at all\n".to_vec();
        bad.extend_from_slice(&good);
        std::fs::write(&path, bad).expect("write");
        let err = Store::open(&dir).expect_err("corrupt mid-segment must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_roll_at_the_threshold_and_reload_contiguously() {
        let dir = temp_dir("roll");
        {
            let store = Store::open_with_roll(&dir, 128).expect("open");
            for i in 0..20 {
                store
                    .append(&format!("key-{i}"), &format!("body-{i:04}"))
                    .expect("append");
            }
            assert!(store.stats().segments > 1, "roll threshold never tripped");
        }
        let store = Store::open_with_roll(&dir, 128).expect("reopen");
        for i in 0..20 {
            assert_eq!(
                store.get(&format!("key-{i}")).as_deref(),
                Some(format!("body-{i:04}").as_str())
            );
        }
        assert_eq!(store.stats().records, 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn last_wins_when_a_key_is_appended_twice() {
        let dir = temp_dir("lastwins");
        let store = Store::open(&dir).expect("open");
        store.append("k", "old").expect("append");
        store.append("k", "new").expect("append");
        assert_eq!(store.get("k").as_deref(), Some("new"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bodies_with_escapes_and_floats_survive_the_jsonl_round_trip() {
        let dir = temp_dir("escape");
        let body = "{\"s\":\"line\\nbreak \\\"quoted\\\"\",\"x\":0.30000000000000004,\"y\":-1e-9}";
        {
            let store = Store::open(&dir).expect("open");
            store.append("esc", body).expect("append");
        }
        let store = Store::open(&dir).expect("reopen");
        assert_eq!(store.get("esc").as_deref(), Some(body));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_trailing_newline_is_recovered_like_a_torn_tail() {
        let dir = temp_dir("nonewline");
        {
            let store = Store::open(&dir).expect("open");
            store.append("a", "1").expect("append");
        }
        let path = dir.join(segment_name(0));
        let mut raw = std::fs::read(&path).expect("read");
        assert_eq!(raw.pop(), Some(b'\n'));
        std::fs::write(&path, &raw).expect("strip newline");
        let store = Store::open(&dir).expect("recover");
        // Without its newline the sole record is an incomplete tail.
        assert_eq!(store.get("a"), None);
        assert_eq!(store.stats().records, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
