//! End-to-end tests of the query service over real TCP sockets: routing
//! under concurrency, byte-identical caching, robustness against hostile
//! input, deadlines, and graceful shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use wsn_serve::{Server, ServerConfig};

/// Starts a server on an ephemeral port and returns its address plus the
/// handle that joins `run()`.
fn start(
    config: ServerConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<Result<(), wsn_serve::ServeError>>,
) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..config
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

/// One request → one response over a fresh connection.
fn roundtrip(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    request_on(&mut stream, line)
}

/// One request → one response on an existing connection.
fn request_on(stream: &mut TcpStream, line: &str) -> String {
    writeln!(stream, "{line}").expect("send request");
    read_response(stream)
}

fn read_response(stream: &mut TcpStream) -> String {
    let mut response = String::new();
    BufReader::new(stream.try_clone().expect("clone stream"))
        .read_line(&mut response)
        .expect("read response");
    response.trim_end().to_string()
}

/// Tells two servers' tests apart in the kernel's eyes: every test here
/// shuts its server down so no thread outlives the test.
fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<Result<(), wsn_serve::ServeError>>) {
    let response = roundtrip(addr, r#"{"op":"shutdown"}"#);
    assert!(response.contains("shutting_down"), "{response}");
    handle.join().expect("server thread").expect("clean exit");
}

/// The `result` portion of an envelope — the part the byte-identity
/// contract covers (`cached`/`service_us` legitimately differ).
fn result_part(envelope: &str) -> &str {
    let idx = envelope.find("\"result\":").expect("has result");
    &envelope[idx..]
}

#[test]
fn ten_concurrent_clients_get_correctly_routed_responses() {
    let (addr, handle) = start(ServerConfig {
        threads: 4,
        ..ServerConfig::default()
    });

    const CLIENTS: usize = 10;
    const REQUESTS: usize = 5;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                // Pipeline everything, then read all responses: exercises
                // out-of-order execution with in-order-agnostic routing.
                for r in 0..REQUESTS {
                    let distance = 10.0 + c as f64;
                    writeln!(
                        stream,
                        r#"{{"id":"c{c}-r{r}","op":"predict","config":{{"distance_m":{distance},"power_level":{power}}}}}"#,
                        power = 3 + 4 * (r % 8),
                    )
                    .expect("send");
                }
                let mut reader = BufReader::new(stream);
                let mut got = Vec::new();
                for _ in 0..REQUESTS {
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("read");
                    got.push(line.trim_end().to_string());
                }
                (c, got)
            })
        })
        .collect();

    for worker in workers {
        let (c, responses) = worker.join().expect("client thread");
        assert_eq!(responses.len(), REQUESTS, "client {c} dropped responses");
        // Responses may complete out of order (that is what the id echo is
        // for), but every id this client sent must come back exactly once,
        // carrying this client's distance — nothing leaked across
        // connections.
        for r in 0..REQUESTS {
            let id = format!("\"id\":\"c{c}-r{r}\"");
            let matching: Vec<&String> =
                responses.iter().filter(|resp| resp.contains(&id)).collect();
            assert_eq!(
                matching.len(),
                1,
                "client {c} expected exactly one response for {id}: {responses:?}"
            );
            let response = matching[0];
            assert!(response.contains("\"ok\":true"), "{response}");
            let expected_distance = format!("\"distance\":{:.1}", 10.0 + c as f64);
            assert!(
                response.contains(&expected_distance),
                "client {c} expected {expected_distance} in {response}"
            );
        }
    }

    shutdown(addr, handle);
}

#[test]
fn repeated_request_is_cached_and_byte_identical_across_connections() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });

    let request =
        r#"{"id":1,"op":"simulate","packets":60,"config":{"distance_m":25.0,"power_level":19}}"#;
    let first = roundtrip(addr, request);
    assert!(first.contains("\"cached\":false"), "{first}");

    // A different connection, same canonical question.
    let second = roundtrip(addr, request);
    assert!(second.contains("\"cached\":true"), "{second}");
    assert_eq!(
        result_part(&first),
        result_part(&second),
        "cached result must be byte-identical"
    );

    // The cache hit is answered in well under a millisecond.
    let service_us: u64 = {
        let tail = &second[second.find("\"service_us\":").unwrap() + 13..];
        tail[..tail.find(',').unwrap()].parse().unwrap()
    };
    assert!(service_us < 1_000, "cache hit took {service_us} µs");

    // And the stats op agrees about the hit.
    let stats = roundtrip(addr, r#"{"op":"stats"}"#);
    assert!(stats.contains("\"cache_hits\":1"), "{stats}");

    shutdown(addr, handle);
}

#[test]
fn fast_engine_requests_are_answered_and_cached_apart_from_golden() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });

    let golden =
        r#"{"id":1,"op":"simulate","packets":60,"config":{"distance_m":25.0,"power_level":19}}"#;
    let fast = r#"{"id":2,"op":"simulate","packets":60,"config":{"distance_m":25.0,"power_level":19},"engine":"fast"}"#;

    let g = roundtrip(addr, golden);
    assert!(g.contains("\"cached\":false"), "{g}");
    assert!(g.contains("\"engine\":\"golden\""), "{g}");

    // Same question under the fast engine: the cache must recompute, never
    // serve the golden body across the mode boundary.
    let f = roundtrip(addr, fast);
    assert!(f.contains("\"cached\":false"), "{f}");
    assert!(f.contains("\"engine\":\"fast\""), "{f}");
    assert_ne!(result_part(&g), result_part(&f));

    // Each mode then replays byte-identically from its own line.
    let f2 = roundtrip(addr, fast);
    assert!(f2.contains("\"cached\":true"), "{f2}");
    assert_eq!(result_part(&f), result_part(&f2));
    let g2 = roundtrip(addr, golden);
    assert!(g2.contains("\"cached\":true"), "{g2}");
    assert_eq!(result_part(&g), result_part(&g2));

    shutdown(addr, handle);
}

#[test]
fn malformed_requests_draw_errors_but_never_kill_the_connection() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");

    // Every rejection carries its machine-readable `code` — clients
    // dispatch on that, not on message prose.
    for (bad, code) in [
        ("this is not json", "bad_request"),
        (r#"{"id":9,"op":"simulify"}"#, "unknown_op"),
        (r#"{"id":9,"op":"simulate","packet":5}"#, "bad_request"),
        (
            r#"{"id":9,"op":"simulate","config":{"power_level":0}}"#,
            "bad_request",
        ),
        (r#"[1,2,3]"#, "bad_request"),
        (
            r#"{"id":9,"op":"simulate","engine":"warp"}"#,
            "unknown_engine",
        ),
        (r#"{"id":9,"op":"tune","objective":"vibes"}"#, "bad_request"),
        (
            r#"{"id":9,"op":"scenario","scenario":"nope"}"#,
            "bad_request",
        ),
        (r#"{"id":9,"op":"predict","proto":2}"#, "bad_request"),
    ] {
        let response = request_on(&mut stream, bad);
        assert!(response.contains("\"ok\":false"), "{bad} → {response}");
        assert!(
            response.contains(&format!("\"code\":\"{code}\"")),
            "{bad} → {response}"
        );
    }

    // After all that abuse, the same connection still answers real work.
    let response = request_on(&mut stream, r#"{"id":"ok","op":"predict"}"#);
    assert!(response.contains("\"ok\":true"), "{response}");
    assert!(response.contains("\"id\":\"ok\""), "{response}");

    shutdown(addr, handle);
}

#[test]
fn oversized_line_closes_that_connection_but_not_the_server() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });

    let mut stream = TcpStream::connect(addr).expect("connect");
    // Just over the 1 MiB line cap, with no newline in sight.
    let garbage = vec![b'x'; (1 << 20) + 8192];
    stream.write_all(&garbage).expect("send garbage");
    stream.write_all(b"\n").ok();

    let mut response = String::new();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    reader
        .read_line(&mut response)
        .expect("read error response");
    assert!(response.contains("\"ok\":false"), "{response}");
    assert!(response.contains("\"code\":\"oversized\""), "{response}");

    // The server closed this connection afterwards …
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut rest = Vec::new();
    let n = reader.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "connection should be closed after oversized line");

    // … but keeps serving new ones.
    let response = roundtrip(addr, r#"{"id":"still-up","op":"predict"}"#);
    assert!(response.contains("\"ok\":true"), "{response}");

    shutdown(addr, handle);
}

#[test]
fn queued_past_its_deadline_draws_a_deadline_error() {
    // One worker: a slow simulation in front guarantees the impatient
    // request waits in the queue past its (zero) deadline.
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");

    writeln!(
        stream,
        r#"{{"id":"slow","op":"simulate","packets":50000,"config":{{"distance_m":35.0,"power_level":3}}}}"#
    )
    .expect("send slow");
    writeln!(
        stream,
        r#"{{"id":"impatient","op":"predict","deadline_ms":0}}"#
    )
    .expect("send impatient");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut slow = String::new();
    reader.read_line(&mut slow).expect("slow response");
    assert!(slow.contains("\"id\":\"slow\""), "{slow}");
    assert!(slow.contains("\"ok\":true"), "{slow}");

    let mut impatient = String::new();
    reader
        .read_line(&mut impatient)
        .expect("impatient response");
    assert!(impatient.contains("\"id\":\"impatient\""), "{impatient}");
    assert!(impatient.contains("\"code\":\"deadline\""), "{impatient}");

    shutdown(addr, handle);
}

#[test]
fn expired_request_counts_as_deadline_exceeded_without_contaminating_exec_times() {
    // One worker: the slow simulation in front guarantees the impatient
    // request expires in the queue. The stats op must then show the corpse
    // under `deadline_exceeded` — NOT as a ~0 µs sample in `exec_us`.
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");

    writeln!(
        stream,
        r#"{{"id":"slow","op":"simulate","packets":50000,"config":{{"distance_m":35.0,"power_level":3}}}}"#
    )
    .expect("send slow");
    writeln!(
        stream,
        r#"{{"id":"impatient","op":"predict","deadline_ms":0}}"#
    )
    .expect("send impatient");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for expect in ["\"id\":\"slow\"", "\"code\":\"deadline\""] {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        assert!(line.contains(expect), "{line}");
    }

    let stats = request_on(&mut stream, r#"{"op":"stats"}"#);
    assert!(stats.contains("\"deadline_exceeded\":1"), "{stats}");
    // Exactly one executed job (the slow simulate) holds an exec sample …
    assert!(stats.contains("\"exec_us\":{\"count\":1,"), "{stats}");
    // … and its p50 is the slow simulation, not a near-zero corpse.
    let p50: u64 = {
        let tail = &stats[stats.find("\"exec_us\":{\"count\":1,\"p50\":").unwrap() + 28..];
        tail[..tail.find(',').unwrap()].parse().unwrap()
    };
    assert!(p50 > 1_000, "exec p50 {p50} µs looks contaminated: {stats}");
    // All three popped jobs (slow, impatient, stats) drew queue-wait samples.
    assert!(stats.contains("\"queue_wait_us\":{\"count\":3"), "{stats}");

    shutdown(addr, handle);
}

#[test]
fn access_log_records_every_request_with_the_envelope_trace_id() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("wsn-serve-access-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let (addr, handle) = start(ServerConfig {
        threads: 1,
        access_log: Some(path.clone()),
        ..ServerConfig::default()
    });

    let response = roundtrip(addr, r#"{"id":"al","op":"predict"}"#);
    assert!(response.contains("\"ok\":true"), "{response}");
    let trace: &str = {
        let idx = response.find("\"trace\":\"").expect("envelope has trace") + 9;
        &response[idx..idx + 16]
    };
    assert!(
        trace.chars().all(|c| c.is_ascii_hexdigit()),
        "trace {trace:?} is not 16 hex chars"
    );

    shutdown(addr, handle);

    // run() has returned, so the log's BufWriter has flushed on drop.
    let text = std::fs::read_to_string(&path).expect("access log exists");
    assert!(text.contains("\"event\":\"server_started\""), "{text}");
    assert!(text.contains("\"event\":\"server_stopped\""), "{text}");
    let request_line = text
        .lines()
        .find(|l| l.contains("\"event\":\"request\"") && l.contains("\"op\":\"predict\""))
        .unwrap_or_else(|| panic!("no request record for predict in: {text}"));
    assert!(
        request_line.contains(&format!("\"trace\":\"{trace}\"")),
        "log line lost the envelope's trace id: {request_line}"
    );
    for field in [
        "\"outcome\":\"ok\"",
        "\"cached\":false",
        "\"queue_wait_us\":",
        "\"exec_us\":",
        "\"bytes\":",
        "\"peer\":\"127.0.0.1:",
        "\"id\":\"\\\"al\\\"\"",
    ] {
        assert!(
            request_line.contains(field),
            "missing {field}: {request_line}"
        );
    }

    let _ = std::fs::remove_file(&path);
}

#[test]
fn tune_over_tcp_returns_a_feasible_optimum() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });

    let response = roundtrip(
        addr,
        r#"{"id":"t","op":"tune","objective":"energy","constraints":[{"metric":"loss","max":0.01}],"distance_m":20.0}"#,
    );
    assert!(response.contains("\"ok\":true"), "{response}");
    assert!(response.contains("\"objective\":\"energy\""), "{response}");
    assert!(response.contains("\"distance\":20.0"), "{response}");

    // Identical question again: served from cache, byte-identical result.
    let again = roundtrip(
        addr,
        r#"{"id":"t2","op":"tune","objective":"energy","constraints":[{"metric":"loss","max":0.01}],"distance_m":20.0}"#,
    );
    assert!(again.contains("\"cached\":true"), "{again}");
    assert_eq!(result_part(&response), result_part(&again));

    shutdown(addr, handle);
}

#[test]
fn scenario_over_tcp_matches_the_catalog_topology() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });

    let response = roundtrip(
        addr,
        r#"{"id":"s","op":"scenario","scenario":"hidden-pair","packets":60}"#,
    );
    assert!(response.contains("\"ok\":true"), "{response}");
    assert!(
        response.contains("\"scenario\":\"hidden-pair\""),
        "{response}"
    );
    // Two links, and the shared-air accounting came along.
    assert!(response.contains("\"frames\":"), "{response}");

    shutdown(addr, handle);
}

#[test]
fn pending_requests_are_answered_before_shutdown_completes() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");

    // A slow job, a queued fast job, then shutdown — all three answered.
    writeln!(stream, r#"{{"id":"a","op":"simulate","packets":20000}}"#).unwrap();
    writeln!(stream, r#"{{"id":"b","op":"predict"}}"#).unwrap();
    writeln!(stream, r#"{{"id":"c","op":"shutdown"}}"#).unwrap();

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut seen = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        seen.push(line);
    }
    assert!(
        seen[0].contains("\"id\":\"a\"") && seen[0].contains("\"ok\":true"),
        "{:?}",
        seen
    );
    assert!(
        seen[1].contains("\"id\":\"b\"") && seen[1].contains("\"ok\":true"),
        "{:?}",
        seen
    );
    assert!(seen[2].contains("shutting_down"), "{:?}", seen);

    handle.join().expect("server thread").expect("clean exit");
}

/// A unique per-test store directory under the system temp dir.
fn temp_store(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wsn-serve-it-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_envelope_leads_with_proto_1_and_other_protos_are_refused() {
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");

    // Explicit proto 1 is accepted; the response envelope leads with the
    // version so clients can dispatch before reading anything else. The
    // whole prefix is pinned: a field reorder is a protocol break.
    let ok = request_on(&mut stream, r#"{"id":7,"op":"predict","proto":1}"#);
    assert!(
        ok.starts_with(r#"{"proto":1,"id":7,"op":"predict","ok":true,"#),
        "{ok}"
    );

    // Error envelopes carry the same version, and `code` sits directly
    // before `error`.
    let err = request_on(&mut stream, r#"{"id":8,"op":"predict","proto":3}"#);
    assert!(err.starts_with(r#"{"proto":1,"id":8,"#), "{err}");
    assert!(err.contains(r#""code":"bad_request","error":"#), "{err}");
    assert!(err.contains("this server speaks proto 1"), "{err}");

    // A proto-3 speaker is refused per request, not disconnected.
    let still = request_on(&mut stream, r#"{"id":9,"op":"predict"}"#);
    assert!(still.contains("\"ok\":true"), "{still}");

    shutdown(addr, handle);
}

#[test]
fn flooding_a_tiny_queue_draws_overloaded_codes_not_hangs() {
    // Depth-1 queue behind one worker on the event-loop front-end, which
    // pushes with zero patience: pipelining a slow job plus a burst must
    // bounce at least one request with `overloaded`, and every request
    // still gets exactly one response line.
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        queue_depth: 1,
        io_model: wsn_serve::IoModel::Epoll,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");

    writeln!(
        stream,
        r#"{{"id":"slow","op":"simulate","packets":50000,"config":{{"distance_m":35.0,"power_level":3}}}}"#
    )
    .expect("send slow");
    const BURST: usize = 8;
    for i in 0..BURST {
        writeln!(stream, r#"{{"id":"b{i}","op":"predict"}}"#).expect("send burst");
    }

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut overloaded = 0;
    let mut answered = 0;
    for _ in 0..BURST + 1 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        answered += 1;
        if line.contains("\"code\":\"overloaded\"") {
            assert!(line.contains("queue is full"), "{line}");
            overloaded += 1;
        }
    }
    assert_eq!(answered, BURST + 1, "a response line went missing");
    assert!(
        overloaded > 0,
        "no request was bounced by the depth-1 queue"
    );

    shutdown(addr, handle);
}

#[test]
fn cache_op_reports_both_tiers_over_tcp_and_flush_spares_the_disk() {
    let dir = temp_store("cacheop");
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        store: Some(dir.clone()),
        ..ServerConfig::default()
    });

    let request = r#"{"id":1,"op":"simulate","packets":60,"config":{"distance_m":25.0}}"#;
    let first = roundtrip(addr, request);
    assert!(first.contains("\"cached\":false"), "{first}");

    let report = roundtrip(addr, r#"{"id":2,"op":"cache"}"#);
    assert!(report.contains("\"mem\":{\"entries\":1,"), "{report}");
    assert!(
        report.contains("\"disk\":{\"enabled\":true,\"records\":1,"),
        "{report}"
    );

    let flush = roundtrip(addr, r#"{"id":3,"op":"cache","action":"flush"}"#);
    assert!(flush.contains("\"flushed\":true"), "{flush}");
    assert!(flush.contains("\"flushed_entries\":1"), "{flush}");
    assert!(flush.contains("\"entries\":0,"), "{flush}");

    // The memory tier is empty, the disk tier is not: the same question
    // comes back as a (byte-identical) disk hit.
    let second = roundtrip(addr, request);
    assert!(second.contains("\"cached\":true"), "{second}");
    assert_eq!(result_part(&first), result_part(&second));

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_with_the_same_store_serves_disk_warm_byte_identical_hits() {
    let dir = temp_store("restart");
    let request =
        r#"{"id":1,"op":"simulate","packets":80,"config":{"distance_m":17.5,"power_level":23}}"#;

    // First server computes and persists.
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        store: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let first = roundtrip(addr, request);
    assert!(first.contains("\"cached\":false"), "{first}");
    shutdown(addr, handle);

    // Second server, same store directory, fresh memory: the answer is a
    // disk-warm hit and byte-identical to the original computation.
    let (addr, handle) = start(ServerConfig {
        threads: 1,
        store: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let second = roundtrip(addr, request);
    assert!(second.contains("\"cached\":true"), "{second}");
    assert_eq!(
        result_part(&first),
        result_part(&second),
        "disk-warm hit must replay the original bytes"
    );
    let report = roundtrip(addr, r#"{"id":2,"op":"cache"}"#);
    assert!(
        report.contains("\"disk\":{\"enabled\":true,\"records\":1,"),
        "{report}"
    );
    assert!(report.contains("\"hits\":1"), "{report}");
    shutdown(addr, handle);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tight_deadline_aborts_a_full_grid_tune_mid_scan() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });

    // 48,384 golden predictions cannot finish inside 1 ms: the worker
    // must abandon the scan cooperatively and answer with the deadline
    // code instead of burning the thread to completion.
    let response = roundtrip(
        addr,
        r#"{"id":"hurry","op":"tune","objective":"energy","deadline_ms":1}"#,
    );
    assert!(response.contains("\"ok\":false"), "{response}");
    assert!(response.contains("\"code\":\"deadline\""), "{response}");
    assert!(response.contains("candidate evaluations"), "{response}");

    // The abort is not cached: with a sane deadline the same question
    // computes and answers.
    let response = roundtrip(
        addr,
        r#"{"id":"patient","op":"tune","objective":"energy","deadline_ms":60000}"#,
    );
    assert!(response.contains("\"ok\":true"), "{response}");
    assert!(response.contains("\"cached\":false"), "{response}");

    shutdown(addr, handle);
}

#[test]
fn permuted_constraints_hit_the_same_cache_line_over_tcp() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });

    let first = roundtrip(
        addr,
        r#"{"id":1,"op":"tune","objective":"energy","distance_m":20.0,"constraints":[{"metric":"loss","max":0.02},{"metric":"delay","max":80.0}]}"#,
    );
    assert!(first.contains("\"cached\":false"), "{first}");

    // Same question, constraints listed the other way around: must be a
    // cache hit with a byte-identical result body.
    let second = roundtrip(
        addr,
        r#"{"id":2,"op":"tune","objective":"energy","distance_m":20.0,"constraints":[{"metric":"delay","max":80.0},{"metric":"loss","max":0.02}]}"#,
    );
    assert!(second.contains("\"cached\":true"), "{second}");
    assert_eq!(result_part(&first), result_part(&second));

    shutdown(addr, handle);
}

#[test]
fn pareto_and_explore_answer_over_tcp_and_count_in_stats() {
    let (addr, handle) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });

    let pareto = roundtrip(addr, r#"{"id":1,"op":"pareto","distance_m":25.0}"#);
    assert!(pareto.contains("\"ok\":true"), "{pareto}");
    assert!(pareto.contains("\"front\":["), "{pareto}");
    assert!(pareto.contains("\"knee\":"), "{pareto}");

    let repeat = roundtrip(addr, r#"{"id":2,"op":"pareto","distance_m":25.0}"#);
    assert!(repeat.contains("\"cached\":true"), "{repeat}");
    assert_eq!(result_part(&pareto), result_part(&repeat));

    let explore = roundtrip(
        addr,
        r#"{"id":3,"op":"explore","objective":"energy","budget":500,"distance_m":25.0}"#,
    );
    assert!(explore.contains("\"ok\":true"), "{explore}");
    assert!(explore.contains("\"budget\":500"), "{explore}");

    let stats = roundtrip(addr, r#"{"id":4,"op":"stats"}"#);
    assert!(stats.contains("\"pareto\":2"), "{stats}");
    assert!(stats.contains("\"explore\":1"), "{stats}");

    shutdown(addr, handle);
}
